"""Setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs (``pip install -e .`` with build isolation) cannot build.
``python setup.py develop`` and ``pip install -e . --no-build-isolation``
with the legacy code path both work through this shim.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of MLComp (DATE 2021): ML-based performance "
        "estimation and adaptive selection of Pareto-optimal compiler "
        "optimization sequences"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
