"""Multi-function workloads (call-graph-rich programs).

The BEEBS/PARSEC-style kernels average ~1.2 defined functions, which
leaves the function-granular machinery (per-function analyses,
fingerprints, transform-cache entries, feature partials, eval-cache
composition) nothing to bite on: every phase invalidates most of the
module.  These programs have 6-10 small functions each, so a typical
phase changes a few functions and leaves the rest untouched —
exercising exactly the regime the paper's PARSEC applications (and any
real program) present.  Deterministic, checksum-printing, like the
other suites.
"""

MODMATH = r"""
int gcd(int a, int b) {
  while (b != 0) { int t = b; b = a % b; a = t; }
  return a;
}

int mulmod(int a, int b, int m) {
  return (a * b) % m;
}

int powmod(int base, int exp, int m) {
  int result = 1;
  int b = base % m;
  while (exp > 0) {
    if (exp % 2 == 1) result = mulmod(result, b, m);
    b = mulmod(b, b, m);
    exp = exp / 2;
  }
  return result;
}

int is_probable_prime(int n) {
  if (n < 2) return 0;
  for (int d = 2; d * d <= n; d++) {
    if (n % d == 0) return 0;
  }
  return 1;
}

int next_prime(int n) {
  int candidate = n + 1;
  while (is_probable_prime(candidate) == 0) { candidate = candidate + 1; }
  return candidate;
}

int totient(int n) {
  int count = 0;
  for (int k = 1; k <= n; k++) {
    if (gcd(n, k) == 1) count = count + 1;
  }
  return count;
}

int main() {
  int acc = 0;
  int p = 2;
  for (int i = 0; i < 8; i++) {
    p = next_prime(p + i);
    acc = acc + powmod(3, p, 1000003);
    acc = acc % 1000003;
  }
  acc = acc + totient(36) * 17 + gcd(1071, 462);
  print_int(acc);
  print_int(powmod(7, 77, 101));
  return acc % 251;
}
"""

DSP_CHAIN = r"""
int signal[48];
int work[48];

int clip(int v, int lo, int hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int scale(int v, int num, int den) {
  return (v * num) / den;
}

int mix(int a, int b) {
  return clip(a + b, -4096, 4095);
}

int fill_signal(int seed) {
  for (int i = 0; i < 48; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    signal[i] = (seed % 1024) - 512;
  }
  return seed;
}

int lowpass(int taps) {
  int energy = 0;
  for (int i = taps; i < 48; i++) {
    int acc = 0;
    for (int k = 0; k < taps; k++) { acc = acc + signal[i - k]; }
    work[i] = acc / taps;
    energy = energy + iabs(work[i]);
  }
  return energy;
}

int downmix(int start) {
  int out = start;
  for (int i = 0; i < 48; i++) {
    out = mix(out, scale(work[i], 3, 7));
  }
  return out;
}

int checksum(int rounds) {
  int h = 0;
  for (int r = 0; r < rounds; r++) {
    for (int i = 0; i < 48; i++) {
      h = (h * 31 + work[i] + signal[i]) % 65521;
    }
  }
  return h;
}

int main() {
  fill_signal(2024);
  int energy = lowpass(4);
  int mixed = downmix(0);
  int h = checksum(3);
  print_int(energy);
  print_int(mixed);
  print_int(h);
  return (energy + mixed + h) % 251;
}
"""

TABLE_OPS = r"""
int table[64];
int histogram[16];

int hash_key(int key) {
  int h = key * 2654435761;
  h = iabs(h) % 1048576;
  return (h >> 4) % 64;
}

int insert(int key, int value) {
  int slot = hash_key(key);
  for (int probe = 0; probe < 64; probe++) {
    int index = (slot + probe) % 64;
    if (table[index] == 0) {
      table[index] = value;
      return index;
    }
  }
  return 0 - 1;
}

int bucket(int value) {
  int b = iabs(value) % 16;
  return b;
}

int build_histogram(int entries) {
  int filled = 0;
  for (int i = 0; i < entries; i++) {
    if (table[i] != 0) {
      int b = bucket(table[i]);
      histogram[b] = histogram[b] + 1;
      filled = filled + 1;
    }
  }
  return filled;
}

int max_bucket(int n) {
  int best = 0;
  for (int i = 0; i < n; i++) {
    best = imax(best, histogram[i]);
  }
  return best;
}

int fold_table(int n) {
  int acc = 7;
  for (int i = 0; i < n; i++) {
    acc = (acc * 131 + table[i]) % 900001;
  }
  return acc;
}

int main() {
  int seed = 99;
  for (int i = 0; i < 40; i++) {
    seed = iabs((seed * 75 + 74) % 65537);
    insert(seed, seed % 997 + 1);
  }
  int filled = build_histogram(64);
  int peak = max_bucket(16);
  int folded = fold_table(64);
  print_int(filled);
  print_int(peak);
  print_int(folded);
  return (filled * 3 + peak * 5 + folded) % 251;
}
"""

FIXED_GEOMETRY = r"""
int xs[20];
int ys[20];

int dot(int ax, int ay, int bx, int by) {
  return ax * bx + ay * by;
}

int norm2(int x, int y) {
  return dot(x, y, x, y);
}

int manhattan(int ax, int ay, int bx, int by) {
  return iabs(ax - bx) + iabs(ay - by);
}

int farthest_from_origin(int n) {
  int best = 0;
  int best_index = 0;
  for (int i = 0; i < n; i++) {
    int d = norm2(xs[i], ys[i]);
    if (d > best) { best = d; best_index = i; }
  }
  return best_index;
}

int closest_pair_distance(int n) {
  int best = 1000000000;
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      int d = manhattan(xs[i], ys[i], xs[j], ys[j]);
      best = imin(best, d);
    }
  }
  return best;
}

int centroid_checksum(int n) {
  int sx = 0;
  int sy = 0;
  for (int i = 0; i < n; i++) { sx = sx + xs[i]; sy = sy + ys[i]; }
  return (sx / n) * 1000 + (sy / n);
}

int place_points(int seed) {
  for (int i = 0; i < 20; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    xs[i] = (seed % 200) - 100;
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    ys[i] = (seed % 200) - 100;
  }
  return seed;
}

int main() {
  place_points(77);
  int far = farthest_from_origin(20);
  int close = closest_pair_distance(20);
  int centroid = centroid_checksum(20);
  print_int(far);
  print_int(close);
  print_int(centroid);
  return (far + close + iabs(centroid)) % 251;
}
"""

MULTIFN_SOURCES = {
    "modmath": MODMATH,
    "dsp_chain": DSP_CHAIN,
    "table_ops": TABLE_OPS,
    "fixed_geometry": FIXED_GEOMETRY,
}
