"""Workload registry: named suites of mini-C programs."""

import hashlib

from repro.lang import compile_source
from repro.workloads.beebs import BEEBS_SOURCES
from repro.workloads.earlyexit import EARLYEXIT_SOURCES
from repro.workloads.multifn import MULTIFN_SOURCES
from repro.workloads.parsec import PARSEC_SOURCES

#: Compiled-module templates keyed by (name, source digest).  The
#: frontend is deterministic and workloads are compiled thousands of
#: times per search, so ``Workload.compile`` parses once and hands out
#: faithful clones (identical names and fingerprints) afterwards.
_TEMPLATES = {}


class Workload:
    """A named benchmark program."""

    def __init__(self, name, suite, source):
        self.name = name
        self.suite = suite
        self.source = source

    def compile(self):
        """Fresh IR module (workloads are reusable; modules are not).

        The first call compiles the source; later calls clone the
        cached template (``repro.passes.cloning.clone_module``), which
        is several times cheaper than re-running the frontend and
        prints/fingerprints identically.
        """
        from repro.passes.cloning import clone_module

        key = (self.name,
               hashlib.sha256(self.source.encode("utf-8")).hexdigest())
        template = _TEMPLATES.get(key)
        if template is None:
            template = compile_source(self.source, module_name=self.name)
            _TEMPLATES[key] = template
        return clone_module(template)

    def __repr__(self):
        return f"<Workload {self.suite}/{self.name}>"


_SUITES = {
    "parsec": PARSEC_SOURCES,
    "beebs": BEEBS_SOURCES,
    "multi": MULTIFN_SOURCES,
    "earlyexit": EARLYEXIT_SOURCES,
}


def suite_names():
    return sorted(_SUITES)


def load_suite(suite):
    """All workloads of a suite, name-sorted."""
    try:
        sources = _SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; "
                       f"available: {suite_names()}") from None
    return [Workload(name, suite, source)
            for name, source in sorted(sources.items())]


def load_workload(suite, name):
    return Workload(name, suite, _SUITES[suite][name])


def default_suite_for(target):
    """The paper's pairing: PARSEC on x86, BEEBS on RISC-V."""
    return "parsec" if target == "x86" else "beebs"
