"""Workload registry: named suites of mini-C programs."""

from repro.lang import compile_source
from repro.workloads.beebs import BEEBS_SOURCES
from repro.workloads.parsec import PARSEC_SOURCES


class Workload:
    """A named benchmark program."""

    def __init__(self, name, suite, source):
        self.name = name
        self.suite = suite
        self.source = source

    def compile(self):
        """Fresh IR module (workloads are reusable; modules are not)."""
        return compile_source(self.source, module_name=self.name)

    def __repr__(self):
        return f"<Workload {self.suite}/{self.name}>"


_SUITES = {
    "parsec": PARSEC_SOURCES,
    "beebs": BEEBS_SOURCES,
}


def suite_names():
    return sorted(_SUITES)


def load_suite(suite):
    """All workloads of a suite, name-sorted."""
    try:
        sources = _SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; "
                       f"available: {suite_names()}") from None
    return [Workload(name, suite, source)
            for name, source in sorted(sources.items())]


def load_workload(suite, name):
    return Workload(name, suite, _SUITES[suite][name])


def default_suite_for(target):
    """The paper's pairing: PARSEC on x86, BEEBS on RISC-V."""
    return "parsec" if target == "x86" else "beebs"
