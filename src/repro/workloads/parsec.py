"""PARSEC-like workloads (the paper's x86 application domain).

Ten kernels named and shaped after the PARSEC suite: each mini-C program
mirrors the computational character of its namesake (option pricing math,
particle filtering, annealing swaps, chunk dedup, linear solves, feature
similarity, grid relaxation, frequent-itemset counting, k-median
clustering, Monte-Carlo swaption pricing).  All are deterministic and
print checksums so differential tests can compare compiled behaviour.
"""

BLACKSCHOLES = r"""
// Black-Scholes style option pricing over a batch of synthetic options.
float cnd(float x) {
  float L = fabs(x);
  float K = 1.0 / (1.0 + 0.2316419 * L);
  float w = 1.0 - 0.39894228 * exp(0.0 - L * L / 2.0) *
            (0.319381530 * K - 0.356563782 * K * K +
             1.781477937 * K * K * K);
  if (x < 0.0) return 1.0 - w;
  return w;
}

float price_one(float S, float X, float T, float r, float v) {
  float d1 = (log(S / X) + (r + v * v / 2.0) * T) / (v * sqrt(T));
  float d2 = d1 - v * sqrt(T);
  return S * cnd(d1) - X * exp(0.0 - r * T) * cnd(d2);
}

int main() {
  float total = 0.0;
  for (int i = 0; i < 24; i++) {
    float S = 80.0 + i * 2.0;
    float X = 100.0;
    float T = 0.25 + 0.05 * (i % 6);
    float v = 0.2 + 0.01 * (i % 8);
    total = total + price_one(S, X, T, 0.02, v);
  }
  print_float(total);
  int checksum = total * 1000.0;
  print_int(checksum);
  return checksum % 251;
}
"""

BODYTRACK = r"""
// Particle-filter flavoured tracking: weight, resample, estimate.
int weights[32];
int particles[32];

int main() {
  int seed = 12345;
  for (int i = 0; i < 32; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    particles[i] = seed % 200 - 100;
  }
  int target = 17;
  int estimate = 0;
  for (int step = 0; step < 12; step++) {
    int total = 0;
    for (int i = 0; i < 32; i++) {
      int d = iabs(particles[i] - target);
      weights[i] = 1000 / (1 + d);
      total += weights[i];
    }
    int acc = 0;
    int pick = total / 2;
    int chosen = 0;
    for (int i = 0; i < 32; i++) {
      acc += weights[i];
      if (acc >= pick) { chosen = particles[i]; break; }
    }
    estimate = (estimate * 3 + chosen) / 4;
    for (int i = 0; i < 32; i++) {
      seed = iabs((seed * 1103515245 + 12345) % 2147483648);
      particles[i] = chosen + seed % 21 - 10;
    }
    target = target + (step % 3) - 1;
  }
  print_int(estimate);
  return iabs(estimate) % 251;
}
"""

CANNEAL = r"""
// Simulated-annealing element swaps minimizing routing cost.
int netlist[64];
int positions[64];

int cost_of(int i) {
  int left = i > 0 ? positions[i - 1] : 0;
  int right = i < 63 ? positions[i + 1] : 0;
  return iabs(netlist[i] - left) + iabs(netlist[i] - right);
}

int main() {
  int seed = 98765;
  for (int i = 0; i < 64; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    netlist[i] = seed % 100;
    positions[i] = i;
  }
  int temperature = 100;
  int accepted = 0;
  while (temperature > 5) {
    for (int trial = 0; trial < 24; trial++) {
      seed = iabs((seed * 1103515245 + 12345) % 2147483648);
      int a = seed % 64;
      seed = iabs((seed * 1103515245 + 12345) % 2147483648);
      int b = seed % 64;
      int before = cost_of(a) + cost_of(b);
      int tmp = positions[a];
      positions[a] = positions[b];
      positions[b] = tmp;
      int after = cost_of(a) + cost_of(b);
      int delta = after - before;
      if (delta < temperature) { accepted++; }
      else {
        tmp = positions[a];
        positions[a] = positions[b];
        positions[b] = tmp;
      }
    }
    temperature = temperature * 4 / 5;
  }
  int checksum = accepted;
  for (int i = 0; i < 64; i++) { checksum += positions[i] * i; }
  print_int(checksum);
  return checksum % 251;
}
"""

DEDUP = r"""
// Chunking + rolling hash dedup pipeline.
int stream[96];
int chunk_hashes[24];

int main() {
  int seed = 555;
  for (int i = 0; i < 96; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    stream[i] = seed % 7;          // low-entropy stream: duplicates likely
  }
  int n_chunks = 0;
  int start = 0;
  for (int i = 0; i < 96; i++) {
    int boundary = 0;
    if (i - start >= 4) {
      if (stream[i] == 0 || i - start >= 8) boundary = 1;
    }
    if (boundary && n_chunks < 24) {
      int h = 5381;
      for (int j = start; j < i; j++) {
        h = (h * 33 + stream[j]) % 1000003;
      }
      chunk_hashes[n_chunks] = h;
      n_chunks++;
      start = i;
    }
  }
  int unique = 0;
  int dupes = 0;
  for (int i = 0; i < n_chunks; i++) {
    int seen = 0;
    for (int j = 0; j < i; j++) {
      if (chunk_hashes[j] == chunk_hashes[i]) { seen = 1; break; }
    }
    if (seen) dupes++; else unique++;
  }
  print_int(unique);
  print_int(dupes);
  return (unique * 16 + dupes) % 251;
}
"""

FACESIM = r"""
// Small dense linear algebra: Jacobi iterations on a 6x6 system.
float A[36];
float b[6];
float x[6];
float x_new[6];

int main() {
  for (int i = 0; i < 6; i++) {
    for (int j = 0; j < 6; j++) {
      if (i == j) A[i * 6 + j] = 10.0 + i;
      else A[i * 6 + j] = 1.0 / (1.0 + i + j);
    }
    b[i] = 3.0 * i + 1.0;
    x[i] = 0.0;
  }
  for (int iter = 0; iter < 18; iter++) {
    for (int i = 0; i < 6; i++) {
      float sigma = 0.0;
      for (int j = 0; j < 6; j++) {
        if (j != i) sigma = sigma + A[i * 6 + j] * x[j];
      }
      x_new[i] = (b[i] - sigma) / A[i * 6 + i];
    }
    for (int i = 0; i < 6; i++) { x[i] = x_new[i]; }
  }
  float checksum = 0.0;
  for (int i = 0; i < 6; i++) { checksum = checksum + x[i] * (i + 1); }
  print_float(checksum);
  int code = checksum * 10000.0;
  return iabs(code) % 251;
}
"""

FERRET = r"""
// Content-based similarity search: L1 distances over feature vectors.
int database[80];
int query[8];

int main() {
  int seed = 2024;
  for (int i = 0; i < 80; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    database[i] = seed % 64;
  }
  for (int i = 0; i < 8; i++) { query[i] = (i * 13 + 5) % 64; }
  int best_index = -1;
  int best_distance = 1000000;
  int second = 1000000;
  for (int item = 0; item < 10; item++) {
    int distance = 0;
    for (int k = 0; k < 8; k++) {
      distance += iabs(database[item * 8 + k] - query[k]);
    }
    if (distance < best_distance) {
      second = best_distance;
      best_distance = distance;
      best_index = item;
    } else if (distance < second) {
      second = distance;
    }
  }
  print_int(best_index);
  print_int(best_distance);
  print_int(second);
  return (best_index * 37 + best_distance) % 251;
}
"""

FLUIDANIMATE = r"""
// Grid relaxation (heat/pressure diffusion) with fixed boundaries.
float grid[64];
float next[64];

int main() {
  for (int i = 0; i < 64; i++) { grid[i] = 0.0; }
  grid[0] = 100.0;
  grid[7] = 50.0;
  grid[56] = 25.0;
  for (int step = 0; step < 20; step++) {
    for (int r = 1; r < 7; r++) {
      for (int c = 1; c < 7; c++) {
        int i = r * 8 + c;
        next[i] = (grid[i - 1] + grid[i + 1] +
                   grid[i - 8] + grid[i + 8]) * 0.25;
      }
    }
    for (int r = 1; r < 7; r++) {
      for (int c = 1; c < 7; c++) {
        int i = r * 8 + c;
        grid[i] = next[i];
      }
    }
  }
  float total = 0.0;
  for (int i = 0; i < 64; i++) { total = total + grid[i]; }
  print_float(total);
  int code = total * 100.0;
  return code % 251;
}
"""

FREQMINE = r"""
// Frequent itemset counting over synthetic transactions.
int transactions[120];
int counts[16];
int pair_counts[64];

int main() {
  int seed = 777;
  for (int i = 0; i < 120; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    transactions[i] = seed % 16;
  }
  for (int i = 0; i < 16; i++) { counts[i] = 0; }
  for (int i = 0; i < 64; i++) { pair_counts[i] = 0; }
  for (int t = 0; t < 20; t++) {
    for (int k = 0; k < 6; k++) {
      int item = transactions[t * 6 + k];
      counts[item]++;
    }
    for (int a = 0; a < 6; a++) {
      for (int b = a + 1; b < 6; b++) {
        int x = transactions[t * 6 + a] % 8;
        int y = transactions[t * 6 + b] % 8;
        pair_counts[x * 8 + y]++;
      }
    }
  }
  int frequent = 0;
  for (int i = 0; i < 16; i++) { if (counts[i] >= 8) frequent++; }
  int frequent_pairs = 0;
  for (int i = 0; i < 64; i++) { if (pair_counts[i] >= 4) frequent_pairs++; }
  print_int(frequent);
  print_int(frequent_pairs);
  return (frequent * 31 + frequent_pairs) % 251;
}
"""

STREAMCLUSTER = r"""
// Online k-median-flavoured clustering of streaming points.
int points[64];
int centers[4];
int assignments[32];

int main() {
  int seed = 31415;
  for (int i = 0; i < 64; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    points[i] = seed % 128;
  }
  centers[0] = 16; centers[1] = 48; centers[2] = 80; centers[3] = 112;
  int total_cost = 0;
  for (int round = 0; round < 6; round++) {
    total_cost = 0;
    for (int p = 0; p < 32; p++) {
      int px = points[p * 2];
      int py = points[p * 2 + 1];
      int best = 0;
      int best_cost = 1000000;
      for (int c = 0; c < 4; c++) {
        int dx = iabs(px - centers[c]);
        int dy = iabs(py - centers[c] / 2);
        int cost = dx + dy;
        if (cost < best_cost) { best_cost = cost; best = c; }
      }
      assignments[p] = best;
      total_cost += best_cost;
    }
    for (int c = 0; c < 4; c++) {
      int total = 0;
      int n = 0;
      for (int p = 0; p < 32; p++) {
        if (assignments[p] == c) { total += points[p * 2]; n++; }
      }
      if (n > 0) centers[c] = total / n;
    }
  }
  print_int(total_cost);
  return total_cost % 251;
}
"""

SWAPTIONS = r"""
// Monte-Carlo swaption pricing with an LCG path generator.
int main() {
  int seed = 4242;
  float value = 0.0;
  for (int path = 0; path < 16; path++) {
    float rate = 0.03;
    float discount = 1.0;
    for (int step = 0; step < 16; step++) {
      seed = iabs((seed * 1103515245 + 12345) % 2147483648);
      float shock = (seed % 1000) / 1000.0 - 0.5;
      rate = rate + 0.001 * shock;
      if (rate < 0.001) rate = 0.001;
      discount = discount / (1.0 + rate);
    }
    float payoff = rate - 0.03;
    if (payoff < 0.0) payoff = 0.0;
    value = value + payoff * discount;
  }
  value = value / 16.0;
  print_float(value * 10000.0);
  int code = value * 1000000.0;
  return code % 251;
}
"""

PARSEC_SOURCES = {
    "blackscholes": BLACKSCHOLES,
    "bodytrack": BODYTRACK,
    "canneal": CANNEAL,
    "dedup": DEDUP,
    "facesim": FACESIM,
    "ferret": FERRET,
    "fluidanimate": FLUIDANIMATE,
    "freqmine": FREQMINE,
    "streamcluster": STREAMCLUSTER,
    "swaptions": SWAPTIONS,
}
