"""BEEBS-like workloads (the paper's RISC-V / embedded application domain).

Twenty small kernels named after BEEBS benchmarks, covering integer
compute, bit manipulation, sorting, DSP, table lookup, and light float
math — the embedded mix the Bristol Energy Efficiency Benchmark Suite
targets.  Deterministic, checksum-printing.
"""

CRC32 = r"""
int crc_table[16] = {0, 79764919, 159529838, 222504665,
                     319059676, 398814059, 445009330, 507990021,
                     638119352, 583659535, 797628118, 726387553,
                     890018660, 835552979, 1015980042, 944750013};
int message[32];

int main() {
  int seed = 4321;
  for (int i = 0; i < 32; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    message[i] = seed % 256;
  }
  int crc = 0;
  for (int i = 0; i < 32; i++) {
    int byte = message[i];
    crc = crc ^ (byte << 8);
    for (int k = 0; k < 2; k++) {
      int index = (crc >> 12) & 15;
      crc = ((crc << 4) & 65535) ^ crc_table[index] % 65536;
    }
  }
  print_int(crc);
  return crc % 251;
}
"""

BUBBLESORT = r"""
int data[24];

int main() {
  int seed = 9001;
  for (int i = 0; i < 24; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    data[i] = seed % 1000;
  }
  for (int i = 0; i < 23; i++) {
    for (int j = 0; j < 23 - i; j++) {
      if (data[j] > data[j + 1]) {
        int tmp = data[j];
        data[j] = data[j + 1];
        data[j + 1] = tmp;
      }
    }
  }
  int checksum = 0;
  for (int i = 0; i < 24; i++) { checksum += data[i] * (i + 1); }
  print_int(data[0]);
  print_int(data[23]);
  print_int(checksum);
  return checksum % 251;
}
"""

INSERTSORT = r"""
int data[20];

int main() {
  int seed = 17;
  for (int i = 0; i < 20; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    data[i] = seed % 500;
  }
  for (int i = 1; i < 20; i++) {
    int key = data[i];
    int j = i - 1;
    while (j >= 0 && data[j] > key) {
      data[j + 1] = data[j];
      j--;
    }
    data[j + 1] = key;
  }
  int checksum = 0;
  for (int i = 0; i < 20; i++) { checksum += data[i] * i; }
  print_int(checksum);
  return checksum % 251;
}
"""

QURT = r"""
// Integer square root via Newton iteration (BEEBS qurt flavour).
int isqrt(int x) {
  if (x < 2) return x;
  int guess = x / 2;
  for (int i = 0; i < 12; i++) {
    int next = (guess + x / guess) / 2;
    if (next >= guess) return guess;
    guess = next;
  }
  return guess;
}

int main() {
  int total = 0;
  for (int v = 1; v < 30; v++) {
    total += isqrt(v * v * 3 + v);
  }
  print_int(total);
  return total % 251;
}
"""

MATMULT_INT = r"""
int A[36];
int B[36];
int C[36];

int main() {
  for (int i = 0; i < 36; i++) {
    A[i] = (i * 7 + 3) % 19;
    B[i] = (i * 5 + 1) % 17;
    C[i] = 0;
  }
  for (int i = 0; i < 6; i++) {
    for (int j = 0; j < 6; j++) {
      int acc = 0;
      for (int k = 0; k < 6; k++) {
        acc += A[i * 6 + k] * B[k * 6 + j];
      }
      C[i * 6 + j] = acc;
    }
  }
  int checksum = 0;
  for (int i = 0; i < 36; i++) { checksum += C[i] * (i % 7); }
  print_int(checksum);
  return checksum % 251;
}
"""

MATMULT_FLOAT = r"""
float A[25];
float B[25];
float C[25];

int main() {
  for (int i = 0; i < 25; i++) {
    A[i] = (i % 5) * 0.5 + 1.0;
    B[i] = (i % 7) * 0.25 + 0.5;
    C[i] = 0.0;
  }
  for (int i = 0; i < 5; i++) {
    for (int j = 0; j < 5; j++) {
      float acc = 0.0;
      for (int k = 0; k < 5; k++) {
        acc = acc + A[i * 5 + k] * B[k * 5 + j];
      }
      C[i * 5 + j] = acc;
    }
  }
  float checksum = 0.0;
  for (int i = 0; i < 25; i++) { checksum = checksum + C[i]; }
  print_float(checksum);
  int code = checksum * 100.0;
  return code % 251;
}
"""

FIBCALL = r"""
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main() {
  int total = 0;
  for (int i = 1; i <= 12; i++) { total += fib(i); }
  print_int(total);
  return total % 251;
}
"""

FDCT = r"""
// 8-point forward DCT butterfly (integer approximation).
int block[64];

int main() {
  for (int i = 0; i < 64; i++) { block[i] = (i * 13 + 7) % 256 - 128; }
  for (int row = 0; row < 8; row++) {
    int base = row * 8;
    for (int pass = 0; pass < 2; pass++) {
      int s0 = block[base + 0] + block[base + 7];
      int s1 = block[base + 1] + block[base + 6];
      int s2 = block[base + 2] + block[base + 5];
      int s3 = block[base + 3] + block[base + 4];
      int d0 = block[base + 0] - block[base + 7];
      int d1 = block[base + 1] - block[base + 6];
      block[base + 0] = (s0 + s3) / 2;
      block[base + 1] = (s1 + s2) / 2;
      block[base + 2] = (s1 - s2) / 2;
      block[base + 3] = (s0 - s3) / 2;
      block[base + 4] = (d0 * 3 + d1) / 4;
      block[base + 5] = (d0 - d1 * 3) / 4;
    }
  }
  int checksum = 0;
  for (int i = 0; i < 64; i++) { checksum += block[i] * (i % 5); }
  print_int(checksum);
  return iabs(checksum) % 251;
}
"""

EDN = r"""
// Vector MAC / dot products (EDN kernel flavour).
int a[32];
int b[32];

int main() {
  for (int i = 0; i < 32; i++) {
    a[i] = (i * 3 + 1) % 64;
    b[i] = (i * 11 + 5) % 64;
  }
  int dot = 0;
  for (int i = 0; i < 32; i++) { dot += a[i] * b[i]; }
  int fir = 0;
  for (int i = 4; i < 32; i++) {
    fir += a[i] * 4 + a[i - 1] * 3 + a[i - 2] * 2 + a[i - 3];
  }
  int saturated = 0;
  for (int i = 0; i < 32; i++) {
    int v = a[i] * b[i] / 8;
    if (v > 100) v = 100;
    saturated += v;
  }
  print_int(dot);
  print_int(fir);
  print_int(saturated);
  return (dot + fir + saturated) % 251;
}
"""

PRIME = r"""
int main() {
  int count = 0;
  int last = 0;
  for (int n = 2; n < 200; n++) {
    int is_prime = 1;
    for (int d = 2; d * d <= n; d++) {
      if (n % d == 0) { is_prime = 0; break; }
    }
    if (is_prime) { count++; last = n; }
  }
  print_int(count);
  print_int(last);
  return (count * 3 + last) % 251;
}
"""

LEVENSHTEIN = r"""
int s1[8] = {1, 2, 3, 4, 5, 3, 2, 1};
int s2[8] = {1, 3, 3, 4, 6, 3, 1, 1};
int dp[81];

int main() {
  for (int i = 0; i <= 8; i++) { dp[i * 9] = i; }
  for (int j = 0; j <= 8; j++) { dp[j] = j; }
  for (int i = 1; i <= 8; i++) {
    for (int j = 1; j <= 8; j++) {
      int cost = s1[i - 1] == s2[j - 1] ? 0 : 1;
      int best = dp[(i - 1) * 9 + j] + 1;
      int alt = dp[i * 9 + (j - 1)] + 1;
      if (alt < best) best = alt;
      alt = dp[(i - 1) * 9 + (j - 1)] + cost;
      if (alt < best) best = alt;
      dp[i * 9 + j] = best;
    }
  }
  print_int(dp[80]);
  return dp[80] % 251;
}
"""

LCDNUM = r"""
// 7-segment display encoding (table lookup + bit ops).
int segments[16] = {63, 6, 91, 79, 102, 109, 125, 7,
                    127, 111, 119, 124, 57, 94, 121, 113};

int main() {
  int lit = 0;
  int checksum = 0;
  for (int value = 0; value < 100; value++) {
    int tens = value / 10;
    int ones = value % 10;
    int pattern = (segments[tens] << 8) | segments[ones];
    checksum = (checksum * 31 + pattern) % 1000003;
    int p = pattern;
    while (p != 0) {
      lit += p & 1;
      p = p >> 1;
    }
  }
  print_int(lit);
  print_int(checksum);
  return (lit + checksum) % 251;
}
"""

JANNE_COMPLEX = r"""
// Nested loop with data-dependent bounds (WCET classic).
int main() {
  int a = 30;
  int b = 0;
  while (a > 0) {
    if (a > 15) {
      b = a - 10;
      while (b > 10) { b = b - 2; }
    } else {
      b = a + 3;
      while (b < 30) { b = b + 4; }
    }
    a = a - 3;
  }
  print_int(a);
  print_int(b);
  return (a * 7 + b) % 251;
}
"""

EXPINT = r"""
// Exponential integral series (float heavy).
float expint(int n, float x) {
  float result = 0.0;
  float term = 1.0;
  for (int k = 1; k <= n; k++) {
    term = term * x / k;
    result = result + term / (k + 1);
  }
  return result + log(x + 1.0);
}

int main() {
  float total = 0.0;
  for (int i = 1; i <= 10; i++) {
    total = total + expint(8, 0.1 * i);
  }
  print_float(total);
  int code = total * 10000.0;
  return code % 251;
}
"""

COVER = r"""
// Dense switch-like dispatch via chains of comparisons.
int dispatch(int x) {
  if (x == 0) return 3;
  if (x == 1) return 7;
  if (x == 2) return 1;
  if (x == 3) return 9;
  if (x == 4) return 4;
  if (x == 5) return 8;
  if (x == 6) return 2;
  if (x == 7) return 6;
  if (x == 8) return 5;
  return 0;
}

int main() {
  int total = 0;
  for (int i = 0; i < 120; i++) {
    total += dispatch(i % 10) * (i % 3 + 1);
  }
  print_int(total);
  return total % 251;
}
"""

NDES = r"""
// Feistel-style block scrambling (NDES flavour).
int main() {
  int left = 123456;
  int right = 654321;
  for (int round = 0; round < 24; round++) {
    int f = ((right * 31 + round) ^ (right >> 3)) & 1048575;
    int new_right = left ^ f;
    left = right;
    right = new_right & 1048575;
  }
  print_int(left);
  print_int(right);
  return (left + right) % 251;
}
"""

NBODY = r"""
// 1D gravitational n-body with 4 bodies (float).
float pos[4];
float vel[4];
float mass[4];

int main() {
  pos[0] = 0.0; pos[1] = 1.0; pos[2] = 2.5; pos[3] = 4.0;
  vel[0] = 0.0; vel[1] = 0.1; vel[2] = 0.0 - 0.05; vel[3] = 0.02;
  mass[0] = 2.0; mass[1] = 1.0; mass[2] = 1.5; mass[3] = 0.5;
  for (int step = 0; step < 30; step++) {
    for (int i = 0; i < 4; i++) {
      float force = 0.0;
      for (int j = 0; j < 4; j++) {
        if (i != j) {
          float d = pos[j] - pos[i];
          float r2 = d * d + 0.01;
          float sign = d > 0.0 ? 1.0 : 0.0 - 1.0;
          force = force + sign * mass[j] / r2;
        }
      }
      vel[i] = vel[i] + force * 0.01;
    }
    for (int i = 0; i < 4; i++) { pos[i] = pos[i] + vel[i] * 0.01; }
  }
  float checksum = 0.0;
  for (int i = 0; i < 4; i++) {
    checksum = checksum + pos[i] * (i + 1) + vel[i];
  }
  print_float(checksum);
  int code = checksum * 100000.0;
  return iabs(code) % 251;
}
"""

SELECT_KTH = r"""
// k-th smallest via partial selection sort.
int data[24];

int main() {
  int seed = 31337;
  for (int i = 0; i < 24; i++) {
    seed = iabs((seed * 1103515245 + 12345) % 2147483648);
    data[i] = seed % 777;
  }
  int total = 0;
  for (int k = 0; k < 5; k++) {
    for (int i = k; i < 24; i++) {
      if (data[i] < data[k]) {
        int tmp = data[k];
        data[k] = data[i];
        data[i] = tmp;
      }
    }
    total += data[k];
  }
  print_int(total);
  return total % 251;
}
"""

BINARYSEARCH = r"""
int haystack[64];

int main() {
  for (int i = 0; i < 64; i++) { haystack[i] = i * 3 + 1; }
  int found = 0;
  int probes = 0;
  for (int needle = 0; needle < 200; needle += 7) {
    int lo = 0;
    int hi = 63;
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      probes++;
      if (haystack[mid] == needle) { found++; break; }
      if (haystack[mid] < needle) lo = mid + 1;
      else hi = mid - 1;
    }
  }
  print_int(found);
  print_int(probes);
  return (found * 13 + probes) % 251;
}
"""

DUFF = r"""
// Unrollable copy loop with a remainder tail (Duff's device flavour).
int src[48];
int dst[48];

int main() {
  for (int i = 0; i < 48; i++) { src[i] = (i * 5 + 2) % 97; dst[i] = 0; }
  int n = 43;
  int chunks = n / 4;
  int rest = n % 4;
  int p = 0;
  for (int c = 0; c < chunks; c++) {
    dst[p] = src[p]; p++;
    dst[p] = src[p]; p++;
    dst[p] = src[p]; p++;
    dst[p] = src[p]; p++;
  }
  for (int r = 0; r < rest; r++) { dst[p] = src[p]; p++; }
  int checksum = 0;
  for (int i = 0; i < 48; i++) { checksum += dst[i] * (i % 11); }
  print_int(checksum);
  return checksum % 251;
}
"""

BEEBS_SOURCES = {
    "crc32": CRC32,
    "bubblesort": BUBBLESORT,
    "insertsort": INSERTSORT,
    "qurt": QURT,
    "matmult_int": MATMULT_INT,
    "matmult_float": MATMULT_FLOAT,
    "fibcall": FIBCALL,
    "fdct": FDCT,
    "edn": EDN,
    "prime": PRIME,
    "levenshtein": LEVENSHTEIN,
    "lcdnum": LCDNUM,
    "janne_complex": JANNE_COMPLEX,
    "expint": EXPINT,
    "cover": COVER,
    "ndes": NDES,
    "nbody": NBODY,
    "select_kth": SELECT_KTH,
    "binarysearch": BINARYSEARCH,
    "duff": DUFF,
}
