"""Benchmark workloads: PARSEC-like and BEEBS-like mini-C suites."""

from repro.workloads.registry import (
    Workload,
    default_suite_for,
    load_suite,
    load_workload,
    suite_names,
)

__all__ = ["Workload", "load_suite", "load_workload", "suite_names",
           "default_suite_for"]
