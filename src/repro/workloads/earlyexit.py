"""Early-exit workloads: loops whose control leaves through ``break``,
early ``return``, or several ``return`` statements.

This is the loop family the pass pipeline silently forfeited before the
canonicalization subsystem (``passes/loop_canon.py``): every loop pass
bailed on loops with more than one exit, so a policy trained on the
other suites never saw rotation/unroll/licm/idiom fire on a ``break``
shape.  These programs make multi-exit loops first-class training and
evaluation citizens — and double as the differential corpus for the
multi-exit transformations (``tests/passes/test_multi_exit_loops.py``,
``benchmarks/test_loop_canon.py``).

Deterministic and checksum-printing, like the other suites.
"""

# The original miscompile reproducer (PR 2): Newton iteration whose
# early `return` inside the counted loop produced invalid IR under the
# seed's loop-rotate.  Kept here verbatim-shaped so the regression stays
# in the training distribution.
NEWTON_SQRT = r"""
int isqrt(int x) {
  if (x < 2) return x;
  int guess = x / 2;
  for (int i = 0; i < 12; i++) {
    int next = (guess + x / guess) / 2;
    if (next >= guess) return guess;
    guess = next;
  }
  return guess;
}

int main() {
  int total = 0;
  for (int v = 1; v < 60; v++) {
    total += isqrt(v * v * 3 + v);
  }
  print_int(total);
  return total % 251;
}
"""

# Linear search with break: the classic single-`break` loop shape, plus
# an IV-bounded break whose exact trip count is statically decidable.
SEARCH_BREAK = r"""
int data[48];

int find(int needle) {
  int pos = 0 - 1;
  for (int i = 0; i < 48; i++) {
    if (data[i] == needle) { pos = i; break; }
  }
  return pos;
}

int main() {
  for (int i = 0; i < 48; i++) { data[i] = (i * 37 + 11) % 97; }
  int hits = 0;
  for (int n = 0; n < 97; n += 5) {
    int where = find(n);
    if (where >= 0) hits += where;
  }
  for (int i = 0; i < 48; i++) {
    if (i == 17) break;
    data[i] = 0;
  }
  int residue = 0;
  for (int i = 0; i < 48; i++) residue += data[i];
  print_int(hits); print_int(residue);
  return (hits + residue) % 251;
}
"""

# Multi-`return` classifier: several early returns from one loop, each
# through a different exit edge.
CLASSIFY_RETURNS = r"""
int classify(int x) {
  for (int i = 1; i < 10; i++) {
    if (x < i * i) return i;
    if (x == i * 7) return 50 + i;
    if (x % (i + 13) == 0) return 90 + i;
  }
  return 0 - 1;
}

int main() {
  int acc = 0;
  for (int v = 0; v < 120; v++) {
    acc += classify(v);
  }
  print_int(acc);
  return acc % 251;
}
"""

# Accumulating while-loop with a data-dependent break in the middle of
# the body (values escape through both exits).
THRESHOLD_SUM = r"""
int main() {
  int total = 0;
  int steps = 0;
  int j = 1;
  while (j < 4000) {
    total += j % 23;
    if (total > 700) break;
    j = j + j % 7 + 1;
    steps += 1;
  }
  print_int(total); print_int(steps); print_int(j);
  return (total + steps + j) % 251;
}
"""

# Nested loops where the inner loop breaks out on a product bound; the
# outer loop's trip depends on the inner exit taken.
NESTED_BREAK = r"""
int main() {
  int acc = 0;
  for (int j = 0; j < 9; j++) {
    for (int k = 0; k < 14; k++) {
      if (k * j > 30) break;
      acc += k + j * 2;
    }
    if (acc > 900) break;
  }
  print_int(acc);
  return acc % 251;
}
"""

# Saturating memset-like fill with an IV break: loop-idiom's multi-exit
# memset recognition target (stores exactly 21 cells of 64).
PARTIAL_FILL = r"""
int buffer[64];

int main() {
  for (int i = 0; i < 64; i++) { buffer[i] = 5; }
  for (int i = 0; i < 64; i++) {
    if (i == 21) break;
    buffer[i] = 0;
  }
  int sum = 0;
  for (int i = 0; i < 64; i++) sum += buffer[i];
  print_int(sum);
  return sum % 251;
}
"""

# Two independent induction variables: the break is governed by a
# second counter with its own start and step, so the exact early-exit
# trip count needs the two-IV exit simulation (a single-IV analysis
# only sees ``i`` and falls back to the data-dependent path).  The
# second loop's break indexes the store by the secondary counter — the
# partial-fill idiom on a two-counter loop.
TWO_COUNTER = r"""
int cells[40];

int main() {
  int acc = 0;
  int j = 5;
  for (int i = 0; i < 30; i++) {
    if (j > 40) break;
    acc += i * 3 + j;
    j = j + 3;
  }
  int k = 0;
  for (int i = 0; i < 40; i++) { cells[i] = 9; }
  for (int i = 0; i < 99; i++) {
    if (k > 13) break;
    cells[k] = 0;
    k = k + 1;
  }
  int sum = 0;
  for (int i = 0; i < 40; i++) sum += cells[i];
  print_int(acc); print_int(sum);
  return (acc + sum) % 251;
}
"""

EARLYEXIT_SOURCES = {
    "newton_sqrt": NEWTON_SQRT,
    "search_break": SEARCH_BREAK,
    "classify_returns": CLASSIFY_RETURNS,
    "threshold_sum": THRESHOLD_SUM,
    "nested_break": NESTED_BREAK,
    "partial_fill": PARTIAL_FILL,
    "two_counter": TWO_COUNTER,
}
