"""Mini-C frontend: lexer, parser, and IR generation."""

from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse
from repro.lang.irgen import IRGenerator, compile_source

__all__ = ["Token", "tokenize", "parse", "IRGenerator", "compile_source"]
