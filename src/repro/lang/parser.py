"""Recursive-descent parser for the mini-C language."""

from repro.errors import ParserError
from repro.lang import ast
from repro.lang.lexer import tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "<<=": "<<", ">>=": ">>"}


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.pos]

    def _loc(self):
        token = self.current
        return {"line": token.line, "column": token.column}

    def advance(self):
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, text=None):
        token = self.current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        token = self.current
        expected = text if text is not None else kind
        raise ParserError(
            f"expected {expected!r}, found {token.text or token.kind!r}",
            token.line, token.column)

    # -- top level ---------------------------------------------------------------
    def parse_program(self):
        loc = self._loc()
        declarations = []
        while not self.check("eof"):
            declarations.append(self._declaration())
        return ast.Program(declarations, **loc)

    def _declaration(self):
        loc = self._loc()
        is_const = bool(self.accept("keyword", "const"))
        type_token = self.expect("keyword")
        if type_token.text not in ("int", "float", "void"):
            raise ParserError(f"expected a type, found {type_token.text!r}",
                              type_token.line, type_token.column)
        name = self.expect("ident").text
        if self.check("op", "("):
            if is_const:
                raise ParserError("functions cannot be const",
                                  type_token.line, type_token.column)
            return self._function_rest(type_token.text, name, loc)
        return self._global_rest(type_token.text, name, is_const, loc)

    def _function_rest(self, return_type, name, loc):
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                ploc = self._loc()
                ptype = self.expect("keyword")
                if ptype.text not in ("int", "float"):
                    raise ParserError(
                        f"invalid parameter type {ptype.text!r}",
                        ptype.line, ptype.column)
                pname = self.expect("ident").text
                is_array = False
                if self.accept("op", "["):
                    self.expect("op", "]")
                    is_array = True
                params.append(ast.Param(ptype.text, pname, is_array, **ploc))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self._block()
        return ast.FunctionDef(return_type, name, params, body, **loc)

    def _global_rest(self, type_name, name, is_const, loc):
        if type_name == "void":
            raise ParserError("void variables are not allowed",
                              loc["line"], loc["column"])
        array_size = None
        if self.accept("op", "["):
            array_size = self.expect("int").value
            self.expect("op", "]")
        initializer = None
        if self.accept("op", "="):
            if self.accept("op", "{"):
                initializer = []
                if not self.check("op", "}"):
                    while True:
                        initializer.append(self._expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", "}")
            else:
                initializer = self._expression()
        self.expect("op", ";")
        return ast.GlobalDecl(type_name, name, array_size, initializer,
                              is_const, **loc)

    # -- statements ----------------------------------------------------------------
    def _block(self):
        loc = self._loc()
        self.expect("op", "{")
        statements = []
        while not self.check("op", "}"):
            statements.append(self._statement())
        self.expect("op", "}")
        return ast.Block(statements, **loc)

    def _statement(self):
        loc = self._loc()
        if self.check("op", "{"):
            return self._block()
        if self.check("keyword", "int") or self.check("keyword", "float"):
            return self._var_decl()
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            condition = self._expression()
            self.expect("op", ")")
            then_body = self._statement()
            else_body = None
            if self.accept("keyword", "else"):
                else_body = self._statement()
            return ast.If(condition, then_body, else_body, **loc)
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            condition = self._expression()
            self.expect("op", ")")
            return ast.While(condition, self._statement(), **loc)
        if self.accept("keyword", "for"):
            return self._for(loc)
        if self.accept("keyword", "return"):
            value = None
            if not self.check("op", ";"):
                value = self._expression()
            self.expect("op", ";")
            return ast.Return(value, **loc)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break(**loc)
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue(**loc)
        stmt = self._simple_statement()
        self.expect("op", ";")
        return stmt

    def _var_decl(self):
        loc = self._loc()
        type_name = self.advance().text
        name = self.expect("ident").text
        array_size = None
        if self.accept("op", "["):
            array_size = self.expect("int").value
            self.expect("op", "]")
        initializer = None
        if self.accept("op", "="):
            initializer = self._expression()
        self.expect("op", ";")
        return ast.VarDecl(type_name, name, array_size, initializer, **loc)

    def _for(self, loc):
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self.check("keyword", "int") or self.check("keyword", "float"):
                init = self._var_decl()  # consumes the ';'
            else:
                init = self._simple_statement()
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        condition = None
        if not self.check("op", ";"):
            condition = self._expression()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._simple_statement()
        self.expect("op", ")")
        return ast.For(init, condition, step, self._statement(), **loc)

    def _simple_statement(self):
        """Assignment, compound assignment, increment, or expression."""
        loc = self._loc()
        expr = self._expression()
        if self.check("op", "="):
            self.advance()
            value = self._expression()
            self._check_assignable(expr, loc)
            return ast.Assign(expr, value, **loc)
        for compound, op in _COMPOUND_OPS.items():
            if self.check("op", compound):
                self.advance()
                value = self._expression()
                self._check_assignable(expr, loc)
                return ast.Assign(expr, ast.Binary(op, expr, value, **loc),
                                  **loc)
        if self.check("op", "++") or self.check("op", "--"):
            token = self.advance()
            op = "+" if token.text == "++" else "-"
            self._check_assignable(expr, loc)
            one = ast.IntLiteral(1, **loc)
            return ast.Assign(expr, ast.Binary(op, expr, one, **loc), **loc)
        return ast.ExprStmt(expr, **loc)

    @staticmethod
    def _check_assignable(expr, loc):
        if not isinstance(expr, (ast.Identifier, ast.Index)):
            raise ParserError("target of assignment is not an lvalue",
                              loc["line"], loc["column"])

    # -- expressions -------------------------------------------------------------
    def _expression(self):
        return self._ternary()

    def _ternary(self):
        loc = self._loc()
        condition = self._binary(1)
        if self.accept("op", "?"):
            then_value = self._expression()
            self.expect("op", ":")
            else_value = self._expression()
            return ast.Ternary(condition, then_value, else_value, **loc)
        return condition

    def _binary(self, min_precedence):
        loc = self._loc()
        lhs = self._unary()
        while True:
            token = self.current
            if token.kind != "op":
                return lhs
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self.advance()
            rhs = self._binary(precedence + 1)
            lhs = ast.Binary(token.text, lhs, rhs, **loc)

    def _unary(self):
        loc = self._loc()
        if self.accept("op", "-"):
            return ast.Unary("-", self._unary(), **loc)
        if self.accept("op", "!"):
            return ast.Unary("!", self._unary(), **loc)
        if self.accept("op", "~"):
            return ast.Unary("~", self._unary(), **loc)
        if self.accept("op", "+"):
            return self._unary()
        return self._postfix()

    def _postfix(self):
        loc = self._loc()
        expr = self._primary()
        while True:
            if self.check("op", "[") and isinstance(expr, ast.Identifier):
                self.advance()
                index = self._expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, **loc)
            else:
                return expr

    def _primary(self):
        loc = self._loc()
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(token.value, **loc)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(token.value, **loc)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(token.text, args, **loc)
            return ast.Identifier(token.text, **loc)
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        raise ParserError(f"unexpected token {token.text or token.kind!r}",
                          token.line, token.column)


def parse(source):
    """Parse mini-C source text into a :class:`repro.lang.ast.Program`."""
    return Parser(source).parse_program()
