"""Lexer for the mini-C language used to express workloads."""

from repro.errors import LexerError

KEYWORDS = frozenset({
    "int", "float", "void", "if", "else", "while", "for", "return",
    "break", "continue", "const",
})

# Multi-character operators first so maximal munch works.
OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)


class Token:
    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind, text, value=None, line=0, column=0):
        self.kind = kind      # 'ident', 'keyword', 'int', 'float', 'op', 'eof'
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"<Token {self.kind} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source):
    """Convert source text into a list of tokens (EOF token included)."""
    tokens = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        column = i - line_start + 1
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line, column)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line, column))
            i = j
            continue
        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                if j >= n or not source[j].isdigit():
                    raise LexerError("malformed exponent", line, column)
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", text, float(text), line, column))
            else:
                tokens.append(Token("int", text, int(text), line, column))
            i = j
            continue
        # Operators / punctuation.
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, line, column))
                i += len(op)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", None, line, (n - line_start) + 1))
    return tokens
