"""IR generation (with semantic analysis) for the mini-C language.

This is the frontend of Fig. 1 in the paper: it lowers source to the IR the
optimization phases operate on.  Locals are allocated with ``alloca`` and
accessed through loads/stores — promoting them to SSA registers is the job
of the ``mem2reg`` phase, which is what makes phase ordering matter.
"""

from repro.errors import SemanticError
from repro.ir import (
    arith,
    ArrayType,
    ConstantFloat,
    ConstantInt,
    F64,
    Function,
    FunctionType,
    GlobalVariable,
    I1,
    I64,
    IRBuilder,
    Module,
    PointerType,
    VOID,
)
from repro.ir.instructions import INTRINSICS
from repro.ir.intrinsics import intrinsic_param_types
from repro.lang import ast
from repro.lang.parser import parse

_TYPE_MAP = {"int": I64, "float": F64, "void": VOID}


def _err(node, message):
    raise SemanticError(f"{message} at line {node.line}:{node.column}")


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.symbols = {}

    def define(self, name, entry, node):
        if name in self.symbols:
            _err(node, f"redefinition of {name!r}")
        self.symbols[name] = entry

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _Symbol:
    """A named slot: either a scalar (pointer to T) or an array pointer."""

    def __init__(self, pointer, element_type, is_array):
        self.pointer = pointer
        self.element_type = element_type
        self.is_array = is_array


class IRGenerator:
    def __init__(self, program, module_name="module"):
        self.program = program
        self.module = Module(module_name)
        self.builder = IRBuilder()
        self.function = None
        self.globals_scope = _Scope()
        self.scope = self.globals_scope
        self.loop_stack = []  # (continue_target, break_target)

    # -- entry -------------------------------------------------------------
    def generate(self):
        functions = [d for d in self.program.declarations
                     if isinstance(d, ast.FunctionDef)]
        globals_ = [d for d in self.program.declarations
                    if isinstance(d, ast.GlobalDecl)]
        for decl in globals_:
            self._gen_global(decl)
        # Two passes over functions so forward references work.
        for decl in functions:
            self._declare_function(decl)
        for decl in functions:
            self._gen_function(decl)
        if "main" not in self.module.functions:
            raise SemanticError("program has no 'main' function")
        return self.module

    # -- globals ----------------------------------------------------------------
    def _gen_global(self, decl):
        element = _TYPE_MAP[decl.type_name]
        if decl.array_size is not None:
            value_type = ArrayType(element, decl.array_size)
            init = None
            if decl.initializer is not None:
                if not isinstance(decl.initializer, list):
                    _err(decl, "array initializer must be a brace list")
                if len(decl.initializer) > decl.array_size:
                    _err(decl, "too many initializer elements")
                init = [self._const_expr(e, element)
                        for e in decl.initializer]
        else:
            value_type = element
            init = None
            if decl.initializer is not None:
                init = self._const_expr(decl.initializer, element)
        gv = GlobalVariable(decl.name, value_type, init, decl.is_const)
        self.module.add_global(gv)
        symbol = _Symbol(gv, element, decl.array_size is not None)
        self.globals_scope.define(decl.name, symbol, decl)

    def _const_expr(self, expr, target_type):
        value = self._const_eval(expr)
        if target_type.is_float():
            return float(value)
        if isinstance(value, float):
            _err(expr, "float value in int initializer")
        return I64.wrap(int(value))

    def _const_eval(self, expr):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.Binary):
            lhs = self._const_eval(expr.lhs)
            rhs = self._const_eval(expr.rhs)
            if expr.op == "/":
                # Same exact truncating division the IR executes
                # (repro.ir.arith), never a float round-trip.
                if isinstance(lhs, float) or isinstance(rhs, float):
                    if rhs == 0:
                        _err(expr, "division by zero in constant "
                                   "initializer")
                    return arith.fdiv(lhs, rhs)
                if rhs == 0:
                    _err(expr, "division by zero in constant initializer")
                return arith.sdiv_trunc(lhs, rhs)
            ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                   "*": lambda a, b: a * b}
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        _err(expr, "initializer is not a constant expression")

    # -- functions --------------------------------------------------------------
    def _declare_function(self, decl):
        params = []
        for param in decl.params:
            base = _TYPE_MAP[param.type_name]
            params.append(PointerType(base) if param.is_array else base)
        ftype = FunctionType(_TYPE_MAP[decl.return_type], params)
        function = Function(decl.name, ftype)
        try:
            self.module.add_function(function)
        except ValueError:
            _err(decl, f"redefinition of function {decl.name!r}")

    def _gen_function(self, decl):
        self.function = self.module.get_function(decl.name)
        entry = self.function.append_block("entry")
        self.builder.set_insert_point(entry)
        self.scope = _Scope(self.globals_scope)
        for param, arg in zip(decl.params, self.function.args):
            arg.name = param.name
            if param.is_array:
                symbol = _Symbol(arg, arg.type.pointee, True)
            else:
                slot = self.builder.alloca(arg.type, name=f"{param.name}_addr")
                self.builder.store(arg, slot)
                symbol = _Symbol(slot, arg.type, False)
            self.scope.define(param.name, symbol, decl)
        self._gen_block(decl.body)
        self._seal_blocks(decl)
        self.scope = self.globals_scope
        self.function = None

    def _seal_blocks(self, decl):
        """Give every dangling block an implicit return."""
        ret = self.function.ftype.ret
        for block in self.function.blocks:
            if block.terminator() is None:
                self.builder.set_insert_point(block)
                if ret.is_void():
                    self.builder.ret()
                elif ret.is_float():
                    self.builder.ret(ConstantFloat(F64, 0.0))
                else:
                    self.builder.ret(ConstantInt(I64, 0))

    # -- statements ----------------------------------------------------------------
    def _gen_block(self, block):
        outer = self.scope
        self.scope = _Scope(outer)
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.scope = outer

    def _gen_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._gen_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._gen_continue(stmt)
        else:
            _err(stmt, f"cannot generate code for {type(stmt).__name__}")

    def _entry_alloca(self, allocated_type, name):
        """Allocate local slots in the entry block (as clang does), so
        every activation has one stable slot per local and mem2reg sees
        all of them."""
        from repro.ir import AllocaInst
        slot = AllocaInst(allocated_type, name)
        slot.name = f"{name}.{self.function.next_name('a')}"
        self.function.entry.insert(0, slot)
        return slot

    def _gen_var_decl(self, stmt):
        element = _TYPE_MAP[stmt.type_name]
        if stmt.array_size is not None:
            slot = self._entry_alloca(ArrayType(element, stmt.array_size),
                                      stmt.name)
            symbol = _Symbol(slot, element, True)
            if stmt.initializer is not None:
                _err(stmt, "local array initializers are not supported")
        else:
            slot = self._entry_alloca(element, stmt.name)
            symbol = _Symbol(slot, element, False)
            if stmt.initializer is not None:
                value = self._gen_expr(stmt.initializer)
                value = self._convert(value, element, stmt)
                self.builder.store(value, slot)
        self.scope.define(stmt.name, symbol, stmt)

    def _gen_assign(self, stmt):
        pointer, element = self._gen_lvalue(stmt.target)
        value = self._gen_expr(stmt.value)
        value = self._convert(value, element, stmt)
        self.builder.store(value, pointer)

    def _gen_lvalue(self, target):
        if isinstance(target, ast.Identifier):
            symbol = self._lookup(target)
            if symbol.is_array:
                _err(target, f"cannot assign to array {target.name!r}")
            return symbol.pointer, symbol.element_type
        if isinstance(target, ast.Index):
            symbol = self._lookup(target.base)
            if not symbol.is_array:
                _err(target, f"{target.base.name!r} is not an array")
            index = self._to_int(self._gen_expr(target.index), target)
            pointer = self.builder.gep(symbol.pointer, index)
            return pointer, symbol.element_type
        _err(target, "invalid assignment target")

    def _gen_if(self, stmt):
        condition = self._gen_condition(stmt.condition)
        then_block = self.function.append_block("if.then")
        merge_block = self.function.append_block("if.end")
        else_block = merge_block
        if stmt.else_body is not None:
            else_block = self.function.append_block("if.else")
        self.builder.cond_br(condition, then_block, else_block)
        self.builder.set_insert_point(then_block)
        self._gen_stmt(stmt.then_body)
        if self.builder.block.terminator() is None:
            self.builder.br(merge_block)
        if stmt.else_body is not None:
            self.builder.set_insert_point(else_block)
            self._gen_stmt(stmt.else_body)
            if self.builder.block.terminator() is None:
                self.builder.br(merge_block)
        self.builder.set_insert_point(merge_block)

    def _gen_while(self, stmt):
        header = self.function.append_block("while.cond")
        body = self.function.append_block("while.body")
        exit_block = self.function.append_block("while.end")
        self.builder.br(header)
        self.builder.set_insert_point(header)
        condition = self._gen_condition(stmt.condition)
        self.builder.cond_br(condition, body, exit_block)
        self.builder.set_insert_point(body)
        self.loop_stack.append((header, exit_block))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator() is None:
            self.builder.br(header)
        self.builder.set_insert_point(exit_block)

    def _gen_for(self, stmt):
        outer = self.scope
        self.scope = _Scope(outer)
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        header = self.function.append_block("for.cond")
        body = self.function.append_block("for.body")
        step_block = self.function.append_block("for.step")
        exit_block = self.function.append_block("for.end")
        self.builder.br(header)
        self.builder.set_insert_point(header)
        if stmt.condition is not None:
            condition = self._gen_condition(stmt.condition)
            self.builder.cond_br(condition, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.set_insert_point(body)
        self.loop_stack.append((step_block, exit_block))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator() is None:
            self.builder.br(step_block)
        self.builder.set_insert_point(step_block)
        if stmt.step is not None:
            self._gen_stmt(stmt.step)
        self.builder.br(header)
        self.builder.set_insert_point(exit_block)
        self.scope = outer

    def _gen_return(self, stmt):
        ret = self.function.ftype.ret
        if ret.is_void():
            if stmt.value is not None:
                _err(stmt, "void function cannot return a value")
            self.builder.ret()
        else:
            if stmt.value is None:
                _err(stmt, "non-void function must return a value")
            value = self._convert(self._gen_expr(stmt.value), ret, stmt)
            self.builder.ret(value)
        # Code after a return lands in a fresh (unreachable) block.
        dead = self.function.append_block("dead")
        self.builder.set_insert_point(dead)

    def _gen_break(self, stmt):
        if not self.loop_stack:
            _err(stmt, "break outside of a loop")
        self.builder.br(self.loop_stack[-1][1])
        self.builder.set_insert_point(self.function.append_block("dead"))

    def _gen_continue(self, stmt):
        if not self.loop_stack:
            _err(stmt, "continue outside of a loop")
        self.builder.br(self.loop_stack[-1][0])
        self.builder.set_insert_point(self.function.append_block("dead"))

    # -- expressions -------------------------------------------------------------
    def _gen_expr(self, expr):
        if isinstance(expr, ast.IntLiteral):
            return ConstantInt(I64, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return ConstantFloat(F64, expr.value)
        if isinstance(expr, ast.Identifier):
            symbol = self._lookup(expr)
            if symbol.is_array:
                _err(expr, f"array {expr.name!r} used as a scalar")
            return self.builder.load(symbol.pointer)
        if isinstance(expr, ast.Index):
            pointer, _ = self._gen_lvalue(expr)
            return self.builder.load(pointer)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        _err(expr, f"cannot generate code for {type(expr).__name__}")

    def _gen_unary(self, expr):
        value = self._gen_expr(expr.operand)
        if expr.op == "-":
            if value.type.is_float():
                return self.builder.fsub(ConstantFloat(F64, 0.0), value)
            return self.builder.sub(ConstantInt(I64, 0), value)
        if expr.op == "!":
            condition = self._to_i1(value, expr)
            flipped = self.builder.icmp("eq", condition, ConstantInt(I1, 0))
            return self.builder.cast("zext", flipped, I64)
        if expr.op == "~":
            value = self._to_int(value, expr)
            return self.builder.binop("xor", value, ConstantInt(I64, -1))
        _err(expr, f"unknown unary operator {expr.op!r}")

    _CMP_OPS = {"==": ("eq", "oeq"), "!=": ("ne", "one"),
                "<": ("slt", "olt"), "<=": ("sle", "ole"),
                ">": ("sgt", "ogt"), ">=": ("sge", "oge")}
    _INT_ONLY = {"%": "srem", "&": "and", "|": "or", "^": "xor",
                 "<<": "shl", ">>": "ashr"}
    _ARITH = {"+": ("add", "fadd"), "-": ("sub", "fsub"),
              "*": ("mul", "fmul"), "/": ("sdiv", "fdiv")}

    def _gen_binary(self, expr):
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs = self._gen_expr(expr.lhs)
        rhs = self._gen_expr(expr.rhs)
        if expr.op in self._CMP_OPS:
            lhs, rhs, is_float = self._unify(lhs, rhs, expr)
            int_pred, float_pred = self._CMP_OPS[expr.op]
            if is_float:
                bit = self.builder.fcmp(float_pred, lhs, rhs)
            else:
                bit = self.builder.icmp(int_pred, lhs, rhs)
            return self.builder.cast("zext", bit, I64)
        if expr.op in self._INT_ONLY:
            lhs = self._to_int(lhs, expr)
            rhs = self._to_int(rhs, expr)
            return self.builder.binop(self._INT_ONLY[expr.op], lhs, rhs)
        if expr.op in self._ARITH:
            lhs, rhs, is_float = self._unify(lhs, rhs, expr)
            int_op, float_op = self._ARITH[expr.op]
            return self.builder.binop(float_op if is_float else int_op,
                                      lhs, rhs)
        _err(expr, f"unknown binary operator {expr.op!r}")

    def _gen_logical(self, expr):
        """Short-circuit && / || producing an i64 0/1."""
        rhs_block = self.function.append_block("logic.rhs")
        merge = self.function.append_block("logic.end")
        lhs = self._to_i1(self._gen_expr(expr.lhs), expr)
        lhs_block = self.builder.block
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge)
        else:
            self.builder.cond_br(lhs, merge, rhs_block)
        self.builder.set_insert_point(rhs_block)
        rhs = self._to_i1(self._gen_expr(expr.rhs), expr)
        rhs_exit = self.builder.block
        self.builder.br(merge)
        self.builder.set_insert_point(merge)
        phi = self.builder.phi(I1)
        short_value = ConstantInt(I1, 0 if expr.op == "&&" else 1)
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return self.builder.cast("zext", phi, I64)

    def _gen_ternary(self, expr):
        condition = self._gen_condition(expr.condition)
        then_block = self.function.append_block("sel.then")
        else_block = self.function.append_block("sel.else")
        merge = self.function.append_block("sel.end")
        self.builder.cond_br(condition, then_block, else_block)
        self.builder.set_insert_point(then_block)
        then_value = self._gen_expr(expr.then_value)
        then_exit = self.builder.block
        self.builder.set_insert_point(else_block)
        else_value = self._gen_expr(expr.else_value)
        else_exit = self.builder.block
        if then_value.type != else_value.type:
            if then_value.type.is_float() or else_value.type.is_float():
                self.builder.set_insert_point(then_exit)
                then_value = self._convert(then_value, F64, expr)
                then_exit = self.builder.block
                self.builder.set_insert_point(else_exit)
                else_value = self._convert(else_value, F64, expr)
                else_exit = self.builder.block
            else:
                _err(expr, "ternary arms have incompatible types")
        self.builder.set_insert_point(then_exit)
        self.builder.br(merge)
        self.builder.set_insert_point(else_exit)
        self.builder.br(merge)
        self.builder.set_insert_point(merge)
        phi = self.builder.phi(then_value.type)
        phi.add_incoming(then_value, then_exit)
        phi.add_incoming(else_value, else_exit)
        return phi

    def _gen_call(self, expr):
        if expr.name in INTRINSICS:
            return self._gen_intrinsic_call(expr)
        function = self.module.functions.get(expr.name)
        if function is None:
            _err(expr, f"call to undefined function {expr.name!r}")
        params = function.ftype.params
        if len(params) != len(expr.args):
            _err(expr, f"{expr.name!r} expects {len(params)} arguments, "
                       f"got {len(expr.args)}")
        args = []
        for arg_expr, ptype in zip(expr.args, params):
            if ptype.is_pointer():
                if not isinstance(arg_expr, ast.Identifier):
                    _err(arg_expr, "array argument must be an array name")
                symbol = self._lookup(arg_expr)
                if not symbol.is_array:
                    _err(arg_expr, f"{arg_expr.name!r} is not an array")
                pointer = symbol.pointer
                if pointer.type != ptype:
                    if pointer.type.pointee.is_array():
                        pointer = self.builder.gep(pointer,
                                                   ConstantInt(I64, 0))
                    else:
                        _err(arg_expr, "array element type mismatch")
                args.append(pointer)
            else:
                value = self._gen_expr(arg_expr)
                args.append(self._convert(value, ptype, arg_expr))
        return self.builder.call(function, args)

    def _gen_intrinsic_call(self, expr):
        name = expr.name
        if name in ("memset", "memcpy"):
            _err(expr, f"{name} is compiler-internal")
        param_types = intrinsic_param_types(name)
        if len(param_types) != len(expr.args):
            _err(expr, f"{name!r} expects {len(param_types)} arguments")
        args = []
        for arg_expr, ptype in zip(expr.args, param_types):
            value = self._gen_expr(arg_expr)
            args.append(self._convert(value, ptype, arg_expr))
        return self.builder.call(name, args)

    # -- conversions -------------------------------------------------------------
    def _gen_condition(self, expr):
        return self._to_i1(self._gen_expr(expr), expr)

    def _to_i1(self, value, node):
        if value.type == I1:
            return value
        if value.type.is_float():
            return self.builder.fcmp("one", value, ConstantFloat(F64, 0.0))
        if value.type.is_int():
            return self.builder.icmp("ne", value,
                                     ConstantInt(value.type, 0))
        _err(node, f"value of type {value.type} is not a condition")

    def _to_int(self, value, node):
        if value.type == I64:
            return value
        if value.type == I1:
            return self.builder.cast("zext", value, I64)
        if value.type.is_float():
            return self.builder.cast("fptosi", value, I64)
        _err(node, f"cannot convert {value.type} to int")

    def _unify(self, lhs, rhs, node):
        """Apply the usual arithmetic conversions to a binary pair."""
        lhs = self._normalize_scalar(lhs, node)
        rhs = self._normalize_scalar(rhs, node)
        if lhs.type.is_float() or rhs.type.is_float():
            return (self._convert(lhs, F64, node),
                    self._convert(rhs, F64, node), True)
        return lhs, rhs, False

    def _normalize_scalar(self, value, node):
        """Widen i1 results (from comparisons) to i64, reject pointers."""
        if value.type == I1:
            return self.builder.cast("zext", value, I64)
        if not value.type.is_scalar():
            _err(node, f"value of type {value.type} in arithmetic")
        return value

    def _convert(self, value, target, node):
        if value.type == target:
            return value
        if target.is_float() and value.type.is_int():
            value = self._to_int(value, node)
            return self.builder.sitofp(value)
        if target == I64 and value.type.is_float():
            return self.builder.cast("fptosi", value, I64)
        if target == I64 and value.type == I1:
            return self.builder.cast("zext", value, I64)
        _err(node, f"cannot convert {value.type} to {target}")

    def _lookup(self, node):
        symbol = self.scope.lookup(node.name)
        if symbol is None:
            _err(node, f"use of undeclared identifier {node.name!r}")
        return symbol


def compile_source(source, module_name="module"):
    """Parse and lower mini-C ``source`` into an IR :class:`Module`."""
    program = parse(source)
    return IRGenerator(program, module_name).generate()
