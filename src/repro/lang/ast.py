"""Abstract syntax tree for the mini-C language.

Nodes are intentionally plain: positional fields plus a source location for
diagnostics.  Semantic information (types) is attached during IR
generation, not stored on the tree.
"""


class Node:
    def __init__(self, line=0, column=0):
        self.line = line
        self.column = column


# -- top level ---------------------------------------------------------------

class Program(Node):
    def __init__(self, declarations, **kw):
        super().__init__(**kw)
        self.declarations = declarations  # GlobalDecl | FunctionDef


class GlobalDecl(Node):
    def __init__(self, type_name, name, array_size, initializer,
                 is_const=False, **kw):
        super().__init__(**kw)
        self.type_name = type_name
        self.name = name
        self.array_size = array_size      # None for scalars
        self.initializer = initializer    # Expr | list[Expr] | None
        self.is_const = is_const


class Param(Node):
    def __init__(self, type_name, name, is_array, **kw):
        super().__init__(**kw)
        self.type_name = type_name
        self.name = name
        self.is_array = is_array


class FunctionDef(Node):
    def __init__(self, return_type, name, params, body, **kw):
        super().__init__(**kw)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


# -- statements -----------------------------------------------------------------

class Block(Node):
    def __init__(self, statements, **kw):
        super().__init__(**kw)
        self.statements = statements


class VarDecl(Node):
    def __init__(self, type_name, name, array_size, initializer, **kw):
        super().__init__(**kw)
        self.type_name = type_name
        self.name = name
        self.array_size = array_size
        self.initializer = initializer


class ExprStmt(Node):
    def __init__(self, expr, **kw):
        super().__init__(**kw)
        self.expr = expr


class Assign(Node):
    def __init__(self, target, value, **kw):
        super().__init__(**kw)
        self.target = target  # Identifier | Index
        self.value = value


class If(Node):
    def __init__(self, condition, then_body, else_body, **kw):
        super().__init__(**kw)
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body


class While(Node):
    def __init__(self, condition, body, **kw):
        super().__init__(**kw)
        self.condition = condition
        self.body = body


class For(Node):
    def __init__(self, init, condition, step, body, **kw):
        super().__init__(**kw)
        self.init = init          # VarDecl | Assign | None
        self.condition = condition
        self.step = step          # Assign | None
        self.body = body


class Return(Node):
    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class Break(Node):
    pass


class Continue(Node):
    pass


# -- expressions -------------------------------------------------------------

class IntLiteral(Node):
    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class FloatLiteral(Node):
    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class Identifier(Node):
    def __init__(self, name, **kw):
        super().__init__(**kw)
        self.name = name


class Index(Node):
    def __init__(self, base, index, **kw):
        super().__init__(**kw)
        self.base = base      # Identifier
        self.index = index


class Unary(Node):
    def __init__(self, op, operand, **kw):
        super().__init__(**kw)
        self.op = op          # '-', '!', '~'
        self.operand = operand


class Binary(Node):
    def __init__(self, op, lhs, rhs, **kw):
        super().__init__(**kw)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Ternary(Node):
    def __init__(self, condition, then_value, else_value, **kw):
        super().__init__(**kw)
        self.condition = condition
        self.then_value = then_value
        self.else_value = else_value


class Call(Node):
    def __init__(self, name, args, **kw):
        super().__init__(**kw)
        self.name = name
        self.args = args
