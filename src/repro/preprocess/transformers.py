"""Distribution-shaping preprocessors: PowerTransformer (Yeo-Johnson) and
QuantileTransformer (paper Table III, third row)."""

import numpy as np

from repro.preprocess.base import Preprocessor, register_preprocessor


def _yeo_johnson(x, lam):
    out = np.empty_like(x)
    positive = x >= 0
    if abs(lam) > 1e-8:
        out[positive] = ((x[positive] + 1.0) ** lam - 1.0) / lam
    else:
        out[positive] = np.log1p(x[positive])
    if abs(lam - 2.0) > 1e-8:
        out[~positive] = -(((-x[~positive] + 1.0) ** (2.0 - lam)) - 1.0) \
            / (2.0 - lam)
    else:
        out[~positive] = -np.log1p(-x[~positive])
    return out


def _yeo_johnson_loglik(x, lam):
    n = len(x)
    transformed = _yeo_johnson(x, lam)
    variance = transformed.var()
    if variance <= 1e-12:
        return -np.inf
    loglik = -0.5 * n * np.log(variance)
    loglik += (lam - 1.0) * np.sum(np.sign(x) * np.log1p(np.abs(x)))
    return loglik


def _golden_section(fn, lo, hi, iterations=40):
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = fn(c), fn(d)
    for _ in range(iterations):
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = fn(d)
    return (a + b) / 2.0


@register_preprocessor("power")
class PowerTransformer(Preprocessor):
    """Yeo-Johnson power transform with per-feature MLE lambda, followed
    by standardization."""

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.lambdas_ = np.empty(X.shape[1])
        for j in range(X.shape[1]):
            column = X[:, j]
            if column.std() <= 1e-12:
                self.lambdas_[j] = 1.0
                continue
            self.lambdas_[j] = _golden_section(
                lambda lam, col=column: _yeo_johnson_loglik(col, lam),
                -2.0, 4.0)
        transformed = self._apply(X)
        self.mean_ = transformed.mean(axis=0)
        scale = transformed.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def _apply(self, X):
        out = np.empty_like(X, dtype=float)
        for j in range(X.shape[1]):
            out[:, j] = _yeo_johnson(X[:, j].astype(float),
                                     self.lambdas_[j])
        return out

    def transform(self, X):
        X = np.asarray(X, dtype=float)
        return (self._apply(X) - self.mean_) / self.scale_


@register_preprocessor("quantile")
class QuantileTransformer(Preprocessor):
    """Map each feature through its empirical CDF to a uniform (or
    normal) output distribution."""

    def __init__(self, n_quantiles=64, output="uniform"):
        self.n_quantiles = n_quantiles
        self.output = output

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        n_q = min(self.n_quantiles, X.shape[0])
        probabilities = np.linspace(0.0, 1.0, n_q)
        self.quantiles_ = np.quantile(X, probabilities, axis=0)
        self.probabilities_ = probabilities
        return self

    def transform(self, X):
        X = np.asarray(X, dtype=float)
        out = np.empty_like(X)
        for j in range(X.shape[1]):
            out[:, j] = np.interp(X[:, j], self.quantiles_[:, j],
                                  self.probabilities_)
        if self.output == "normal":
            clipped = np.clip(out, 1e-6, 1.0 - 1e-6)
            out = _probit(clipped)
        return out


def _probit(p):
    """Inverse normal CDF (Acklam's rational approximation)."""
    from scipy.special import ndtri
    return ndtri(p)
