"""PCA with Minka-MLE dimensionality selection, and RBF kernel PCA
(paper Table III, first row; the PSS input uses PCA with MLE, §IV)."""

import numpy as np

from repro.preprocess.base import Preprocessor, register_preprocessor


def minka_mle_dimension(eigenvalues, n_samples):
    """Minka's MLE for the intrinsic PCA dimensionality (NIPS 2000).

    Evaluates the (log-)evidence of each candidate dimension ``k`` and
    returns the argmax.
    """
    eigenvalues = np.asarray(
        [e for e in eigenvalues if e > 1e-12], dtype=float)
    n_features = len(eigenvalues)
    if n_features <= 1:
        return max(1, n_features)
    best_k = 1
    best_ll = -np.inf
    for k in range(1, n_features):
        # Log-likelihood of a probabilistic PCA model with dimension k.
        sigma2 = eigenvalues[k:].mean()
        if sigma2 <= 0:
            continue
        ll = -0.5 * n_samples * (
            np.log(eigenvalues[:k]).sum()
            + (n_features - k) * np.log(sigma2))
        # Penalty term ~ number of free parameters (BIC-flavoured
        # simplification of Minka's Laplace evidence).
        params = n_features * k - k * (k - 1) / 2.0 + k + 1
        ll -= 0.5 * params * np.log(n_samples)
        if ll > best_ll:
            best_ll = ll
            best_k = k
    return best_k


@register_preprocessor("pca")
class PCA(Preprocessor):
    """Principal component analysis via SVD.

    ``n_components`` may be an int, a float in (0,1) (explained-variance
    target), or ``"mle"`` (Minka's automatic choice).
    """

    def __init__(self, n_components="mle", whiten=False):
        self.n_components = n_components
        self.whiten = whiten

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered,
                                               full_matrices=False)
        n_samples = max(X.shape[0] - 1, 1)
        explained = (singular_values ** 2) / n_samples
        if self.n_components == "mle":
            k = minka_mle_dimension(explained, X.shape[0])
        elif isinstance(self.n_components, float) and \
                0 < self.n_components < 1:
            total = explained.sum()
            ratio = np.cumsum(explained) / total if total > 0 else \
                np.ones_like(explained)
            k = int(np.searchsorted(ratio, self.n_components) + 1)
        else:
            k = int(self.n_components)
        k = max(1, min(k, len(singular_values)))
        self.n_components_ = k
        self.components_ = vt[:k]
        self.explained_variance_ = explained[:k]
        return self

    def transform(self, X):
        centered = np.asarray(X, dtype=float) - self.mean_
        projected = centered @ self.components_.T
        if self.whiten:
            projected = projected / np.sqrt(
                np.maximum(self.explained_variance_, 1e-12))
        return projected


@register_preprocessor("kernel-pca")
class KernelPCA(Preprocessor):
    """Kernel PCA with an RBF kernel."""

    def __init__(self, n_components=8, gamma=None):
        self.n_components = n_components
        self.gamma = gamma

    def _kernel(self, A, B):
        sq = (np.sum(A ** 2, axis=1)[:, None]
              + np.sum(B ** 2, axis=1)[None, :]
              - 2.0 * A @ B.T)
        return np.exp(-self.gamma_ * np.maximum(sq, 0.0))

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.X_fit_ = X
        self.gamma_ = self.gamma if self.gamma is not None \
            else 1.0 / max(X.shape[1], 1)
        K = self._kernel(X, X)
        n = K.shape[0]
        ones = np.full((n, n), 1.0 / n)
        K_centered = K - ones @ K - K @ ones + ones @ K @ ones
        eigenvalues, eigenvectors = np.linalg.eigh(K_centered)
        order = np.argsort(eigenvalues)[::-1]
        k = min(self.n_components, n)
        self.eigenvalues_ = np.maximum(eigenvalues[order][:k], 1e-12)
        self.alphas_ = eigenvectors[:, order][:, :k]
        self._K_fit_rows = K.mean(axis=1)
        self._K_fit_all = K.mean()
        return self

    def transform(self, X):
        K = self._kernel(np.asarray(X, dtype=float), self.X_fit_)
        K_centered = (K - K.mean(axis=1)[:, None]
                      - self._K_fit_rows[None, :] + self._K_fit_all)
        return K_centered @ (self.alphas_ / np.sqrt(self.eigenvalues_))


@register_preprocessor("nca")
class NCA(Preprocessor):
    """Neighbourhood components analysis, adapted for regression.

    Targets are discretized into quantile bins (NCA is a metric learner
    for classification); a linear map A is optimized by gradient ascent on
    the expected leave-one-out soft-neighbour accuracy.
    """

    def __init__(self, n_components=8, n_bins=5, iterations=40,
                 learning_rate=0.05, seed=0):
        self.n_components = n_components
        self.n_bins = n_bins
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.seed = seed

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        n, d = X.shape
        k = min(self.n_components, d)
        # Standardize internally for stable gradients.
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        rng = np.random.default_rng(self.seed)
        if y is None:
            # Unsupervised fallback: random projection refined to PCA.
            pca = PCA(n_components=k).fit(Xs)
            self.A_ = pca.components_
            return self
        y = np.asarray(y, dtype=float)
        edges = np.quantile(y, np.linspace(0, 1, self.n_bins + 1)[1:-1])
        labels = np.digitize(y, edges)
        A = rng.normal(0.0, 0.1, size=(k, d))
        same = labels[:, None] == labels[None, :]
        for _ in range(self.iterations):
            Z = Xs @ A.T                       # n x k
            diff = Z[:, None, :] - Z[None, :, :]
            sq = np.sum(diff ** 2, axis=2)
            np.fill_diagonal(sq, np.inf)
            logits = -sq
            logits -= logits.max(axis=1, keepdims=True)
            P = np.exp(logits)
            P /= np.maximum(P.sum(axis=1, keepdims=True), 1e-12)
            p_i = (P * same).sum(axis=1)        # soft accuracy per point
            # Gradient of sum(p_i) w.r.t. A (Goldberger et al. 2005).
            Xdiff = Xs[:, None, :] - Xs[None, :, :]   # n x n x d
            W = P * p_i[:, None] - P * same
            # grad = 2A * sum_ij W_ij (x_i - x_j)(x_i - x_j)^T
            WX = np.einsum("ij,ijd->id", W, Xdiff)
            grad = 2.0 * (A @ (Xs.T @ WX + WX.T @ Xs)) / n
            A += self.learning_rate * grad
            if not np.all(np.isfinite(A)):
                A = rng.normal(0.0, 0.1, size=(k, d))
        self.A_ = A
        return self

    def transform(self, X):
        Xs = (np.asarray(X, dtype=float) - self._mean) / self._scale
        return Xs @ self.A_.T
