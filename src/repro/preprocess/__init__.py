"""Preprocessing algorithms of the paper's Table III.

======================  =================================
Paper name              Registry name
======================  =================================
PCA                     ``pca``
Kernel PCA              ``kernel-pca``
NCA                     ``nca``
Mean-Std Scaling        ``mean-std``
Min-Max Scaling         ``min-max``
Max-Abs Scaling         ``max-abs``
Robust Scaling          ``robust``
Power Transformer       ``power``
Quantile Transformer    ``quantile``
(no preprocessing)      ``none``
======================  =================================
"""

from repro.preprocess.base import (
    PREPROCESSOR_REGISTRY,
    Identity,
    Preprocessor,
    available_preprocessors,
    create_preprocessor,
    register_preprocessor,
)
from repro.preprocess.scalers import (
    MaxAbsScaler,
    MinMaxScaler,
    RobustScaler,
    StandardScaler,
)
from repro.preprocess.pca import NCA, KernelPCA, PCA, minka_mle_dimension
from repro.preprocess.transformers import (
    PowerTransformer,
    QuantileTransformer,
)

TABLE_III_PREPROCESSORS = (
    "pca", "kernel-pca", "nca",
    "mean-std", "min-max", "max-abs",
    "robust", "power", "quantile",
)

__all__ = [
    "Preprocessor", "Identity", "PREPROCESSOR_REGISTRY",
    "available_preprocessors", "create_preprocessor",
    "register_preprocessor",
    "StandardScaler", "MinMaxScaler", "MaxAbsScaler", "RobustScaler",
    "PCA", "KernelPCA", "NCA", "minka_mle_dimension",
    "PowerTransformer", "QuantileTransformer",
    "TABLE_III_PREPROCESSORS",
]
