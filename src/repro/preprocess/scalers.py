"""Feature scaling preprocessors (paper Table III, bottom two rows)."""

import numpy as np

from repro.preprocess.base import Preprocessor, register_preprocessor


@register_preprocessor("mean-std")
class StandardScaler(Preprocessor):
    """Zero mean, unit variance per feature."""

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        self.scale_ = X.std(axis=0)
        self.scale_[self.scale_ <= 1e-12 * np.maximum(
            np.abs(self.mean_), 1.0)] = 1.0
        return self

    def transform(self, X):
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_


@register_preprocessor("min-max")
class MinMaxScaler(Preprocessor):
    """Rescale each feature into [0, 1]."""

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span <= 1e-12 * np.maximum(np.abs(self.min_), 1.0)] = 1.0
        self.span_ = span
        return self

    def transform(self, X):
        return (np.asarray(X, dtype=float) - self.min_) / self.span_


@register_preprocessor("max-abs")
class MaxAbsScaler(Preprocessor):
    """Divide each feature by its maximum absolute value."""

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        scale = np.abs(X).max(axis=0)
        scale[scale <= 1e-300] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X):
        return np.asarray(X, dtype=float) / self.scale_


@register_preprocessor("robust")
class RobustScaler(Preprocessor):
    """Center on the median, scale by the interquartile range."""

    def fit(self, X, y=None):
        X = np.asarray(X, dtype=float)
        self.median_ = np.median(X, axis=0)
        q75 = np.percentile(X, 75, axis=0)
        q25 = np.percentile(X, 25, axis=0)
        iqr = q75 - q25
        iqr[iqr <= 1e-12 * np.maximum(np.abs(self.median_), 1.0)] = 1.0
        self.iqr_ = iqr
        return self

    def transform(self, X):
        return (np.asarray(X, dtype=float) - self.median_) / self.iqr_
