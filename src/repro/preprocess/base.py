"""Preprocessor protocol + registry (paper Table III)."""

import numpy as np

# name -> factory; populated by @register_preprocessor.
PREPROCESSOR_REGISTRY = {}


def register_preprocessor(name):
    def decorate(cls):
        PREPROCESSOR_REGISTRY[name] = cls
        cls.preprocessor_name = name
        return cls
    return decorate


def available_preprocessors():
    return sorted(PREPROCESSOR_REGISTRY)


def create_preprocessor(name, **kwargs):
    try:
        factory = PREPROCESSOR_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown preprocessor {name!r}") from None
    return factory(**kwargs)


class Preprocessor:
    """fit/transform protocol.  ``y`` is optional (NCA uses it)."""

    preprocessor_name = "<abstract>"

    def fit(self, X, y=None):
        raise NotImplementedError

    def transform(self, X):
        raise NotImplementedError

    def fit_transform(self, X, y=None):
        self.fit(X, y)
        return self.transform(X)


@register_preprocessor("none")
class Identity(Preprocessor):
    """No preprocessing (the search baseline)."""

    def fit(self, X, y=None):
        return self

    def transform(self, X):
        return np.asarray(X, dtype=float)
