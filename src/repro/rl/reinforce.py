"""REINFORCE training of the Phase Selection Policy (paper Alg. 2).

Episodes run in batches; after each batch the policy is updated with the
policy-gradient estimator over discounted returns with a moving-average
baseline (Williams 1992, the method the paper cites).

Table V hyperparameters: 3 layers, inner size 16, 512 episodes, batch
size 6, learning rate 0.1, max phase sequence length 128, max inactive
subsequence length 8 (the last one is a deployment parameter; see
:mod:`repro.pss`).
"""

import time

import numpy as np

from repro.features import extract_static_features
from repro.rl.environment import PhaseSequenceEnv, RewardConfig
from repro.rl.policy import FeatureEncoder, PolicyNetwork


class TrainingConfig:
    """Defaults follow the paper's Table V (episode counts and sequence
    lengths are scaled down by default so tests stay fast; pass
    ``TrainingConfig.paper()`` for the full configuration)."""

    def __init__(self, num_episodes=96, batch_size=6, learning_rate=0.1,
                 hidden=16, n_layers=3, max_sequence_length=16,
                 discount=0.95, entropy_bonus=0.01, seed=0):
        self.num_episodes = num_episodes
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.hidden = hidden
        self.n_layers = n_layers
        self.max_sequence_length = max_sequence_length
        self.discount = discount
        self.entropy_bonus = entropy_bonus
        self.seed = seed

    @classmethod
    def paper(cls):
        """The literal Table V parameters."""
        return cls(num_episodes=512, batch_size=6, learning_rate=0.1,
                   hidden=16, n_layers=3, max_sequence_length=128)


class ReinforceTrainer:
    """TRAINPOLICY(programs, num_episodes, batch_size, learning_rate)."""

    def __init__(self, workloads, platform, estimator, phases,
                 config=None, reward_config=None, engine=None):
        self.workloads = list(workloads)
        self.platform = platform
        self.estimator = estimator
        self.phases = list(phases)
        self.config = config or TrainingConfig()
        self.reward_config = reward_config or RewardConfig()
        # One engine is shared by every episode's environment, so PE
        # scores of revisited module states are computed once per
        # training run instead of once per visit.
        from repro.engine import EvaluationEngine
        self.engine = engine or EvaluationEngine(platform)
        self.encoder = None
        self.policy = None
        self.history = []
        self.training_seconds = 0.0

    def _fit_encoder(self):
        """PCA-MLE over the initial feature vectors of the programs
        (paper §IV: features preprocessed by PCA with MLE)."""
        rows = []
        for workload in self.workloads:
            module = workload.compile()
            rows.append(extract_static_features(module))
            # A partially optimized variant widens the encoder's view.
            from repro.passes import PassManager
            PassManager().run(module, ["mem2reg", "simplifycfg"])
            rows.append(extract_static_features(module))
        self.encoder = FeatureEncoder().fit(np.asarray(rows))

    def train(self, progress=None):
        started = time.perf_counter()
        config = self.config
        rng = np.random.default_rng(config.seed)
        self._fit_encoder()
        self.policy = PolicyNetwork(self.encoder.output_dim,
                                    len(self.phases),
                                    hidden=config.hidden,
                                    n_layers=config.n_layers,
                                    seed=config.seed)
        baseline = 0.0
        episode_count = 0
        while episode_count < config.num_episodes:
            batch = []
            for _ in range(config.batch_size):
                workload = self.workloads[rng.integers(
                    len(self.workloads))]
                episode = self._run_episode(workload, rng)
                batch.append(episode)
            baseline = self._update_policy(batch, baseline)
            episode_count += config.batch_size
            mean_return = float(np.mean(
                [sum(e["rewards"]) for e in batch]))
            self.history.append(mean_return)
            if progress is not None:
                progress(episode_count, mean_return)
        self.training_seconds = time.perf_counter() - started
        return self.policy

    def _run_episode(self, workload, rng):
        environment = PhaseSequenceEnv(
            workload, self.platform, self.estimator, self.phases,
            reward_config=self.reward_config,
            max_steps=self.config.max_sequence_length,
            engine=self.engine)
        raw_state = environment.reset()
        states, actions, rewards, caches = [], [], [], []
        done = False
        while not done:
            encoded = self.encoder.encode(raw_state)
            probabilities, cache = self.policy.forward(encoded)
            action = int(rng.choice(len(self.phases), p=probabilities))
            raw_state, reward, done, _ = environment.step(action)
            states.append(encoded)
            actions.append(action)
            rewards.append(reward)
            caches.append(cache)
        return {"states": states, "actions": actions,
                "rewards": rewards, "caches": caches,
                "improvement": environment.cumulative_improvement()}

    def _update_policy(self, batch, baseline):
        config = self.config
        # Discounted returns per step.
        all_grad_w = [np.zeros_like(w) for w in self.policy.weights]
        all_grad_b = [np.zeros_like(b) for b in self.policy.biases]
        batch_returns = []
        for episode in batch:
            returns = []
            running = 0.0
            for reward in reversed(episode["rewards"]):
                running = reward + config.discount * running
                returns.append(running)
            returns.reverse()
            batch_returns.extend(returns)
        scale_norm = max(np.std(batch_returns), 1e-6)
        new_baseline = 0.9 * baseline + 0.1 * float(
            np.mean(batch_returns))
        total_steps = max(len(batch_returns), 1)
        index = 0
        for episode in batch:
            returns = batch_returns[index:index + len(episode["rewards"])]
            index += len(episode["rewards"])
            for cache, action, g in zip(episode["caches"],
                                        episode["actions"], returns):
                advantage = (g - new_baseline) / scale_norm
                grad_w, grad_b = self.policy.gradients(cache, action,
                                                       advantage)
                for layer in range(len(all_grad_w)):
                    all_grad_w[layer] += grad_w[layer] / total_steps
                    all_grad_b[layer] += grad_b[layer] / total_steps
        self.policy.apply_gradients(all_grad_w, all_grad_b,
                                    config.learning_rate)
        return new_baseline
