"""RL training of the Phase Selection Policy (paper Alg. 2)."""

from repro.rl.environment import PhaseSequenceEnv, RewardConfig
from repro.rl.policy import FeatureEncoder, PolicyNetwork
from repro.rl.reinforce import ReinforceTrainer, TrainingConfig

__all__ = [
    "PolicyNetwork", "FeatureEncoder",
    "PhaseSequenceEnv", "RewardConfig",
    "ReinforceTrainer", "TrainingConfig",
]
