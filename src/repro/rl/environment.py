"""Phase-selection RL environment.

State: the program's static IR features (encoded by the policy's
FeatureEncoder).  Action: one optimization phase.  Reward: multi-objective
improvement of PE-*predicted* dynamic features plus directly measured code
size, with a penalty for degrading any objective (paper §III-C: the reward
"penalizes any degradation of the dynamic features", guiding the policy
toward Pareto-optimal sequences) — no profiling in the loop, which is the
paper's training-time win.
"""


from repro.engine import EvaluationEngine
from repro.features import extract_static_features
from repro.ir.printer import module_fingerprint
from repro.passes import AnalysisManager, create_pass


class RewardConfig:
    """Weights of the multi-objective reward (paper objectives:
    execution time, energy consumption, code size)."""

    def __init__(self, time_weight=1.0, energy_weight=0.7,
                 size_weight=0.3, degradation_penalty=1.5,
                 size_guard=1.02, size_guard_penalty=8.0):
        self.time_weight = time_weight
        self.energy_weight = energy_weight
        self.size_weight = size_weight
        self.degradation_penalty = degradation_penalty
        #: Hard code-size budget relative to the *initial* program: any
        #: step that leaves the program above ``size_guard x initial``
        #: pays ``size_guard_penalty`` per unit of relative overshoot,
        #: every step it stays there.  The per-step relative size weight
        #: (0.3) rarely outweighs PE-predicted time gains, so unguarded
        #: policies occasionally converge onto unroll/vectorize recipes
        #: whose x86 code size breaks the paper's "roughly flat" claim
        #: (Fig. 5); the cumulative guard makes such recipes strictly
        #: unattractive.  Tuned on PARSEC/x86 across training seeds
        #: 0-2: (1.02, 8.0) keeps every seed's mean size ratio <= 1.05
        #: with unchanged mean time; the milder (1.05, 4.0) did not.
        #: ``size_guard=None`` disables the guard.
        self.size_guard = size_guard
        self.size_guard_penalty = size_guard_penalty

    def reward(self, previous, current, initial=None):
        """Relative-improvement reward between objective dicts with keys
        time/energy/size (lower is better for all).  ``initial`` (the
        episode's starting objectives) enables the size guard."""
        total = 0.0
        for key, weight in (("time", self.time_weight),
                            ("energy", self.energy_weight),
                            ("size", self.size_weight)):
            prev = max(previous[key], 1e-9)
            improvement = (prev - current[key]) / prev
            total += weight * improvement
            if improvement < 0.0:
                total += self.degradation_penalty * improvement
        if initial is not None and self.size_guard is not None:
            baseline = max(initial["size"], 1e-9)
            limit = self.size_guard * baseline
            if current["size"] > limit:
                overshoot = (current["size"] - limit) / baseline
                total -= self.size_guard_penalty * overshoot
        return total


class PhaseSequenceEnv:
    """One episode optimizes one program with the current policy."""

    def __init__(self, workload, platform, estimator, phases,
                 reward_config=None, max_steps=24, engine=None):
        self.workload = workload
        self.platform = platform
        self.estimator = estimator
        self.phases = list(phases)
        self.reward_config = reward_config or RewardConfig()
        self.max_steps = max_steps
        # The engine caches (module content -> PE objectives), so states
        # revisited across episodes (every initial state, every common
        # sequence prefix) skip feature extraction and inference.
        self.engine = engine or EvaluationEngine(platform)
        self.module = None
        self.steps = 0
        self.applied = []
        self._objectives = None
        self._fingerprint = None
        # Per-episode analysis manager + per-function feature partials:
        # a step that leaves a function untouched reuses its analyses,
        # fingerprint, and static feature contribution.
        self._am = None
        self._partials = {}

    # -- core ----------------------------------------------------------------
    def _measure_objectives(self, fingerprint=None):
        """PE-predicted time and energy + measured code size (the paper's
        PSS trains against estimated dynamic features)."""
        return self.engine.predicted_objectives(
            self.module, self.estimator, fingerprint=fingerprint,
            am=self._am)

    def reset(self):
        self.module = self.workload.compile()
        self.steps = 0
        self.applied = []
        if len(self._partials) > 4096:
            self._partials.clear()  # bounded like the engine's cache
        self._am = AnalysisManager()
        self._fingerprint = module_fingerprint(self.module, self._am)
        self._objectives = self._measure_objectives(self._fingerprint)
        self.initial_objectives = dict(self._objectives)
        return extract_static_features(self.module, am=self._am,
                                       partial_cache=self._partials)

    def step(self, action_index):
        """Apply a phase.  Returns (state, reward, done, info)."""
        phase_name = self.phases[action_index]
        create_pass(phase_name).run(self.module, self._am)
        self.steps += 1
        self.applied.append(phase_name)
        fingerprint = module_fingerprint(self.module, self._am)
        changed = fingerprint != self._fingerprint
        self._fingerprint = fingerprint
        if changed:
            objectives = self._measure_objectives(fingerprint)
            reward = self.reward_config.reward(self._objectives,
                                               objectives,
                                               self.initial_objectives)
            self._objectives = objectives
        else:
            reward = 0.0  # inactive phase: no change, no reward
        done = self.steps >= self.max_steps
        state = extract_static_features(self.module, am=self._am,
                                        partial_cache=self._partials)
        return state, reward, done, {"changed": changed,
                                     "phase": phase_name}

    def cumulative_improvement(self):
        """Relative improvement of each objective vs. the initial code."""
        out = {}
        for key in ("time", "energy", "size"):
            initial = max(self.initial_objectives[key], 1e-9)
            out[key] = (initial - self._objectives[key]) / initial
        return out
