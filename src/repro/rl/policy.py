"""The Phase Selection Policy network.

A small MLP (paper Table V: 3 layers, inner size 16) over PCA-MLE-reduced
static features (paper §IV), with a softmax head over the optimization
phases.  Gradients are computed manually (REINFORCE needs only
d log pi / d theta).
"""

import numpy as np

from repro.preprocess import PCA, StandardScaler


class PolicyNetwork:
    def __init__(self, input_dim, n_actions, hidden=16, n_layers=3,
                 seed=0):
        self.input_dim = input_dim
        self.n_actions = n_actions
        self.hidden = hidden
        self.n_layers = n_layers
        rng = np.random.default_rng(seed)
        sizes = ([input_dim] + [hidden] * (n_layers - 1) + [n_actions])
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-limit, limit,
                                            size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- forward --------------------------------------------------------
    def forward(self, x):
        """Returns (probabilities, cache-for-backprop)."""
        activations = [np.asarray(x, dtype=float)]
        pre = []
        h = activations[0]
        last = len(self.weights) - 1
        for layer, (W, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ W + b
            pre.append(z)
            h = z if layer == last else np.tanh(z)
            activations.append(h)
        logits = activations[-1]
        logits = logits - logits.max()
        exp = np.exp(logits)
        probabilities = exp / exp.sum()
        return probabilities, (activations, pre)

    def probabilities(self, x):
        return self.forward(x)[0]

    def sample(self, x, rng):
        probabilities = self.probabilities(x)
        action = int(rng.choice(self.n_actions, p=probabilities))
        return action, probabilities

    # -- backward -----------------------------------------------------------
    def gradients(self, cache, action, scale):
        """Gradient of ``-scale * log pi(action | x)`` w.r.t. params."""
        activations, pre = cache
        probabilities, _ = self.forward(activations[0])
        delta = probabilities.copy()
        delta[action] -= 1.0
        delta *= scale
        grad_w = [None] * len(self.weights)
        grad_b = [None] * len(self.biases)
        for layer in range(len(self.weights) - 1, -1, -1):
            grad_w[layer] = np.outer(activations[layer], delta)
            grad_b[layer] = delta.copy()
            if layer > 0:
                delta = (self.weights[layer] @ delta) \
                    * (1.0 - np.tanh(pre[layer - 1]) ** 2)
        return grad_w, grad_b

    def apply_gradients(self, grad_w, grad_b, learning_rate):
        for layer in range(len(self.weights)):
            self.weights[layer] -= learning_rate * grad_w[layer]
            self.biases[layer] -= learning_rate * grad_b[layer]

    # -- persistence -----------------------------------------------------------
    def state_dict(self):
        state = {"meta": np.array([self.input_dim, self.n_actions,
                                   self.hidden, self.n_layers])}
        for i, (W, b) in enumerate(zip(self.weights, self.biases)):
            state[f"w{i}"] = W
            state[f"b{i}"] = b
        return state

    @classmethod
    def from_state_dict(cls, state):
        input_dim, n_actions, hidden, n_layers = \
            (int(v) for v in state["meta"])
        policy = cls(input_dim, n_actions, hidden, n_layers)
        policy.weights = [state[f"w{i}"]
                          for i in range(len(policy.weights))]
        policy.biases = [state[f"b{i}"]
                         for i in range(len(policy.biases))]
        return policy


class FeatureEncoder:
    """Standardize + PCA-MLE reduction of the 63 static features
    (the paper's PSS input preprocessing).

    Minka's MLE degenerates to one component on the small fitting sets
    used here (tens of programs, vs the paper's hundreds of profiled
    variants), starving the policy of state information — so the chosen
    dimension is floored at ``min_components`` (documented deviation).
    """

    def __init__(self, min_components=8):
        self.scaler = StandardScaler()
        self.pca = PCA(n_components="mle")
        self.min_components = min_components

    def fit(self, feature_matrix):
        Z = self.scaler.fit_transform(feature_matrix)
        self.pca.fit(Z)
        floor = max(1, min(self.min_components, Z.shape[0] - 1,
                           Z.shape[1]))
        if self.pca.n_components_ < floor:
            # Re-fit with the floored dimension.
            self.pca = PCA(n_components=floor).fit(Z)
        return self

    def encode(self, features):
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        Z = self.pca.transform(self.scaler.transform(features))
        return Z[0] if single else Z

    @property
    def output_dim(self):
        return self.pca.n_components_

    def state_dict(self):
        return {
            "scaler_mean": self.scaler.mean_,
            "scaler_scale": self.scaler.scale_,
            "pca_mean": self.pca.mean_,
            "pca_components": self.pca.components_,
            "pca_variance": self.pca.explained_variance_,
        }

    @classmethod
    def from_state_dict(cls, state):
        encoder = cls()
        encoder.scaler.mean_ = state["scaler_mean"]
        encoder.scaler.scale_ = state["scaler_scale"]
        encoder.pca.mean_ = state["pca_mean"]
        encoder.pca.components_ = state["pca_components"]
        encoder.pca.explained_variance_ = state["pca_variance"]
        encoder.pca.n_components_ = state["pca_components"].shape[0]
        return encoder
