"""Phase Sequence Selection — deployment (paper Fig. 2, box 4 / §III-D).

The trained policy drives the compiler's optimizer phase by phase.  The
phase with the highest predicted probability is applied; if it does not
change the program (detected via a canonical fingerprint), the 2nd, 3rd,
... best are tried, up to "Max. inactive subsequence length" (Table V:
8).  Selection ends at that limit or when the total number of applied
phases reaches "Max. phase sequence length" (Table V: 128).

PSS needs no Performance Estimator at deployment (paper §III-D): the
policy has internalized the platform knowledge, so this module only needs
the policy + encoder bundle, which is also (de)serializable to a single
``.npz`` (the paper ships TorchScript into LLVM via LibTorch; our
equivalent is an npz loaded by this selector).
"""

import numpy as np

from repro.features import extract_static_features
from repro.ir.printer import module_fingerprint
from repro.passes import AnalysisManager, create_pass
from repro.rl.policy import FeatureEncoder, PolicyNetwork


class PhaseSequenceSelector:
    def __init__(self, policy, encoder, phases,
                 max_sequence_length=128, max_inactive_length=8):
        self.policy = policy
        self.encoder = encoder
        self.phases = list(phases)
        self.max_sequence_length = max_sequence_length
        self.max_inactive_length = max_inactive_length

    def optimize(self, module, trace=None):
        """Drive the optimizer over ``module`` in place.

        Returns the list of applied (active) phases.

        One analysis manager spans the whole selection: phases share
        cached dominator/loop analyses, activity detection re-hashes
        only the functions a phase changed, and feature extraction
        reuses per-function partials for untouched functions — the
        function-granular incremental loop the deployment path needs
        (each inactive trial previously re-fingerprinted and re-analyzed
        the entire module).
        """
        applied = []
        am = AnalysisManager()
        partials = {}
        fingerprint = module_fingerprint(module, am)
        while len(applied) < self.max_sequence_length:
            features = extract_static_features(module, am=am,
                                               partial_cache=partials)
            probabilities = self.policy.probabilities(
                self.encoder.encode(features))
            ranked = np.argsort(probabilities)[::-1]
            # Try phases from most to least probable until one changes
            # the program, bounded by the inactive-subsequence limit.
            progressed = False
            for rank, action in enumerate(
                    ranked[:self.max_inactive_length]):
                phase_name = self.phases[int(action)]
                create_pass(phase_name).run(module, am)
                new_fingerprint = module_fingerprint(module, am)
                if trace is not None:
                    trace.append((phase_name, new_fingerprint !=
                                  fingerprint))
                if new_fingerprint != fingerprint:
                    fingerprint = new_fingerprint
                    applied.append(phase_name)
                    progressed = True
                    break
            if not progressed:
                break  # inactive-subsequence limit hit
        return applied

    # -- persistence ------------------------------------------------------
    def save(self, path):
        state = {}
        for key, value in self.policy.state_dict().items():
            state[f"policy_{key}"] = value
        for key, value in self.encoder.state_dict().items():
            state[f"encoder_{key}"] = value
        state["phases"] = np.array(self.phases)
        state["limits"] = np.array([self.max_sequence_length,
                                    self.max_inactive_length])
        np.savez_compressed(path, **state)

    @classmethod
    def load(cls, path):
        data = np.load(path, allow_pickle=False)
        policy_state = {key[len("policy_"):]: data[key]
                        for key in data.files
                        if key.startswith("policy_")}
        encoder_state = {key[len("encoder_"):]: data[key]
                         for key in data.files
                         if key.startswith("encoder_")}
        policy = PolicyNetwork.from_state_dict(policy_state)
        encoder = FeatureEncoder.from_state_dict(encoder_state)
        phases = [str(p) for p in data["phases"]]
        limits = data["limits"]
        return cls(policy, encoder, phases,
                   max_sequence_length=int(limits[0]),
                   max_inactive_length=int(limits[1]))
