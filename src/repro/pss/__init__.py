"""Phase Sequence Selection deployment."""

from repro.pss.selector import PhaseSequenceSelector

__all__ = ["PhaseSequenceSelector"]
