"""Model search for fitting the Performance Estimator (paper Alg. 1).

``model_search`` is the literal Alg. 1: iterate a candidate list, train,
test, keep the best, stop early when the accuracy threshold is reached.
``heuristic_model_search`` wraps it in the Optuna-like Study (paper
Fig. 3) to also tune the preprocessing choice and model hyperparameters.
"""

import numpy as np

from repro.models import create_model, r2_score
from repro.preprocess import create_preprocessor
from repro.search import create_study


class FittedPipeline:
    """(preprocessor, model) pair with a sklearn-like surface.

    ``target_transform="log"`` fits the model on log1p(y) and predicts
    back through expm1 — the standard treatment for dynamic features
    whose range spans orders of magnitude across programs (execution
    time, energy, instruction counts), and what keeps *relative* error
    small, which is the paper's accuracy currency.
    """

    def __init__(self, preprocessor, model, target_transform=None):
        self.preprocessor = preprocessor
        self.model = model
        self.target_transform = target_transform

    def _encode_y(self, y):
        if self.target_transform == "log":
            return np.log1p(np.maximum(y, 0.0))
        return y

    def _decode_y(self, y):
        if self.target_transform == "log":
            return np.expm1(np.clip(y, 0.0, 700.0))
        return y

    def fit(self, X, y):
        y = np.asarray(y, dtype=float)
        Z = self.preprocessor.fit_transform(X, y)
        self.model.fit(Z, self._encode_y(y))
        return self

    def predict(self, X):
        raw = self.model.predict(self.preprocessor.transform(X))
        return self._decode_y(raw)

    def score(self, X, y):
        return r2_score(y, self.predict(X))

    def relative_accuracy(self, X, y):
        """1 - MAPE (clipped at 0): the search currency matching the
        paper's percentage-error reporting."""
        from repro.models import mean_absolute_percentage_error
        return max(0.0, 1.0 - mean_absolute_percentage_error(
            y, self.predict(X)))


def model_search(X_train, y_train, X_test, y_test, model_names,
                 accuracy_threshold=0.97, preprocessor_name="mean-std",
                 model_kwargs=None, target_transform=None):
    """Paper Alg. 1: MODELSEARCH(input, accuracy_thr, list_models).

    Returns (best_pipeline, best_accuracy, n_models_tried).  Accuracy is
    the R² test score ("higher accuracy is better").
    """
    model_kwargs = model_kwargs or {}
    best_accuracy = -np.inf
    best_pipeline = None
    tried = 0
    for name in model_names:
        pipeline = FittedPipeline(
            create_preprocessor(preprocessor_name),
            create_model(name, **model_kwargs.get(name, {})),
            target_transform=target_transform)
        try:
            pipeline.fit(X_train, y_train)
            accuracy = pipeline.score(X_test, y_test)
        except Exception:
            tried += 1
            continue
        tried += 1
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_pipeline = pipeline
        if best_accuracy > accuracy_threshold:
            break
    return best_pipeline, best_accuracy, tried


# Hyperparameter spaces for the heuristic search.
def _suggest_model(trial, name):
    if name in ("ridge", "kernel-ridge"):
        return {"alpha": trial.suggest_float(f"{name}:alpha", 1e-3, 10.0,
                                             log=True)}
    if name in ("lasso", "elasticnet"):
        params = {"alpha": trial.suggest_float(f"{name}:alpha", 1e-4, 1.0,
                                               log=True)}
        if name == "elasticnet":
            params["l1_ratio"] = trial.suggest_float(
                f"{name}:l1_ratio", 0.1, 0.9)
        return params
    if name in ("svr", "nu-svr"):
        return {"C": trial.suggest_float(f"{name}:C", 0.1, 100.0,
                                         log=True)}
    if name in ("decision-tree", "extra-tree"):
        return {"max_depth": trial.suggest_int(f"{name}:max_depth", 3, 12)}
    if name == "random-forest":
        return {"n_estimators": trial.suggest_int(f"{name}:trees", 10, 40),
                "max_depth": trial.suggest_int(f"{name}:max_depth", 4, 12)}
    if name == "mlp":
        width = trial.suggest_int(f"{name}:width", 8, 64)
        return {"hidden": (width, max(4, width // 2)),
                "epochs": trial.suggest_int(f"{name}:epochs", 100, 400)}
    if name == "sgd":
        return {"learning_rate": trial.suggest_float(
            f"{name}:lr", 1e-3, 0.1, log=True)}
    return {}


def heuristic_model_search(X_train, y_train, X_test, y_test,
                           model_names, preprocessor_names,
                           n_trials=30, accuracy_threshold=0.995,
                           seed=0, target_transform=None):
    """Optuna-style joint search over (preprocessing, model, hparams).

    The objective is relative accuracy (1 - MAPE): the paper reports
    percentage errors, and R² rewards getting the big programs right
    while ignoring order-of-magnitude misses on the small ones.
    """
    study = create_study("maximize", seed=seed)
    best = {"pipeline": None, "accuracy": -np.inf}

    def objective(trial):
        model_name = trial.suggest_categorical("model", list(model_names))
        pre_name = trial.suggest_categorical("preprocessor",
                                             list(preprocessor_names))
        params = _suggest_model(trial, model_name)
        pipeline = FittedPipeline(create_preprocessor(pre_name),
                                  create_model(model_name, **params),
                                  target_transform=target_transform)
        pipeline.fit(X_train, y_train)
        accuracy = pipeline.relative_accuracy(X_test, y_test)
        if accuracy > best["accuracy"]:
            best["accuracy"] = accuracy
            best["pipeline"] = pipeline
        return accuracy

    def early_stop(study_, trial_):
        return best["accuracy"] > accuracy_threshold

    study.optimize(objective, n_trials, callbacks=(early_stop,),
                   catch_errors=True)
    return best["pipeline"], best["accuracy"], study
