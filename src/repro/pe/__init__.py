"""Performance Estimator: Alg. 1 model search + multi-output estimator."""

from repro.pe.estimator import FAST_MODELS, PerformanceEstimator
from repro.pe.model_search import (
    FittedPipeline,
    heuristic_model_search,
    model_search,
)

__all__ = [
    "PerformanceEstimator", "FAST_MODELS",
    "model_search", "heuristic_model_search", "FittedPipeline",
]
