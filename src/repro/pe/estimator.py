"""The Performance Estimator (paper Fig. 2, box 2).

One searched (preprocessing, model) pipeline per dynamic metric; trained
per target platform from a Data-Extraction dataset; predicts the four
metrics of the paper's Fig. 4 (execution time, energy, executed
instructions, average power) from code features.
"""

import time

import numpy as np

from repro.models import (
    TABLE_IV_MODELS,
    max_percentage_error,
    mean_absolute_percentage_error,
    r2_score,
)
from repro.pe.model_search import heuristic_model_search, model_search


# Models cheap enough for the quick (non-heuristic) search path.
FAST_MODELS = ("ridge", "kernel-ridge", "bayesian-ridge", "linear",
               "huber", "lasso", "elasticnet", "random-forest",
               "decision-tree")


class PerformanceEstimator:
    """Multi-output PE: one fitted pipeline per metric."""

    def __init__(self, metrics=("exec_time_us", "energy_uj",
                                "instructions", "avg_power_w")):
        self.metrics = tuple(metrics)
        self.pipelines = {}
        self.accuracies = {}
        self.report = {}
        self.training_seconds = 0.0

    def train(self, dataset, mode="fast", n_trials=25,
              accuracy_threshold=0.97, seed=0, model_names=None,
              preprocessor_names=None, test_fraction=0.25):
        """Fit all metric pipelines from a Dataset.

        ``mode='fast'`` runs the literal Alg. 1 over a fixed model list;
        ``mode='heuristic'`` runs the Optuna-like joint search (paper
        Fig. 3).
        """
        started = time.perf_counter()
        X = dataset.X
        train_idx, test_idx = dataset.split(test_fraction, seed=seed)
        for metric in self.metrics:
            y = dataset.y(metric)
            X_train, y_train = X[train_idx], y[train_idx]
            X_test, y_test = X[test_idx], y[test_idx]
            # Time/energy/instruction counts span orders of magnitude
            # across programs: fit those in log space so the search
            # optimizes relative error (the paper's accuracy currency).
            transform = "log" if metric != "avg_power_w" else None
            if mode == "heuristic":
                pipeline, accuracy, _ = heuristic_model_search(
                    X_train, y_train, X_test, y_test,
                    model_names or TABLE_IV_MODELS,
                    preprocessor_names or
                    ("mean-std", "robust", "pca", "power", "quantile"),
                    n_trials=n_trials,
                    accuracy_threshold=accuracy_threshold, seed=seed,
                    target_transform=transform)
            else:
                pipeline, accuracy, _ = model_search(
                    X_train, y_train, X_test, y_test,
                    model_names or FAST_MODELS,
                    accuracy_threshold=accuracy_threshold,
                    target_transform=transform)
            if pipeline is None:
                raise RuntimeError(f"no model fits metric {metric!r}")
            self.pipelines[metric] = pipeline
            self.accuracies[metric] = accuracy
            prediction = pipeline.predict(X_test)
            self.report[metric] = {
                "r2": r2_score(y_test, prediction),
                "mape": mean_absolute_percentage_error(y_test, prediction),
                "max_pct_error": max_percentage_error(y_test, prediction),
                "model": type(pipeline.model).model_name,
                "preprocessor":
                    type(pipeline.preprocessor).preprocessor_name,
            }
        self.training_seconds = time.perf_counter() - started
        return self

    def predict(self, features):
        """Predict the metric dict for one feature vector (or a matrix)."""
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        out = {metric: self.pipelines[metric].predict(features)
               for metric in self.metrics}
        if single:
            return {metric: float(values[0])
                    for metric, values in out.items()}
        return out

    def predict_module(self, module, platform):
        """Predict metrics straight from an IR module (extract features,
        never execute) — this is what makes PSS training fast."""
        from repro.features import extract_features
        return self.predict(extract_features(module, platform))

    def summary(self):
        lines = []
        for metric in self.metrics:
            r = self.report[metric]
            lines.append(
                f"{metric:14s} r2={r['r2']:6.3f} "
                f"mape={100 * r['mape']:5.2f}% "
                f"maxerr={100 * r['max_pct_error']:6.2f}% "
                f"({r['preprocessor']} + {r['model']})")
        return "\n".join(lines)
