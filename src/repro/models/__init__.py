"""Regression models of the paper's Table IV, implemented from scratch.

========================== ======================
Paper name                 Registry name
========================== ======================
Ridge                      ``ridge``
Kernel Ridge               ``kernel-ridge``
Bayesian Ridge             ``bayesian-ridge``
Linear                     ``linear``
SGD                        ``sgd``
Passive-Aggressive         ``passive-aggressive``
ARD                        ``ard``
Huber                      ``huber``
Theil-Sen                  ``theil-sen``
LARS                       ``lars``
Lasso                      ``lasso``
Lasso-LARS                 ``lasso-lars``
Support Vector             ``svr``
Nu-Support Vector          ``nu-svr``
Linear Support Vector      ``linear-svr``
ElasticNet                 ``elasticnet``
Orthogonal Matching P.     ``omp``
Multi-Layer Perceptron     ``mlp``
Decision Tree              ``decision-tree``
Extra Tree                 ``extra-tree``
Random Forest              ``random-forest``
========================== ======================
"""

from repro.models.base import (
    MODEL_REGISTRY,
    Regressor,
    available_models,
    create_model,
    max_percentage_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
    register_model,
    root_mean_squared_error,
)
from repro.models.linear import (
    ARDRegression,
    BayesianRidge,
    HuberRegressor,
    LinearRegression,
    PassiveAggressiveRegressor,
    Ridge,
    SGDRegressor,
    TheilSenRegressor,
)
from repro.models.sparse import (
    LARS,
    Lasso,
    LassoLars,
    ElasticNet,
    OrthogonalMatchingPursuit,
)
from repro.models.kernels import KernelRidge, LinearSVR, NuSVR, SVR
from repro.models.trees import (
    DecisionTreeRegressor,
    ExtraTreeRegressor,
    RandomForestRegressor,
)
from repro.models.mlp import MLPRegressor

TABLE_IV_MODELS = (
    "ridge", "kernel-ridge", "bayesian-ridge",
    "linear", "sgd", "passive-aggressive",
    "ard", "huber", "theil-sen",
    "lars", "lasso", "lasso-lars",
    "svr", "nu-svr", "linear-svr",
    "elasticnet", "omp", "mlp",
    "decision-tree", "extra-tree", "random-forest",
)

__all__ = [
    "Regressor", "MODEL_REGISTRY", "available_models", "create_model",
    "register_model", "TABLE_IV_MODELS",
    "r2_score", "mean_absolute_error", "root_mean_squared_error",
    "mean_absolute_percentage_error", "max_percentage_error",
    "LinearRegression", "Ridge", "BayesianRidge", "ARDRegression",
    "SGDRegressor", "PassiveAggressiveRegressor", "HuberRegressor",
    "TheilSenRegressor",
    "LARS", "Lasso", "LassoLars", "ElasticNet",
    "OrthogonalMatchingPursuit",
    "KernelRidge", "SVR", "NuSVR", "LinearSVR",
    "DecisionTreeRegressor", "ExtraTreeRegressor",
    "RandomForestRegressor", "MLPRegressor",
]
