"""Linear-family regressors (Table IV rows 1–3 and robust variants):
Linear, Ridge, Bayesian Ridge, ARD, SGD, Passive-Aggressive, Huber,
Theil-Sen.
"""

import numpy as np

from repro.models.base import Regressor, register_model, _as_xy


class _LinearBase(Regressor):
    """Shared predict path: standardized design with intercept."""

    def _prepare(self, X, y):
        X, y = _as_xy(X, y)
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._x_scale = scale
        self._y_mean = y.mean()
        Xs = (X - self._x_mean) / self._x_scale
        ys = y - self._y_mean
        return Xs, ys

    # Standardized inputs are clamped at inference: program-feature
    # vectors far outside the training hull (a rare phase creating a
    # feature value tens of sigma out) would otherwise extrapolate the
    # linear model into nonsense.
    Z_CLIP = 8.0

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        Xs = (X - self._x_mean) / self._x_scale
        Xs = np.clip(Xs, -self.Z_CLIP, self.Z_CLIP)
        return Xs @ self.coef_ + self._y_mean


@register_model("linear")
class LinearRegression(_LinearBase):
    """Ordinary least squares via lstsq."""

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        self.coef_, *_ = np.linalg.lstsq(Xs, ys, rcond=None)
        return self


@register_model("ridge")
class Ridge(_LinearBase):
    def __init__(self, alpha=1.0):
        self.alpha = alpha

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n_features = Xs.shape[1]
        A = Xs.T @ Xs + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(A, Xs.T @ ys)
        return self


@register_model("bayesian-ridge")
class BayesianRidge(_LinearBase):
    """Evidence-maximizing ridge: iteratively re-estimates the noise
    precision (alpha) and weight precision (lambda)."""

    def __init__(self, max_iterations=100, tolerance=1e-4):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        XtX = Xs.T @ Xs
        Xty = Xs.T @ ys
        eigenvalues = np.linalg.eigvalsh(XtX)
        alpha = 1.0 / max(ys.var(), 1e-9)   # noise precision
        lam = 1.0                           # weight precision
        coef = np.zeros(d)
        for _ in range(self.max_iterations):
            A = lam * np.eye(d) + alpha * XtX
            coef_new = alpha * np.linalg.solve(A, Xty)
            gamma = np.sum(alpha * eigenvalues /
                           (lam + alpha * eigenvalues))
            lam = gamma / max(coef_new @ coef_new, 1e-12)
            residual = ys - Xs @ coef_new
            alpha = max(n - gamma, 1e-9) / max(residual @ residual, 1e-12)
            if np.max(np.abs(coef_new - coef)) < self.tolerance:
                coef = coef_new
                break
            coef = coef_new
        self.coef_ = coef
        self.alpha_ = alpha
        self.lambda_ = lam
        return self


@register_model("ard")
class ARDRegression(_LinearBase):
    """Automatic relevance determination: per-feature precision."""

    def __init__(self, max_iterations=60, prune_threshold=1e8):
        self.max_iterations = max_iterations
        self.prune_threshold = prune_threshold

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        alpha = 1.0 / max(ys.var(), 1e-9)
        lam = np.ones(d)
        keep = np.ones(d, dtype=bool)
        coef = np.zeros(d)
        for _ in range(self.max_iterations):
            Xk = Xs[:, keep]
            A = np.diag(lam[keep]) + alpha * Xk.T @ Xk
            try:
                sigma = np.linalg.inv(A)
            except np.linalg.LinAlgError:
                sigma = np.linalg.pinv(A)
            mean = alpha * sigma @ Xk.T @ ys
            gamma = 1.0 - lam[keep] * np.diag(sigma)
            lam_new = np.maximum(gamma, 1e-12) / \
                np.maximum(mean ** 2, 1e-12)
            residual = ys - Xk @ mean
            alpha = max(n - gamma.sum(), 1e-9) / \
                max(residual @ residual, 1e-12)
            lam[keep] = lam_new
            coef = np.zeros(d)
            coef[keep] = mean
            new_keep = lam < self.prune_threshold
            if new_keep.sum() == 0:
                break
            keep = new_keep
        self.coef_ = coef
        return self


@register_model("sgd")
class SGDRegressor(_LinearBase):
    """Mini-batch SGD on squared loss with L2 penalty."""

    def __init__(self, epochs=200, learning_rate=0.01, alpha=1e-4,
                 batch_size=16, seed=0):
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        rng = np.random.default_rng(self.seed)
        coef = np.zeros(d)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.learning_rate / (1.0 + 0.01 * epoch)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                Xb, yb = Xs[batch], ys[batch]
                grad = Xb.T @ (Xb @ coef - yb) / len(batch) \
                    + self.alpha * coef
                coef -= lr * grad
        self.coef_ = coef
        return self


@register_model("passive-aggressive")
class PassiveAggressiveRegressor(_LinearBase):
    """Online PA-II regression with an epsilon-insensitive loss."""

    def __init__(self, epochs=40, C=1.0, epsilon=0.01, seed=0):
        self.epochs = epochs
        self.C = C
        self.epsilon = epsilon
        self.seed = seed

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        rng = np.random.default_rng(self.seed)
        coef = np.zeros(d)
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                pred = Xs[i] @ coef
                loss = abs(ys[i] - pred) - self.epsilon
                if loss > 0:
                    norm = Xs[i] @ Xs[i] + 1.0 / (2.0 * self.C)
                    tau = loss / max(norm, 1e-12)
                    coef += tau * np.sign(ys[i] - pred) * Xs[i]
        self.coef_ = coef
        return self


@register_model("huber")
class HuberRegressor(_LinearBase):
    """Huber loss via iteratively reweighted least squares."""

    def __init__(self, epsilon=1.35, max_iterations=50, alpha=1e-4):
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.alpha = alpha

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        coef = np.zeros(d)
        scale = max(ys.std(), 1e-9)
        for _ in range(self.max_iterations):
            residual = ys - Xs @ coef
            threshold = self.epsilon * scale
            weights = np.where(np.abs(residual) <= threshold, 1.0,
                               threshold / np.maximum(np.abs(residual),
                                                      1e-12))
            W = weights[:, None]
            A = Xs.T @ (W * Xs) + self.alpha * np.eye(d)
            coef_new = np.linalg.solve(A, Xs.T @ (weights * ys))
            if np.max(np.abs(coef_new - coef)) < 1e-6:
                coef = coef_new
                break
            coef = coef_new
            scale = max(np.median(np.abs(residual)) * 1.4826, 1e-9)
        self.coef_ = coef
        return self


@register_model("theil-sen")
class TheilSenRegressor(_LinearBase):
    """Robust regression: median of least-squares fits over random
    feature-space subsamples."""

    def __init__(self, n_subsamples=None, n_fits=120, seed=0):
        self.n_subsamples = n_subsamples
        self.n_fits = n_fits
        self.seed = seed

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        size = self.n_subsamples or min(n, max(d + 2, n // 3))
        rng = np.random.default_rng(self.seed)
        coefs = []
        for _ in range(self.n_fits):
            idx = rng.choice(n, size=size, replace=False)
            coef, *_ = np.linalg.lstsq(Xs[idx], ys[idx], rcond=None)
            coefs.append(coef)
        self.coef_ = np.median(np.asarray(coefs), axis=0)
        return self
