"""Tree models (Table IV): Decision Tree, Extra Tree, Random Forest."""

import numpy as np

from repro.models.base import Regressor, register_model, _as_xy


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value


class _TreeBase(Regressor):
    def __init__(self, max_depth=8, min_samples_split=4,
                 max_features=None, seed=0):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed

    def fit(self, X, y):
        X, y = _as_xy(X, y)
        self._rng = np.random.default_rng(self.seed)
        self.root_ = self._build(X, y, depth=0)
        return self

    def _build(self, X, y, depth):
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples_split \
                or np.ptp(y) < 1e-12:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self, n_features):
        if self.max_features is None:
            return np.arange(n_features)
        k = max(1, int(self.max_features * n_features))
        return self._rng.choice(n_features, size=k, replace=False)

    def _best_split(self, X, y):
        raise NotImplementedError

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.value
        return out


@register_model("decision-tree")
class DecisionTreeRegressor(_TreeBase):
    """CART with exact variance-reduction splits."""

    def _best_split(self, X, y):
        n, _ = X.shape
        best = None
        best_score = np.inf
        for feature in self._candidate_features(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Prefix sums enable O(n) scan of all split points.
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys ** 2)
            total = csum[-1]
            total_sq = csum_sq[-1]
            for i in range(1, n):
                if xs[i] == xs[i - 1]:
                    continue
                left_n, right_n = i, n - i
                left_sum = csum[i - 1]
                left_sq = csum_sq[i - 1]
                right_sum = total - left_sum
                right_sq = total_sq - left_sq
                score = (left_sq - left_sum ** 2 / left_n) + \
                        (right_sq - right_sum ** 2 / right_n)
                if score < best_score:
                    best_score = score
                    best = (feature, (xs[i] + xs[i - 1]) / 2.0)
        return best


@register_model("extra-tree")
class ExtraTreeRegressor(_TreeBase):
    """Extremely randomized tree: one random threshold per feature."""

    def _best_split(self, X, y):
        best = None
        best_score = np.inf
        for feature in self._candidate_features(X.shape[1]):
            lo = X[:, feature].min()
            hi = X[:, feature].max()
            if hi <= lo:
                continue
            threshold = self._rng.uniform(lo, hi)
            mask = X[:, feature] <= threshold
            if mask.all() or not mask.any():
                continue
            left, right = y[mask], y[~mask]
            score = ((left - left.mean()) ** 2).sum() + \
                    ((right - right.mean()) ** 2).sum()
            if score < best_score:
                best_score = score
                best = (feature, threshold)
        return best


@register_model("random-forest")
class RandomForestRegressor(Regressor):
    """Bagged CART ensemble with feature subsampling."""

    def __init__(self, n_estimators=30, max_depth=8, max_features=0.6,
                 seed=0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed

    def fit(self, X, y):
        X, y = _as_xy(X, y)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.choice(n, size=n, replace=True)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                max_features=self.max_features,
                seed=self.seed + 7919 * t + 1)
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X):
        predictions = np.stack([t.predict(X) for t in self.trees_])
        return predictions.mean(axis=0)
