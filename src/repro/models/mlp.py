"""Multi-layer perceptron regressor with manual backprop + Adam
(Table IV, last row of column 3)."""

import numpy as np

from repro.models.base import Regressor, register_model, _as_xy


@register_model("mlp")
class MLPRegressor(Regressor):
    def __init__(self, hidden=(32, 16), epochs=300, learning_rate=1e-3,
                 batch_size=16, l2=1e-5, seed=0):
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed

    def fit(self, X, y):
        X, y = _as_xy(X, y)
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._x_scale = scale
        self._y_mean = y.mean()
        self._y_scale = max(y.std(), 1e-12)
        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        rng = np.random.default_rng(self.seed)
        sizes = [Xs.shape[1]] + list(self.hidden) + [1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-limit, limit,
                                             size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        # Adam state.
        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        n = Xs.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = Xs[batch], ys[batch]
                # Forward.
                activations = [xb]
                pre = []
                h = xb
                for layer, (W, b) in enumerate(zip(self.weights_,
                                                   self.biases_)):
                    z = h @ W + b
                    pre.append(z)
                    h = z if layer == len(self.weights_) - 1 \
                        else np.tanh(z)
                    activations.append(h)
                # Backward (MSE).
                delta = (activations[-1][:, 0] - yb)[:, None] \
                    / len(batch)
                t += 1
                for layer in range(len(self.weights_) - 1, -1, -1):
                    grad_w = activations[layer].T @ delta \
                        + self.l2 * self.weights_[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) \
                            * (1.0 - np.tanh(pre[layer - 1]) ** 2)
                    # Adam update.
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grad_w
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * \
                        grad_w ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grad_b
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * \
                        grad_b ** 2
                    mw_hat = m_w[layer] / (1 - beta1 ** t)
                    vw_hat = v_w[layer] / (1 - beta2 ** t)
                    mb_hat = m_b[layer] / (1 - beta1 ** t)
                    vb_hat = v_b[layer] / (1 - beta2 ** t)
                    self.weights_[layer] -= self.learning_rate * mw_hat \
                        / (np.sqrt(vw_hat) + eps)
                    self.biases_[layer] -= self.learning_rate * mb_hat \
                        / (np.sqrt(vb_hat) + eps)
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        h = (X - self._x_mean) / self._x_scale
        h = np.clip(h, -8.0, 8.0)  # clamp out-of-hull inputs
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ W + b
            h = z if layer == len(self.weights_) - 1 else np.tanh(z)
        return h[:, 0] * self._y_scale + self._y_mean
