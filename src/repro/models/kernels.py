"""Kernel models (Table IV): Kernel Ridge, SVR, Nu-SVR, Linear SVR."""

import numpy as np

from repro.models.base import Regressor, register_model, _as_xy
from repro.models.linear import _LinearBase


def _rbf(A, B, gamma):
    sq = (np.sum(A ** 2, axis=1)[:, None]
          + np.sum(B ** 2, axis=1)[None, :]
          - 2.0 * A @ B.T)
    return np.exp(-gamma * np.maximum(sq, 0.0))


class _KernelBase(Regressor):
    def _standardize_fit(self, X, y):
        X, y = _as_xy(X, y)
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._x_scale = scale
        self._y_mean = y.mean()
        self._y_scale = max(y.std(), 1e-12)
        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale
        return Xs, ys

    def _standardize_x(self, X):
        Z = (np.asarray(X, dtype=float) - self._x_mean) / self._x_scale
        # Clamp far-out-of-hull points (see _LinearBase.predict).
        return np.clip(Z, -8.0, 8.0)


@register_model("kernel-ridge")
class KernelRidge(_KernelBase):
    def __init__(self, alpha=0.1, gamma=None):
        self.alpha = alpha
        self.gamma = gamma

    def fit(self, X, y):
        Xs, ys = self._standardize_fit(X, y)
        self.gamma_ = self.gamma or 1.0 / max(Xs.shape[1], 1)
        K = _rbf(Xs, Xs, self.gamma_)
        n = K.shape[0]
        self.X_fit_ = Xs
        self.dual_coef_ = np.linalg.solve(K + self.alpha * np.eye(n), ys)
        return self

    def predict(self, X):
        K = _rbf(self._standardize_x(X), self.X_fit_, self.gamma_)
        return K @ self.dual_coef_ * self._y_scale + self._y_mean


class _SVRBase(_KernelBase):
    """Epsilon-SVR trained by coordinate descent on the dual.

    The dual variables beta_i = alpha_i - alpha_i* live in [-C, C]; the
    bias equality constraint is dropped (targets are centered instead,
    liblinear-style), which makes each coordinate update a closed-form
    soft-threshold:  beta_i = clip(soft(r_i, eps) / K_ii, -C, C).
    """

    def __init__(self, C=10.0, epsilon=0.05, gamma=None, iterations=60):
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.iterations = iterations

    def _fit_dual(self, K, ys, epsilon):
        n = K.shape[0]
        beta = np.zeros(n)
        diag = np.diag(K).copy()
        diag[diag <= 1e-12] = 1.0
        Kbeta = np.zeros(n)
        for _ in range(self.iterations):
            max_delta = 0.0
            for i in range(n):
                residual = ys[i] - Kbeta[i] + K[i, i] * beta[i]
                if residual > epsilon:
                    target = (residual - epsilon) / diag[i]
                elif residual < -epsilon:
                    target = (residual + epsilon) / diag[i]
                else:
                    target = 0.0
                new = float(np.clip(target, -self.C, self.C))
                delta = new - beta[i]
                if delta != 0.0:
                    Kbeta += delta * K[:, i]
                    beta[i] = new
                    max_delta = max(max_delta, abs(delta))
            if max_delta < 1e-6:
                break
        return beta

    def predict(self, X):
        K = _rbf(self._standardize_x(X), self.X_fit_, self.gamma_)
        raw = K @ self.beta_ + self.intercept_
        return raw * self._y_scale + self._y_mean


@register_model("svr")
class SVR(_SVRBase):
    def fit(self, X, y):
        Xs, ys = self._standardize_fit(X, y)
        self.gamma_ = self.gamma or 1.0 / max(Xs.shape[1], 1)
        K = _rbf(Xs, Xs, self.gamma_)
        self.X_fit_ = Xs
        self.beta_ = self._fit_dual(K, ys, self.epsilon)
        residual = ys - K @ self.beta_
        self.intercept_ = np.median(residual)
        return self


@register_model("nu-svr")
class NuSVR(_SVRBase):
    """nu-SVR: epsilon is selected so that roughly a (1 - nu) fraction of
    training points fall inside the tube."""

    def __init__(self, C=10.0, nu=0.5, gamma=None, iterations=400):
        super().__init__(C=C, epsilon=0.0, gamma=gamma,
                         iterations=iterations)
        self.nu = nu

    def fit(self, X, y):
        Xs, ys = self._standardize_fit(X, y)
        self.gamma_ = self.gamma or 1.0 / max(Xs.shape[1], 1)
        K = _rbf(Xs, Xs, self.gamma_)
        self.X_fit_ = Xs
        # Pilot fit without a tube, then set epsilon from the residual
        # quantile targeted by nu.
        pilot = self._fit_dual(K, ys, 0.0)
        residual = np.abs(ys - K @ pilot)
        epsilon = float(np.quantile(residual, 1.0 - self.nu))
        self.epsilon_ = epsilon
        self.beta_ = self._fit_dual(K, ys, epsilon)
        self.intercept_ = np.median(ys - K @ self.beta_)
        return self


@register_model("linear-svr")
class LinearSVR(_LinearBase):
    """Epsilon-insensitive linear regression by subgradient descent."""

    def __init__(self, C=1.0, epsilon=0.05, epochs=300,
                 learning_rate=0.01, seed=0):
        self.C = C
        self.epsilon = epsilon
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        # Normalize the target too so epsilon has consistent meaning.
        y_scale = max(ys.std(), 1e-12)
        yn = ys / y_scale
        coef = np.zeros(d)
        rng = np.random.default_rng(self.seed)
        for epoch in range(self.epochs):
            lr = self.learning_rate / (1.0 + 0.02 * epoch)
            order = rng.permutation(n)
            for i in order:
                pred = Xs[i] @ coef
                error = pred - yn[i]
                grad = coef / (self.C * n)
                if error > self.epsilon:
                    grad = grad + Xs[i]
                elif error < -self.epsilon:
                    grad = grad - Xs[i]
                coef -= lr * grad
        self.coef_ = coef * y_scale
        return self
