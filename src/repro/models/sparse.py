"""Sparse linear models (Table IV): LARS, Lasso, Lasso-LARS, ElasticNet,
Orthogonal Matching Pursuit.
"""

import numpy as np

from repro.models.base import register_model
from repro.models.linear import _LinearBase


def _coordinate_descent(Xs, ys, l1, l2, max_iterations=300, tol=1e-6):
    """Elastic-net coordinate descent on standardized data."""
    n, d = Xs.shape
    coef = np.zeros(d)
    col_norms = (Xs ** 2).sum(axis=0)
    residual = ys.copy()
    for _ in range(max_iterations):
        max_delta = 0.0
        for j in range(d):
            if col_norms[j] <= 1e-12:
                continue
            rho = Xs[:, j] @ residual + coef[j] * col_norms[j]
            new = _soft_threshold(rho, l1 * n) / (col_norms[j] + l2 * n)
            delta = new - coef[j]
            if delta != 0.0:
                residual -= delta * Xs[:, j]
                coef[j] = new
                max_delta = max(max_delta, abs(delta))
        if max_delta < tol:
            break
    return coef


def _soft_threshold(value, threshold):
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


@register_model("lasso")
class Lasso(_LinearBase):
    def __init__(self, alpha=0.01):
        self.alpha = alpha

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        self.coef_ = _coordinate_descent(Xs, ys, self.alpha, 0.0)
        return self


@register_model("elasticnet")
class ElasticNet(_LinearBase):
    def __init__(self, alpha=0.01, l1_ratio=0.5):
        self.alpha = alpha
        self.l1_ratio = l1_ratio

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        l1 = self.alpha * self.l1_ratio
        l2 = self.alpha * (1.0 - self.l1_ratio)
        self.coef_ = _coordinate_descent(Xs, ys, l1, l2)
        return self


def _lars_path(Xs, ys, max_active, lasso=False):
    """Least-angle regression (Efron et al.), optionally in Lasso mode.

    Returns the coefficient vector after ``max_active`` steps (or when the
    correlation vanishes).
    """
    n, d = Xs.shape
    coef = np.zeros(d)
    active = []
    signs = {}
    residual = ys.copy()
    for _ in range(min(max_active, d)):
        correlations = Xs.T @ residual
        correlations[active] = 0.0
        j = int(np.argmax(np.abs(correlations)))
        if abs(correlations[j]) < 1e-10:
            break
        active.append(j)
        signs[j] = np.sign(correlations[j])
        # Solve least squares on the active set and step fully toward it
        # (the classic "LARS as repeated OLS extension" simplification,
        # exact when steps run to the end of the path).
        Xa = Xs[:, active]
        sol, *_ = np.linalg.lstsq(Xa, ys, rcond=None)
        if lasso:
            # Lasso modification: drop variables whose coefficient sign
            # flipped against their entry correlation.
            drop = [k for k, col in enumerate(active)
                    if sol[k] * signs[col] < 0]
            if drop:
                for k in sorted(drop, reverse=True):
                    del active[k]
                if not active:
                    break
                Xa = Xs[:, active]
                sol, *_ = np.linalg.lstsq(Xa, ys, rcond=None)
        coef = np.zeros(d)
        coef[active] = sol
        residual = ys - Xs @ coef
    return coef


@register_model("lars")
class LARS(_LinearBase):
    def __init__(self, n_nonzero_coefs=None):
        self.n_nonzero_coefs = n_nonzero_coefs

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        k = self.n_nonzero_coefs or min(Xs.shape[1], Xs.shape[0] // 2)
        self.coef_ = _lars_path(Xs, ys, k, lasso=False)
        return self


@register_model("lasso-lars")
class LassoLars(_LinearBase):
    def __init__(self, n_nonzero_coefs=None):
        self.n_nonzero_coefs = n_nonzero_coefs

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        k = self.n_nonzero_coefs or min(Xs.shape[1], Xs.shape[0] // 2)
        self.coef_ = _lars_path(Xs, ys, k, lasso=True)
        return self


@register_model("omp")
class OrthogonalMatchingPursuit(_LinearBase):
    def __init__(self, n_nonzero_coefs=None):
        self.n_nonzero_coefs = n_nonzero_coefs

    def fit(self, X, y):
        Xs, ys = self._prepare(X, y)
        n, d = Xs.shape
        k = self.n_nonzero_coefs or max(1, min(d, n // 4))
        active = []
        residual = ys.copy()
        coef = np.zeros(d)
        for _ in range(k):
            correlations = Xs.T @ residual
            correlations[active] = 0.0
            j = int(np.argmax(np.abs(correlations)))
            if abs(correlations[j]) < 1e-10:
                break
            active.append(j)
            Xa = Xs[:, active]
            sol, *_ = np.linalg.lstsq(Xa, ys, rcond=None)
            coef = np.zeros(d)
            coef[active] = sol
            residual = ys - Xa @ sol
        self.coef_ = coef
        return self
