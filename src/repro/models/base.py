"""Regressor protocol, registry (paper Table IV), and metrics."""

import numpy as np

MODEL_REGISTRY = {}


def register_model(name):
    def decorate(cls):
        MODEL_REGISTRY[name] = cls
        cls.model_name = name
        return cls
    return decorate


def available_models():
    return sorted(MODEL_REGISTRY)


def create_model(name, **kwargs):
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}") from None
    return factory(**kwargs)


class Regressor:
    """fit/predict protocol for scalar-target regression."""

    model_name = "<abstract>"

    def fit(self, X, y):
        raise NotImplementedError

    def predict(self, X):
        raise NotImplementedError

    def score(self, X, y):
        """R² score (higher is better; the Alg. 1 'accuracy')."""
        return r2_score(y, self.predict(X))


def _as_xy(X, y=None):
    X = np.asarray(X, dtype=float)
    if y is None:
        return X
    return X, np.asarray(y, dtype=float)


# -- metrics -----------------------------------------------------------------

def r2_score(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean()) ** 2)
    if ss_tot <= 1e-24:
        return 1.0 if ss_res <= 1e-24 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_error(y_true, y_pred):
    return float(np.mean(np.abs(np.asarray(y_true) - np.asarray(y_pred))))


def root_mean_squared_error(y_true, y_pred):
    return float(np.sqrt(np.mean(
        (np.asarray(y_true) - np.asarray(y_pred)) ** 2)))


def mean_absolute_percentage_error(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denom = np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def max_percentage_error(y_true, y_pred):
    """The paper's headline PE metric (< 2%)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denom = np.maximum(np.abs(y_true), 1e-12)
    return float(np.max(np.abs(y_true - y_pred) / denom))
