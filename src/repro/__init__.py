"""MLComp reproduction: ML-based performance estimation and adaptive
selection of Pareto-optimal compiler optimization sequences (DATE 2021).

The package is organized as a stack of substrates:

- :mod:`repro.lang` — a mini-C frontend (lexer, parser, semantic analysis).
- :mod:`repro.ir` — a typed, SSA-capable intermediate representation.
- :mod:`repro.passes` — the optimization phases of the paper's Table VI.
- :mod:`repro.backend` — instruction selection and register allocation for
  an x86-like and a RISC-V-like target.
- :mod:`repro.sim` — a platform simulator with timing and energy models.
- :mod:`repro.features` / :mod:`repro.profiling` — feature extraction and
  the Data Extraction step (box 1 of the paper's Fig. 2).
- :mod:`repro.preprocess` / :mod:`repro.models` / :mod:`repro.search` — the
  preprocessing algorithms (Table III), regression models (Table IV), and
  the Optuna-like heuristic search used by PE training.
- :mod:`repro.pe` — the Performance Estimator and its model search (Alg. 1).
- :mod:`repro.rl` / :mod:`repro.pss` — REINFORCE policy training (Alg. 2)
  and the deployed Phase Sequence Selector.
- :mod:`repro.baselines` / :mod:`repro.pareto` — standard -O pipelines and
  Pareto-dominance tooling.
- :mod:`repro.pipeline` — the four-step MLComp orchestration.
"""

__version__ = "1.0.0"

from repro.errors import (
    CompilationError,
    LexerError,
    MLCompError,
    ParserError,
    SemanticError,
    SimulationError,
    VerificationError,
)

__all__ = [
    "MLCompError",
    "CompilationError",
    "LexerError",
    "ParserError",
    "SemanticError",
    "SimulationError",
    "VerificationError",
    "__version__",
]
