"""Command-line interface.

Usage (``python -m repro <command> ...``):

    run        <file.c>                 compile + interpret a program
    ir         <file.c> [--phases ...]  print IR (optionally optimized)
    profile    <file.c> --target x86    compile + simulate + measure
    phases                              list optimization phases
    features   <file.c>                 print the 63 static features
    workloads  [--suite parsec|beebs]   list bundled workloads
    mlcomp     --target riscv ...       run the four-step methodology
"""

import argparse
import sys


def _read_source(path):
    with open(path) as handle:
        return handle.read()


def cmd_run(args):
    from repro.ir import run_module
    from repro.lang import compile_source
    module = compile_source(_read_source(args.file))
    if args.phases:
        from repro.passes import PassManager
        PassManager().run(module, args.phases)
    result = run_module(module)
    for kind, value in result.output:
        print(value)
    print(f"[return: {result.return_value}, steps: {result.steps}]",
          file=sys.stderr)
    return 0


def cmd_ir(args):
    from repro.ir import module_to_text
    from repro.lang import compile_source
    module = compile_source(_read_source(args.file))
    if args.phases:
        from repro.passes import PassManager
        PassManager().run(module, args.phases)
    print(module_to_text(module))
    return 0


def cmd_profile(args):
    from repro.lang import compile_source
    from repro.sim import Platform
    module = compile_source(_read_source(args.file))
    if args.phases:
        from repro.passes import PassManager
        PassManager().run(module, args.phases)
    platform = Platform(args.target)
    measurement = platform.profile(module)
    for metric, value in measurement.metrics().items():
        print(f"{metric:16s} {value:.6g}")
    print(f"{'code_size_bytes':16s} {measurement.code_size}")
    return 0


def cmd_phases(args):
    from repro.passes import available_phases
    for name in available_phases():
        print(name)
    return 0


def cmd_features(args):
    from repro.features import (
        STATIC_FEATURE_NAMES,
        extract_static_features,
    )
    from repro.lang import compile_source
    module = compile_source(_read_source(args.file))
    if args.phases:
        from repro.passes import PassManager
        PassManager().run(module, args.phases)
    features = extract_static_features(module)
    for name, value in zip(STATIC_FEATURE_NAMES, features):
        if value != 0 or args.all:
            print(f"{name:28s} {value:.6g}")
    return 0


def cmd_workloads(args):
    from repro.workloads import load_suite, suite_names
    suites = [args.suite] if args.suite else suite_names()
    for suite in suites:
        for workload in load_suite(suite):
            print(f"{suite}/{workload.name}")
    return 0


def cmd_mlcomp(args):
    from repro.pipeline import MLComp
    from repro.rl import TrainingConfig
    mlcomp = MLComp(target=args.target,
                    cache=not args.no_cache,
                    cache_size=args.cache_size,
                    cache_dir=args.cache_dir,
                    eval_mode=args.eval_mode,
                    workers=args.workers,
                    farm_dir=args.farm_dir,
                    scheduler_workers=args.scheduler_workers,
                    eval_timeout=args.eval_timeout,
                    max_retries=args.max_retries,
                    degrade=not args.no_degrade)
    if args.max_workloads:
        mlcomp.workloads = mlcomp.workloads[:args.max_workloads]
    print(f"[1/4] data extraction ({len(mlcomp.workloads)} workloads)")
    dataset = mlcomp.extract_data(n_sequences=args.sequences)
    print(f"      {len(dataset)} points")
    print("[2/4] PE training")
    estimator = mlcomp.train_estimator(mode=args.pe_mode)
    print(estimator.summary())
    print("[3/4] policy training")
    mlcomp.train_policy(config=TrainingConfig(
        num_episodes=args.episodes, batch_size=args.batch,
        max_sequence_length=args.max_seq))
    print("[4/4] deployment check")
    for workload in mlcomp.workloads[:5]:
        pss = mlcomp.evaluate_workload(workload)
        base = mlcomp.evaluate_workload(workload, sequence=[])
        ratio = (pss.metrics()["exec_time_us"]
                 / base.metrics()["exec_time_us"])
        print(f"  {workload.name:16s} time ratio vs -O0: {ratio:.3f}")
    stats = mlcomp.engine_stats()
    for label, tier in (("evaluations", stats["evaluations"]),
                        ("PE scores", stats["pe"])):
        if tier is None:
            continue
        lookups = tier["hits"] + tier["misses"]
        print(f"[engine] {label}: {tier['hits']} hits / "
              f"{lookups} lookups (hit rate {tier['hit_rate']:.1%}, "
              f"{tier['evictions']} evictions)")
    farm = stats.get("farm")
    if farm is not None:
        local = farm["local"]["totals"]
        shard_line = ", ".join(
            f"{shard['hits']}/{shard['hits'] + shard['misses']}"
            for shard in farm["local"]["per_shard"]
            if shard["hits"] or shard["misses"])
        total = farm["aggregate"]
        print(f"[farm] {farm['dir']}: local {local['hits']} hits / "
              f"{local['hits'] + local['misses']} lookups, "
              f"{local['compactions']} compactions "
              f"(per-shard: {shard_line or 'idle'})")
        print(f"[farm] cross-process: {total['processes']} processes, "
              f"{total['hits']} hits / "
              f"{total['hits'] + total['misses']} lookups "
              f"(hit rate {total['hit_rate']:.1%}, "
              f"{total['cross_hits']} cross-process hits, "
              f"{total['stores']} stores)")
    sched = stats.get("scheduler")
    if sched is not None:
        print(f"[scheduler] {sched['requests']} requests: "
              f"{sched['cache_hits']} cache hits, "
              f"{sched['coalesced']} coalesced in-flight, "
              f"{sched['dispatched']} dispatched in "
              f"{sched['batches']} batches "
              f"(max batch {sched['max_batch']}, "
              f"max queue {sched['max_queue']})")
    faults = stats.get("faults")
    if faults is not None:
        counters = faults["aggregate"] or faults["local"]
        failures = (counters["timeouts"] + counters["crashes"]
                    + counters["transient"] + counters["deterministic"])
        degraded = faults.get("degraded_to")
        print(f"[faults] {failures} failures "
              f"({counters['timeouts']} timeouts, "
              f"{counters['crashes']} crashes, "
              f"{counters['transient']} transient, "
              f"{counters['deterministic']} deterministic), "
              f"{counters['retries']} retries, "
              f"{counters['pool_respawns']} pool respawns, "
              f"{faults['quarantined_points']} quarantined points"
              + (f", degraded to {degraded}" if degraded else ""))
    if args.save:
        mlcomp.selector.save(args.save)
        print(f"saved policy to {args.save}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLComp reproduction: compiler + ML toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_phases(p):
        p.add_argument("--phases", nargs="*", default=None,
                       help="optimization phases to apply first")

    p = sub.add_parser("run", help="compile and interpret a program")
    p.add_argument("file")
    add_phases(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("ir", help="print (optimized) IR")
    p.add_argument("file")
    add_phases(p)
    p.set_defaults(func=cmd_ir)

    p = sub.add_parser("profile", help="simulate on a target platform")
    p.add_argument("file")
    p.add_argument("--target", default="x86", choices=("x86", "riscv"))
    add_phases(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("phases", help="list optimization phases")
    p.set_defaults(func=cmd_phases)

    p = sub.add_parser("features", help="print static features")
    p.add_argument("file")
    p.add_argument("--all", action="store_true",
                   help="include zero-valued features")
    add_phases(p)
    p.set_defaults(func=cmd_features)

    p = sub.add_parser("workloads", help="list bundled workloads")
    p.add_argument("--suite", default=None)
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("mlcomp", help="run the four-step methodology")
    p.add_argument("--target", default="riscv",
                   choices=("x86", "riscv"))
    p.add_argument("--sequences", type=int, default=8)
    p.add_argument("--episodes", type=int, default=24)
    p.add_argument("--batch", type=int, default=6)
    p.add_argument("--max-seq", type=int, default=8)
    p.add_argument("--max-workloads", type=int, default=8)
    p.add_argument("--pe-mode", default="fast",
                   choices=("fast", "heuristic"))
    p.add_argument("--save", default=None,
                   help="write the trained PSS bundle (.npz)")
    # Evaluation-engine knobs.
    p.add_argument("--no-cache", action="store_true",
                   help="disable the evaluation cache")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="max in-memory cache entries (LRU beyond this)")
    p.add_argument("--cache-dir", default=None,
                   help="persist evaluations to this directory")
    p.add_argument("--eval-mode", default="serial",
                   choices=("serial", "thread", "process"),
                   help="executor for cold evaluations")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for thread/process modes")
    p.add_argument("--farm-dir", default=None,
                   help="join the shared compile farm at this "
                        "directory (cross-process result store; "
                        "process workers compose through it)")
    p.add_argument("--scheduler-workers", type=int, default=None,
                   help="dispatcher threads for the async batch "
                        "scheduler (coalesces concurrent clients; "
                        "off when unset)")
    # Fault-tolerance knobs.
    p.add_argument("--eval-timeout", type=float, default=None,
                   help="wall-clock deadline (seconds) per evaluation "
                        "point; hung workers are killed and retried")
    p.add_argument("--max-retries", type=int, default=2,
                   help="bounded retries for transient failures "
                        "(timeouts, crashed workers, store I/O)")
    p.add_argument("--no-degrade", action="store_true",
                   help="never step down process->thread->serial when "
                        "the worker pool breaks repeatedly")
    p.set_defaults(func=cmd_mlcomp)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
