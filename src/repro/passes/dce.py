"""Dead-code elimination family: dce, adce, bdce, dse.

- ``dce``   — iterative trivial dead-instruction elimination.
- ``adce``  — aggressive DCE: everything is dead unless transitively
  required by a side-effecting root (liveness over def-use + phis).
- ``bdce``  — bit-tracking DCE: demanded-bits analysis through ``and``/
  ``trunc`` masks; instructions whose demanded bits are fully known fold to
  constants, and ops feeding only dead bits are removed.
- ``dse``   — dead-store elimination: stores overwritten before any read,
  and stores to non-escaping allocas never read afterwards.
"""

from repro.ir import (
    AllocaInst,
    BinaryInst,
    CastInst,
    ConstantInt,
    Instruction,
    LoadInst,
    StoreInst,
)
from repro.passes.analysis import PRESERVE_CFG
from repro.passes.base import FunctionPass, register_pass
from repro.passes.utils import (
    alloca_escapes,
    delete_dead_instructions,
    instruction_may_read,
    may_alias,
    must_alias,
    replace_and_erase,
    underlying_object,
)
from repro.passes.worklist import delete_dead_worklist, use_worklist


@register_pass("dce")
class DCE(FunctionPass):
    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        if use_worklist(am):
            return delete_dead_worklist(function)
        return delete_dead_instructions(function)


@register_pass("adce")
class ADCE(FunctionPass):
    """Liveness-rooted DCE.

    Control flow is kept intact (no branch removal), matching the scalar
    part of LLVM's ADCE: roots are terminators and side-effecting
    instructions; anything not reached through operands is deleted.
    """

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        live = set()
        worklist = []
        for block in function.blocks:
            for inst in block.instructions:
                if inst.is_terminator() or inst.has_side_effects():
                    live.add(id(inst))
                    worklist.append(inst)
        while worklist:
            inst = worklist.pop()
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) not in live:
                    live.add(id(op))
                    worklist.append(op)
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if id(inst) not in live:
                    inst.drop_all_references()
                    # Uses of this dead value are themselves dead; erasing in
                    # reverse dependency order is guaranteed because a live
                    # instruction can never use a dead one.
                    for user, index in list(inst.uses):
                        from repro.ir import UndefValue
                        user.set_operand(index, UndefValue(inst.type))
                    block.remove_instruction(inst)
                    changed = True
        return changed


@register_pass("bdce")
class BDCE(FunctionPass):
    """Demanded-bits DCE.

    Computes, for integer instructions, which result bits can influence
    side effects.  When an ``and`` mask kills all bits an operand chain can
    produce, the chain collapses to zero.
    """

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryInst):
                    continue
                if inst.opcode != "and":
                    continue
                mask = inst.rhs if isinstance(inst.rhs, ConstantInt) else None
                if mask is None:
                    continue
                known = self._known_zero_bits(inst.lhs, depth=0)
                if known is None:
                    continue
                # Bits that survive both the mask and the operand.
                if (mask.value & ~known) == 0 and mask.value >= 0:
                    replace_and_erase(inst, ConstantInt(inst.type, 0))
                    changed = True
        if use_worklist(am):
            changed |= delete_dead_worklist(function)
        else:
            changed |= delete_dead_instructions(function)
        return changed

    def _known_zero_bits(self, value, depth):
        """Bit mask of positions known to be zero in ``value``."""
        if depth > 4:
            return None
        if isinstance(value, ConstantInt):
            return ~value.value
        if isinstance(value, CastInst) and value.opcode == "zext":
            source_bits = value.value.type.bits
            return ~((1 << source_bits) - 1)
        if isinstance(value, BinaryInst):
            if value.opcode == "and":
                lhs = self._known_zero_bits(value.lhs, depth + 1)
                rhs = self._known_zero_bits(value.rhs, depth + 1)
                results = [r for r in (lhs, rhs) if r is not None]
                if results:
                    combined = results[0]
                    for r in results[1:]:
                        combined |= r
                    return combined
            if value.opcode == "shl" and \
                    isinstance(value.rhs, ConstantInt):
                inner = self._known_zero_bits(value.lhs, depth + 1)
                shift = value.rhs.value & 63
                low_mask = (1 << shift) - 1
                if inner is None:
                    return low_mask
                return (inner << shift) | low_mask
            if value.opcode == "or":
                lhs = self._known_zero_bits(value.lhs, depth + 1)
                rhs = self._known_zero_bits(value.rhs, depth + 1)
                if lhs is not None and rhs is not None:
                    return lhs & rhs
        return None


@register_pass("dse")
class DSE(FunctionPass):
    # Store removal cannot affect the CFG nor IV discovery.
    preserved_analyses = PRESERVE_CFG | frozenset({"loopivs"})

    def run_on_function(self, function, am=None):
        changed = False
        changed |= self._intra_block(function)
        changed |= self._dead_at_exit(function)
        return changed

    @staticmethod
    def _intra_block(function):
        """Remove a store overwritten later in the same block with no
        intervening read of the same memory."""
        changed = False
        for block in function.blocks:
            instructions = block.instructions
            for i, inst in enumerate(list(instructions)):
                if not isinstance(inst, StoreInst) or inst.parent is None:
                    continue
                for later in instructions[instructions.index(inst) + 1:]:
                    if isinstance(later, StoreInst) and \
                            must_alias(later.pointer, inst.pointer):
                        inst.erase_from_parent()
                        changed = True
                        break
                    if instruction_may_read(later, inst.pointer):
                        break
                    if later.is_terminator():
                        break
        return changed

    @staticmethod
    def _dead_at_exit(function):
        """Remove stores to non-escaping allocas that are never loaded."""
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, StoreInst):
                    continue
                base = underlying_object(inst.pointer)
                if not isinstance(base, AllocaInst):
                    continue
                if alloca_escapes(base):
                    continue
                has_load = any(
                    isinstance(user, LoadInst) or
                    (isinstance(user, Instruction)
                     and not isinstance(user, StoreInst)
                     and not isinstance(user, AllocaInst)
                     and any(isinstance(u2, LoadInst)
                             for u2 in user.users))
                    for user in base.users)
                # Precise check: any load whose pointer may alias the base.
                loads = []
                for other_block in function.blocks:
                    for other in other_block.instructions:
                        if isinstance(other, LoadInst) and \
                                may_alias(other.pointer, inst.pointer):
                            loads.append(other)
                if not loads and not has_load:
                    inst.erase_from_parent()
                    changed = True
        return changed
