"""Optimization phases (paper Table VI) and the PassManager.

Importing this package registers every phase in ``PASS_REGISTRY``.
"""

from repro.passes.analysis import (
    ALL_ANALYSES,
    AnalysisManager,
    PRESERVE_CFG,
    PRESERVE_NONE,
)
from repro.passes.audit import AnalysisPreservationError
from repro.passes.base import (
    PASS_REGISTRY,
    Pass,
    FunctionPass,
    PassManager,
    PassManagerStats,
    available_phases,
    create_pass,
    register_pass,
)

# Import pass modules for their registration side effects.
from repro.passes import mem2reg as _mem2reg            # noqa: F401
from repro.passes import simplifycfg as _simplifycfg    # noqa: F401
from repro.passes import instcombine as _instcombine    # noqa: F401
from repro.passes import dce as _dce                    # noqa: F401
from repro.passes import cse as _cse                    # noqa: F401
from repro.passes import sccp as _sccp                  # noqa: F401
from repro.passes import licm as _licm                  # noqa: F401
from repro.passes import loop_rotate as _loop_rotate    # noqa: F401
from repro.passes import loop_unroll as _loop_unroll    # noqa: F401
from repro.passes import loop_misc as _loop_misc        # noqa: F401
from repro.passes import vectorize as _vectorize        # noqa: F401
from repro.passes import interprocedural as _ipo        # noqa: F401
from repro.passes import scalar_misc as _scalar_misc    # noqa: F401

# The phase vocabulary of the paper's Table VI that this compiler
# implements.  (All names are registered; a few are documented no-ops in
# this substrate — see DESIGN.md.)
TABLE_VI_PHASES = tuple(sorted(PASS_REGISTRY))

__all__ = [
    "ALL_ANALYSES",
    "AnalysisManager",
    "AnalysisPreservationError",
    "PASS_REGISTRY",
    "PRESERVE_CFG",
    "PRESERVE_NONE",
    "Pass",
    "FunctionPass",
    "PassManager",
    "PassManagerStats",
    "available_phases",
    "create_pass",
    "register_pass",
    "TABLE_VI_PHASES",
]
