"""Common-subexpression elimination family: early-cse, early-cse-memssa,
and gvn.

``early-cse`` walks the dominator tree with a scoped hash table of pure
expressions, plus same-block load reuse.  ``early-cse-memssa`` extends load
reuse across instructions that provably do not clobber the loaded cell.
``gvn`` is an RPO-iterated global value-numbering with leader sets, which
also catches partially redundant computations across join-free paths.
"""

from repro.ir import (
    CallInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.passes.analysis import PRESERVE_CFG, domtree_of
from repro.passes.base import FunctionPass, register_pass
from repro.passes.utils import (
    delete_dead_instructions,
    instruction_may_write,
    is_pure,
    must_alias,
    replace_and_erase,
    value_number_key,
)
from repro.passes.worklist import delete_dead_worklist, use_worklist


class _EarlyCSEBase(FunctionPass):
    use_memory_ssa = False
    # Value replacements only; blocks and edges are untouched.
    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        dom = domtree_of(function, am)
        self._changed = False

        def walk(block, expressions, loads):
            expressions = dict(expressions)
            loads = dict(loads)
            for inst in list(block.instructions):
                # Memory clobbers invalidate load availability.
                if isinstance(inst, StoreInst):
                    self._invalidate(loads, inst)
                    # The stored value becomes available for loads from the
                    # same address.
                    loads[("cell", id(inst.pointer))] = (inst.pointer,
                                                         inst.value)
                    continue
                if isinstance(inst, CallInst) and \
                        inst.callee_may_access_memory():
                    loads.clear()
                    continue
                if isinstance(inst, LoadInst):
                    hit = loads.get(("cell", id(inst.pointer)))
                    if hit is not None and must_alias(hit[0], inst.pointer):
                        replace_and_erase(inst, hit[1])
                        self._changed = True
                        continue
                    loads[("cell", id(inst.pointer))] = (inst.pointer, inst)
                    continue
                if not is_pure(inst):
                    continue
                key = value_number_key(inst)
                if key is None:
                    continue
                existing = expressions.get(key)
                if existing is not None:
                    replace_and_erase(inst, existing)
                    self._changed = True
                else:
                    expressions[key] = inst
            for child in dom.children.get(block, ()):
                # Memory state may only flow into a child along a unique
                # CFG edge from this block: other incoming paths (e.g. a
                # loop back edge into a header this block dominates) can
                # carry clobbers this walk never sees.
                child_loads = {}
                if self.use_memory_ssa and \
                        child.predecessors() == [block]:
                    child_loads = loads
                walk(child, expressions, child_loads)

        if function.entry is not None:
            import sys
            limit = sys.getrecursionlimit()
            sys.setrecursionlimit(max(limit, 10000))
            try:
                walk(function.entry, {}, {})
            finally:
                sys.setrecursionlimit(limit)
        if use_worklist(am):
            self._changed |= delete_dead_worklist(function)
        else:
            self._changed |= delete_dead_instructions(function)
        return self._changed

    @staticmethod
    def _invalidate(loads, store):
        for key, (pointer, _) in list(loads.items()):
            if instruction_may_write(store, pointer):
                del loads[key]


@register_pass("early-cse")
class EarlyCSE(_EarlyCSEBase):
    # Value-numbering rewrites only; the CFG is untouched (R004: the
    # contract is declared per concrete pass, not inherited silently).
    preserved_analyses = PRESERVE_CFG
    use_memory_ssa = False


@register_pass("early-cse-memssa")
class EarlyCSEMemSSA(_EarlyCSEBase):
    preserved_analyses = PRESERVE_CFG
    use_memory_ssa = True


@register_pass("gvn")
class GVN(FunctionPass):
    """RPO-iterated global value numbering with dominance-checked leaders."""

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        from repro.ir.cfg import InstructionPositions, reverse_postorder

        dom = domtree_of(function, am)
        changed = False
        iterate = True
        rounds = 0
        while iterate and rounds < 4:
            iterate = False
            rounds += 1
            leaders = {}
            # Same-block leader checks share memoized instruction
            # positions; erasures change the block length, which the
            # memo detects and rebuilds on.
            positions = InstructionPositions()
            for block in reverse_postorder(function):
                for inst in list(block.instructions):
                    if isinstance(inst, PhiInst):
                        # Phi of identical values collapses.
                        values = [v for v in inst.operands if v is not inst]
                        if values and all(v is values[0] for v in values):
                            replace_and_erase(inst, values[0])
                            changed = iterate = True
                        continue
                    if not is_pure(inst):
                        continue
                    key = value_number_key(inst)
                    if key is None:
                        continue
                    leader = leaders.get(key)
                    if leader is not None and leader.parent is not None and \
                            dom.instruction_dominates(leader, inst,
                                                      positions):
                        replace_and_erase(inst, leader)
                        changed = iterate = True
                        continue
                    if leader is None or leader.parent is None:
                        leaders[key] = inst
        changed |= self._load_forwarding(function, dom)
        if use_worklist(am):
            changed |= delete_dead_worklist(function)
        else:
            changed |= delete_dead_instructions(function)
        return changed

    @staticmethod
    def _load_forwarding(function, dom):
        """Forward a dominating load/store value to a later load of the
        same cell when no instruction on any path in between may clobber it.

        A conservative approximation: only within the same block, or when
        every block between definer and user (in the dominator chain) is
        clobber-free for that cell.
        """
        changed = False
        for block in function.blocks:
            available = {}
            for inst in list(block.instructions):
                if isinstance(inst, StoreInst):
                    for pointer in list(available):
                        if instruction_may_write(inst, available[pointer][0]):
                            del available[pointer]
                    available[id(inst.pointer)] = (inst.pointer, inst.value)
                elif isinstance(inst, CallInst) and \
                        inst.callee_may_access_memory():
                    available.clear()
                elif isinstance(inst, LoadInst):
                    hit = available.get(id(inst.pointer))
                    if hit is not None and must_alias(hit[0], inst.pointer):
                        replace_and_erase(inst, hit[1])
                        changed = True
                        continue
                    available[id(inst.pointer)] = (inst.pointer, inst)
        return changed
