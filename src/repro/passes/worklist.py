"""Shared worklist infrastructure for fixpoint passes.

The seed's hot passes (instcombine, dce, simplifycfg, the sccp cleanup)
reached their fixpoints with ``while progress: rescan everything``
loops: every local rewrite paid another full scan of the function.
This module provides the LLVM-style alternative — seed the worklist
from the whole function once, then re-enqueue only the instructions (or
blocks) a rewrite could have affected: the defs of the erased
instruction's operands, the users of the replaced value, the
replacement itself.

Converted passes keep their original rescan bodies for the legacy cost
model (``PassManager(analysis_cache=False)``, the measured baseline of
``benchmarks/test_passmanager.py``); both engines are bit-identical on
the differential corpus (``tests/passes/test_worklist_vs_rescan.py``).
"""

from repro.ir.instructions import Instruction
from repro.passes.utils import is_trivially_dead


def use_worklist(am):
    """Whether a pass should run its worklist engine.

    The legacy cost model (a disabled AnalysisManager) keeps the seed's
    rescan bodies so the benchmark baseline stays honest.
    """
    return am is None or am.enabled


class InstructionWorklist:
    """Deduplicated LIFO worklist of instructions.

    Entries hold strong references while queued (so CPython id reuse
    cannot alias two live instructions in the dedup set) and erased
    instructions are skipped on pop (``inst.parent is None``).
    """

    __slots__ = ("_stack", "_queued")

    def __init__(self):
        self._stack = []
        self._queued = set()

    def __len__(self):
        return len(self._stack)

    def add(self, inst):
        """Enqueue one instruction (no-op when already queued/erased)."""
        if inst.parent is not None and id(inst) not in self._queued:
            self._queued.add(id(inst))
            self._stack.append(inst)

    def add_users(self, value):
        """Enqueue every (distinct) instruction using ``value``."""
        for user, _ in value.uses:
            self.add(user)

    def add_operand_defs(self, inst):
        """Enqueue the defining instructions of ``inst``'s operands
        (they may have become dead or foldable)."""
        for op in inst.operands:
            if isinstance(op, Instruction):
                self.add(op)

    def seed(self, function):
        """Seed from the whole function so pops arrive in program order
        (defs before users, matching the rescan visit order)."""
        blocks = function.blocks
        for block in reversed(blocks):
            instructions = block.instructions
            for index in range(len(instructions) - 1, -1, -1):
                inst = instructions[index]
                self._queued.add(id(inst))
                self._stack.append(inst)

    def pop(self):
        """The next live queued instruction, or None when drained."""
        stack = self._stack
        queued = self._queued
        while stack:
            inst = stack.pop()
            queued.discard(id(inst))
            if inst.parent is not None:
                return inst
        return None


class CFGWorklist:
    """Dirty-block marks for round-structured CFG passes.

    CFG cleanup rules interact (a merge exposes a diamond, a fold
    orphans a region), so simplifycfg keeps the seed's *round*
    structure — every rule applied in a fixed priority order — but each
    round only visits blocks marked dirty by the previous round's
    rewrites.  Rules mark the blocks they touched (``add``) and the
    blocks whose predecessor sets changed (``add_pred_change`` — every
    rule guarded by predecessor-set shape may have unblocked there).

    Membership is tested at visit time, so a block marked early in a
    round is still visited by that round's later rules — exactly when
    the rescan engine would reach it.  simplifycfg never creates blocks,
    so marked ids cannot alias a new block within one run.
    """

    __slots__ = ("ids",)

    def __init__(self):
        self.ids = set()

    def add(self, block):
        if block.parent is not None:
            self.ids.add(id(block))

    def add_pred_change(self, block):
        # Runs right AFTER a CFG edit; the IR-maintained links are
        # already current (the mutation API updates them in the same
        # step as the terminator edit), so this sees e.g. the rewired
        # predecessors skip-forwarding just created, at O(preds).
        if block.parent is None:
            return
        self.ids.add(id(block))
        for pred in block.predecessors():
            self.ids.add(id(pred))


def delete_dead_worklist(function, seeds=None):
    """Worklist-driven trivially-dead-instruction elimination.

    Erases exactly the same set as
    :func:`repro.passes.utils.delete_dead_instructions` (the transitive
    closure of trivially dead instructions is order-independent) without
    rescanning the function once per dead chain.  ``seeds`` restricts
    the initial candidates; by default the whole function seeds once.
    """
    if seeds is None:
        worklist = [inst for block in function.blocks
                    for inst in block.instructions]
    else:
        worklist = list(seeds)
    changed = False
    while worklist:
        inst = worklist.pop()
        if inst.parent is None or not is_trivially_dead(inst):
            continue
        operands = [op for op in inst.operands
                    if isinstance(op, Instruction)]
        inst.erase_from_parent()
        worklist.extend(operands)
        changed = True
    return changed
