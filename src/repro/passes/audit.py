"""Dynamic analysis-preservation auditor.

The static R004 rule (:mod:`repro.lint`) forces every pass to *declare*
a preservation contract; this module checks the declarations are
*true*.  In audit mode (``PassManager(audit_analyses=True)`` or
``REPRO_AUDIT_ANALYSES=1``) the manager, after every phase, recomputes
each analysis still cached for each function from scratch and diffs it
against the cache.  Any divergence means a pass either claimed to
preserve an analysis it broke, or mutated a function without reporting
the change — both are silent-miscompile factories: the next pass plans
its transform against a dominator tree / loop nest / trip count for a
CFG that no longer exists.

The analog in LLVM is ``-verify-analysis-invalidation`` (expensive
checks); like there, audit mode is far too slow for production and runs
in a dedicated test tier (``tests/passes/test_preservation_audit.py``)
over an expression-fuzz corpus crossed with every registered phase.

Comparison semantics per analysis:

``domtree``
    Recompute and compare RPO sequence and immediate-dominator map by
    block identity (a valid cached tree is a pure function of the
    block list, so equality is exact, not merely isomorphic).
``loops``
    Recompute and compare the canonical forest shape: per loop, the
    header, the member-block set, and the parent header, all by block
    identity.
``loopivs`` / ``loopcanon``
    Memoized query caches pinned to ``Loop`` objects.  Each memo entry
    whose pinned loop is still reachable — i.e. the identical ``Loop``
    object is in the cached ``loops`` forest, so a later query can hit
    the memo — is re-asked against the current IR and compared
    structurally.  Entries pinned to unreachable loops are skipped:
    they can never be served again, so staleness is unobservable.
    (``loopcanon``'s formation-failed marks are also skipped — they are
    pessimistic only, and re-checking them would require re-running the
    mutating formation pass.)
``fingerprint``
    Recompute and compare.  A stale fingerprint on an allegedly
    untouched function convicts a pass of mutating code it never
    reported changing.
``callsig``
    Recompute and compare; catches passes that change callee-visible
    state (attributes) without setting ``mutates_callee_visible_state``.
"""

import os

from repro.errors import VerificationError
from repro.ir.cfg import DominatorTree, LoopInfo


class AnalysisPreservationError(VerificationError):
    """A pass's ``preserved_analyses`` claim (or unreported mutation)
    left a provably stale analysis in the cache."""


def audit_enabled_by_env():
    return os.environ.get("REPRO_AUDIT_ANALYSES") == "1"


def _fail(phase, function, analysis, detail):
    raise AnalysisPreservationError(
        f"phase {phase!r} left a stale {analysis!r} analysis cached for "
        f"function {function.name!r}: {detail} — its preserved_analyses "
        f"claim (or an unreported mutation) is wrong")


def _same(a, b):
    """Structural equality that treats IR objects as identity-compared
    leaves (a preserved analysis must keep answering with the *same*
    blocks/instructions, not merely isomorphic ones)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    if isinstance(a, (int, float, str, bytes, frozenset)):
        return a == b
    if type(a).__module__.startswith("repro.ir"):
        return False  # distinct IR objects, already not identical
    if hasattr(a, "__dict__"):
        mine, theirs = vars(a), vars(b)
        return mine.keys() == theirs.keys() and \
            all(_same(mine[k], theirs[k]) for k in mine)
    return a == b


def _check_domtree(phase, function, cached, fresh):
    if [id(b) for b in cached.rpo] != [id(b) for b in fresh.rpo]:
        _fail(phase, function, "domtree",
              "cached reverse-postorder no longer matches the CFG")
    for block in fresh.rpo:
        if cached.idom.get(block) is not fresh.idom.get(block):
            _fail(phase, function, "domtree",
                  f"stale immediate dominator for block {block.name!r}")


def _forest_shape(info):
    shape = set()
    for loop in info.loops:
        parent = id(loop.parent.header) if loop.parent is not None else None
        shape.add((id(loop.header),
                   frozenset(id(b) for b in loop.blocks), parent))
    return shape


def _check_loops(phase, function, cached, fresh):
    if _forest_shape(cached) != _forest_shape(fresh):
        _fail(phase, function, "loops",
              "cached loop forest no longer matches the CFG")


def _check_loopivs(phase, function, memo, pinned, fresh_dom):
    from repro.passes.loop_canon import counted_exit_bound, simulate_exits
    from repro.passes.loop_utils import (
        constant_trip_count,
        find_induction_variable,
    )

    for loop, preheader, cached in memo._ivs.values():
        if id(loop) not in pinned or preheader.parent is not function:
            continue
        if not _same(cached, find_induction_variable(loop, preheader)):
            _fail(phase, function, "loopivs",
                  f"stale induction variable for the loop at "
                  f"{loop.header.name!r}")
    for key, (loop, preheader, cached) in memo._trips.items():
        if id(loop) not in pinned or preheader.parent is not function:
            continue
        if isinstance(key[0], str):
            if key[0] == "plan":
                fresh = simulate_exits(loop, preheader, fresh_dom,
                                       max_iterations=key[3])
            else:
                fresh = counted_exit_bound(loop, preheader, fresh_dom,
                                           max_iterations=key[3])
        else:
            fresh = constant_trip_count(loop, preheader, max_count=key[2])
        if not _same(cached, fresh):
            _fail(phase, function, "loopivs",
                  f"stale {key[0] if isinstance(key[0], str) else 'trip'}"
                  f"-count memo for the loop at {loop.header.name!r}")


def _check_loopcanon(phase, function, memo, pinned):
    from repro.passes.loop_canon import loop_is_lcssa, loop_is_simplified

    for loop, verdict in memo._simplified.values():
        if id(loop) in pinned and loop_is_simplified(loop) != verdict:
            _fail(phase, function, "loopcanon",
                  f"stale simplified-form verdict for the loop at "
                  f"{loop.header.name!r}")
    for loop, verdict in memo._lcssa.values():
        if id(loop) in pinned and loop_is_lcssa(loop) != verdict:
            _fail(phase, function, "loopcanon",
                  f"stale LCSSA verdict for the loop at "
                  f"{loop.header.name!r}")


def _audit_function(phase, function, cache):
    fresh_dom = None
    if "domtree" in cache or "loops" in cache:
        fresh_dom = DominatorTree(function)
    if "domtree" in cache:
        _check_domtree(phase, function, cache["domtree"], fresh_dom)
    pinned = frozenset()
    if "loops" in cache:
        cached_loops = cache["loops"]
        _check_loops(phase, function, cached_loops,
                     LoopInfo(function, domtree=fresh_dom))
        pinned = frozenset(id(loop) for loop in cached_loops.loops)
    if "loopivs" in cache:
        if fresh_dom is None:
            fresh_dom = DominatorTree(function)
        _check_loopivs(phase, function, cache["loopivs"], pinned,
                       fresh_dom)
    if "loopcanon" in cache:
        _check_loopcanon(phase, function, cache["loopcanon"], pinned)
    if "fingerprint" in cache:
        from repro.ir.printer import function_fingerprint
        if function_fingerprint(function) != cache["fingerprint"]:
            _fail(phase, function, "fingerprint",
                  "content hash changed without the function being "
                  "reported as modified")
    if "callsig" in cache:
        from repro.passes.transform_cache import callee_signature
        if callee_signature(function) != cache["callsig"]:
            _fail(phase, function, "callsig",
                  "callee-visible state changed without "
                  "mutates_callee_visible_state dropping the signature")


def audit_preservation(module, am, phase):
    """Recompute every analysis still cached on ``am`` for ``module``'s
    functions and raise :class:`AnalysisPreservationError` on the first
    divergence.  Reads the cache without populating it: the audited run
    keeps the exact warm/cold behaviour it would have had."""
    for function, cache in am.entries():
        if not cache or function.is_declaration():
            continue
        if function.module is not module:
            continue
        _audit_function(phase, function, dict(cache))
