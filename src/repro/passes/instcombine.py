"""instsimplify / instcombine / aggressive-instcombine.

``instsimplify`` only performs folds whose result is an existing value or a
constant.  ``instcombine`` additionally rewrites instructions into cheaper
forms (strength reduction, cast/cmp combining).  ``aggressive-instcombine``
adds pattern folds over small expression trees (constant chains).
"""

from repro.ir import (
    BinaryInst,
    CastInst,
    ConstantFloat,
    ConstantInt,
    ICmpInst,
    Instruction,
    SelectInst,
)
from repro.ir.instructions import ICMP_SWAP
from repro.ir.types import I1, I64
from repro.passes.analysis import PRESERVE_CFG
from repro.passes.base import FunctionPass, register_pass
from repro.passes.utils import (
    delete_dead_instructions,
    fold_instruction,
    replace_and_erase,
)
from repro.passes.worklist import (
    InstructionWorklist,
    delete_dead_worklist,
    use_worklist,
)


def _cint(value):
    return ConstantInt(I64, value)


def _is_int_const(value, expected=None):
    if not isinstance(value, ConstantInt):
        return False
    return expected is None or value.value == expected


def _is_float_const(value, expected=None):
    if not isinstance(value, ConstantFloat):
        return False
    return expected is None or value.value == expected


def simplify_instruction(inst):
    """Return an existing value or constant equal to ``inst``, or None.

    This is the shared engine of instsimplify; it never creates new
    instructions.
    """
    folded = fold_instruction(inst)
    if folded is not None:
        return folded
    if isinstance(inst, BinaryInst):
        return _simplify_binary(inst)
    if isinstance(inst, ICmpInst):
        return _simplify_icmp(inst)
    if isinstance(inst, SelectInst):
        if inst.true_value is inst.false_value:
            return inst.true_value
        if isinstance(inst.condition, ConstantInt):
            return (inst.true_value if inst.condition.value
                    else inst.false_value)
    if isinstance(inst, CastInst):
        # sitofp(fptosi x) is NOT an identity; but zext/sext of i1 followed
        # by trunc back to i1 is.
        inner = inst.value
        if isinstance(inner, CastInst):
            if (inst.opcode == "trunc" and inner.opcode in ("zext", "sext")
                    and inst.type == inner.value.type):
                return inner.value
    return None


def _simplify_binary(inst):
    opcode, lhs, rhs = inst.opcode, inst.lhs, inst.rhs
    if opcode == "add":
        if _is_int_const(rhs, 0):
            return lhs
        if _is_int_const(lhs, 0):
            return rhs
    elif opcode == "sub":
        if _is_int_const(rhs, 0):
            return lhs
        if lhs is rhs:
            return _cint(0)
    elif opcode == "mul":
        if _is_int_const(rhs, 1):
            return lhs
        if _is_int_const(lhs, 1):
            return rhs
        if _is_int_const(rhs, 0) or _is_int_const(lhs, 0):
            return _cint(0)
    elif opcode == "sdiv":
        if _is_int_const(rhs, 1):
            return lhs
        if lhs is rhs:
            return None  # 0/0 traps; cannot fold to 1
    elif opcode == "srem":
        if _is_int_const(rhs, 1):
            return _cint(0)
    elif opcode == "and":
        if lhs is rhs:
            return lhs
        if _is_int_const(rhs, 0) or _is_int_const(lhs, 0):
            return ConstantInt(inst.type, 0)
        if _is_int_const(rhs, -1):
            return lhs
        if _is_int_const(lhs, -1):
            return rhs
    elif opcode == "or":
        if lhs is rhs:
            return lhs
        if _is_int_const(rhs, 0):
            return lhs
        if _is_int_const(lhs, 0):
            return rhs
        if _is_int_const(rhs, -1) or _is_int_const(lhs, -1):
            return ConstantInt(inst.type, -1)
    elif opcode == "xor":
        if lhs is rhs:
            return ConstantInt(inst.type, 0)
        if _is_int_const(rhs, 0):
            return lhs
        if _is_int_const(lhs, 0):
            return rhs
    elif opcode in ("shl", "ashr", "lshr"):
        if _is_int_const(rhs, 0):
            return lhs
        if _is_int_const(lhs, 0):
            return _cint(0)
    elif opcode == "fadd":
        # x + 0.0 is safe for finite x only when x is not -0.0; our float
        # model ignores signed zero, so treat as identity.
        if _is_float_const(rhs, 0.0):
            return lhs
        if _is_float_const(lhs, 0.0):
            return rhs
    elif opcode == "fsub":
        if _is_float_const(rhs, 0.0):
            return lhs
    elif opcode == "fmul":
        if _is_float_const(rhs, 1.0):
            return lhs
        if _is_float_const(lhs, 1.0):
            return rhs
    elif opcode == "fdiv":
        if _is_float_const(rhs, 1.0):
            return lhs
    return None


def _simplify_icmp(inst):
    lhs, rhs = inst.operands
    if lhs is rhs:
        result = inst.predicate in ("eq", "sle", "sge")
        return ConstantInt(I1, int(result))
    return None


class _CombineBase(FunctionPass):
    aggressive = False
    create_instructions = True
    # Instruction rewrites only; the CFG is never modified.
    preserved_analyses = PRESERVE_CFG
    #: Live only during a worklist-driven run; rewrite helpers feed it.
    _worklist = None

    def run_on_function(self, function, am=None):
        if not use_worklist(am):
            return self._run_rescan(function)
        return self._run_worklist(function)

    def _run_worklist(self, function):
        """Worklist engine: seed the whole function once; after each
        rewrite re-enqueue only the replacement, the users that now see
        it, and the operand defs that may have become foldable/dead."""
        worklist = InstructionWorklist()
        worklist.seed(function)
        self._worklist = worklist
        changed = False
        try:
            while True:
                inst = worklist.pop()
                if inst is None:
                    break
                simplified = simplify_instruction(inst)
                if simplified is not None:
                    worklist.add_users(inst)
                    worklist.add_operand_defs(inst)
                    replace_and_erase(inst, simplified)
                    if isinstance(simplified, Instruction):
                        worklist.add(simplified)
                    changed = True
                    continue
                if self.create_instructions and self._combine(inst):
                    changed = True
        finally:
            self._worklist = None
        # Dead-code collection stays a separate final phase, as in the
        # rescan engine (combines must not observe post-DCE use counts).
        changed |= delete_dead_worklist(function)
        return changed

    def _run_rescan(self, function):
        """The seed's fixpoint engine: rescan everything while any
        rewrite makes progress (legacy cost-model baseline)."""
        changed = False
        progress = True
        iterations = 0
        while progress and iterations < 8:
            progress = False
            iterations += 1
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    simplified = simplify_instruction(inst)
                    if simplified is not None:
                        replace_and_erase(inst, simplified)
                        progress = True
                        continue
                    if self.create_instructions and self._combine(inst):
                        progress = True
            changed |= progress
        changed |= delete_dead_instructions(function)
        return changed

    # -- rewrites that create new instructions ------------------------------
    def _combine(self, inst):
        if isinstance(inst, BinaryInst):
            return (self._combine_binary(inst)
                    or (self.aggressive and self._combine_chains(inst)))
        if isinstance(inst, ICmpInst):
            return self._combine_icmp(inst)
        if isinstance(inst, SelectInst):
            return self._combine_select(inst)
        return False

    def _replace_with(self, inst, new_inst):
        block = inst.parent
        index = block.instructions.index(inst)
        new_inst.name = inst.name or block.parent.next_name()
        block.insert(index, new_inst)
        replace_and_erase(inst, new_inst)
        worklist = self._worklist
        if worklist is not None:
            worklist.add(new_inst)
            worklist.add_users(new_inst)
            worklist.add_operand_defs(new_inst)
        return True

    def _erase_replacing(self, inst, value):
        """``replace_and_erase`` that keeps the worklist current (users
        of ``inst`` now see ``value``; operand defs may die)."""
        worklist = self._worklist
        if worklist is not None:
            worklist.add_users(inst)
            worklist.add_operand_defs(inst)
        replace_and_erase(inst, value)
        if worklist is not None and isinstance(value, Instruction):
            worklist.add(value)
        return True

    def _mutated(self, inst):
        """Re-enqueue an instruction edited in place plus its users."""
        worklist = self._worklist
        if worklist is not None:
            worklist.add(inst)
            worklist.add_users(inst)
        return True

    def _combine_binary(self, inst):
        opcode, lhs, rhs = inst.opcode, inst.lhs, inst.rhs
        # Canonicalize constants to the RHS of commutative ops.
        if inst.is_commutative() and isinstance(lhs, ConstantInt) \
                and not isinstance(rhs, ConstantInt):
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            return self._mutated(inst)
        if opcode == "mul" and _is_int_const(rhs):
            value = rhs.value
            if value > 1 and (value & (value - 1)) == 0:
                shift = value.bit_length() - 1
                return self._replace_with(
                    inst, BinaryInst("shl", lhs, _cint(shift)))
            if value == -1:
                return self._replace_with(
                    inst, BinaryInst("sub", _cint(0), lhs))
        if opcode == "srem" and _is_int_const(rhs):
            # x % 2^k == x & (2^k - 1) for non-negative x; without a range
            # analysis this is only safe when x is a zext from i1/i8 — skip.
            pass
        if opcode == "sub" and _is_int_const(rhs):
            # x - C -> x + (-C): exposes reassociation and CSE.
            if rhs.value != 0:
                return self._replace_with(
                    inst, BinaryInst("add", lhs, _cint(-rhs.value)))
        if opcode == "add" and isinstance(rhs, BinaryInst) \
                and rhs.opcode == "sub" and rhs.lhs is lhs:
            # a + (b - a) is not generally a+b; skip. (left intentionally)
            pass
        if opcode == "xor" and _is_int_const(rhs, -1):
            # Double negation: ~(~x) -> x.
            if isinstance(lhs, BinaryInst) and lhs.opcode == "xor" \
                    and _is_int_const(lhs.rhs, -1):
                return self._erase_replacing(inst, lhs.lhs)
        # (x op C1) op C2 -> x op (C1 op C2) for associative op.
        if opcode in ("add", "mul", "and", "or", "xor") \
                and _is_int_const(rhs) and isinstance(lhs, BinaryInst) \
                and lhs.opcode == opcode and _is_int_const(lhs.rhs) \
                and len(lhs.uses) == 1:
            from repro.passes.utils import fold_binary
            folded = fold_binary(opcode, lhs.rhs, rhs, inst.type)
            if folded is not None:
                return self._replace_with(
                    inst, BinaryInst(opcode, lhs.lhs, folded))
        return False

    def _combine_icmp(self, inst):
        lhs, rhs = inst.operands
        # icmp with constant on the LHS: swap to canonical form.
        if isinstance(lhs, ConstantInt) and not isinstance(rhs, ConstantInt):
            swapped = ICmpInst(ICMP_SWAP[inst.predicate], rhs, lhs)
            return self._replace_with(inst, swapped)
        # icmp ne (zext i1 x), 0  ->  x ;  icmp eq (zext i1 x), 0 -> not x
        if isinstance(lhs, CastInst) and lhs.opcode == "zext" \
                and lhs.value.type == I1 and _is_int_const(rhs, 0):
            if inst.predicate == "ne":
                return self._erase_replacing(inst, lhs.value)
            if inst.predicate == "eq":
                flipped = ICmpInst("eq", lhs.value, ConstantInt(I1, 0))
                return self._replace_with(inst, flipped)
        # icmp pred (add x, C1), C2 -> icmp pred x, C2-C1
        if isinstance(lhs, BinaryInst) and lhs.opcode == "add" \
                and _is_int_const(lhs.rhs) and _is_int_const(rhs):
            new_rhs = _cint(rhs.value - lhs.rhs.value)
            # Only safe if no wraparound at the boundary; our i64 wraps like
            # the interpreter, and predicates are signed, so the rewrite is
            # unsafe when C2-C1 overflows — ConstantInt wraps identically,
            # making it safe except at the extreme boundary; accept i64
            # two's-complement semantics as the contract.
            if abs(rhs.value - lhs.rhs.value) < (1 << 62):
                return self._replace_with(
                    inst, ICmpInst(inst.predicate, lhs.lhs, new_rhs))
        return False

    def _combine_select(self, inst):
        condition = inst.condition
        # select (icmp eq c, 0), a, b -> select c, b, a
        if isinstance(condition, ICmpInst) and len(condition.uses) == 1 \
                and condition.predicate == "eq" \
                and _is_int_const(condition.operands[1], 0) \
                and condition.operands[0].type == I1:
            flipped = SelectInst(condition.operands[0], inst.false_value,
                                 inst.true_value)
            return self._replace_with(inst, flipped)
        # select c, 1, 0 (i64) -> zext c
        if _is_int_const(inst.true_value, 1) \
                and _is_int_const(inst.false_value, 0) \
                and inst.type == I64:
            return self._replace_with(
                inst, CastInst("zext", inst.condition, I64))
        return False

    def _combine_chains(self, inst):
        """Aggressive: reassociate (x op y) op C over single-use chains to
        sink all constants into one operand."""
        opcode = inst.opcode
        if opcode not in ("add", "mul"):
            return False
        if not _is_int_const(inst.rhs):
            return False
        node = inst.lhs
        # Look through one non-constant level: ((x op C1) op y) op C2.
        if isinstance(node, BinaryInst) and node.opcode == opcode \
                and len(node.uses) == 1 and isinstance(node.lhs, BinaryInst) \
                and node.lhs.opcode == opcode and len(node.lhs.uses) == 1 \
                and _is_int_const(node.lhs.rhs):
            from repro.passes.utils import fold_binary
            folded = fold_binary(opcode, node.lhs.rhs, inst.rhs, inst.type)
            if folded is None:
                return False
            inner = BinaryInst(opcode, node.lhs.lhs, node.rhs)
            block = inst.parent
            index = block.instructions.index(inst)
            inner.name = block.parent.next_name()
            block.insert(index, inner)
            return self._replace_with(inst, BinaryInst(opcode, inner, folded))
        return False


@register_pass("instsimplify")
class InstSimplify(_CombineBase):
    # Value rewrites only; the CFG is untouched (R004: the contract is
    # declared per concrete pass, not inherited silently).
    preserved_analyses = PRESERVE_CFG
    create_instructions = False


@register_pass("instcombine")
class InstCombine(_CombineBase):
    preserved_analyses = PRESERVE_CFG


@register_pass("aggressive-instcombine")
class AggressiveInstCombine(_CombineBase):
    preserved_analyses = PRESERVE_CFG
    aggressive = True
