"""Analysis manager: cached per-function analyses with preservation sets.

The pass layer follows LLVM's new-pass-manager design: analyses
(``DominatorTree``, ``LoopInfo``, induction-variable/trip-count queries,
and the canonical per-function fingerprint) are computed on demand,
cached per function, and invalidated when a pass changes the function —
except for the analyses the pass declares *preserved*.

A pass that does not touch the CFG (instcombine, dce, cse, ...) declares
``preserved_analyses = PRESERVE_CFG`` and the dominator tree / loop nest
survive it; a CFG-restructuring pass (simplifycfg, loop-rotate, unroll)
preserves nothing.  The per-function fingerprint is never preserved: any
change must re-fingerprint.

Correctness contract: a pass run against a warm manager must behave
bit-identically to a run against fresh analyses (enforced by
``tests/passes/test_warm_vs_fresh.py`` across the whole registry).
"""

from repro.ir.cfg import DominatorTree, LoopInfo


#: Every analysis the manager knows how to compute.
ALL_ANALYSES = frozenset({"domtree", "loops", "loopivs", "loopcanon",
                          "fingerprint"})

#: Preserved by passes that change instructions but never the CFG.
#: (``loopcanon`` — the canonical-form verdict memo — is NOT implied:
#: a value-only rewrite can fold an LCSSA phi away, so only passes
#: that provably maintain the form declare it preserved.)
PRESERVE_CFG = frozenset({"domtree", "loops"})

#: Preserved by nothing-changed / attribute-only situations.
PRESERVE_NONE = frozenset()


class LoopIVAnalysis:
    """Memoized induction-variable and trip-count queries for one
    function.

    Keys pin the queried ``Loop``/preheader objects so Python id reuse
    after garbage collection cannot alias two distinct loops.
    """

    def __init__(self, function):
        self.function = function
        self._ivs = {}
        self._trips = {}

    def induction_variable(self, loop, preheader):
        from repro.passes.loop_utils import find_induction_variable
        key = (id(loop), id(preheader))
        hit = self._ivs.get(key)
        if hit is None:
            iv = find_induction_variable(loop, preheader)
            hit = (loop, preheader, iv)
            self._ivs[key] = hit
        return hit[2]

    def trip_count(self, loop, preheader, max_count=4096):
        from repro.passes.loop_utils import constant_trip_count
        key = (id(loop), id(preheader), max_count)
        hit = self._trips.get(key)
        if hit is None:
            result = constant_trip_count(loop, preheader,
                                         max_count=max_count)
            hit = (loop, preheader, result)
            self._trips[key] = hit
        return hit[2]

    def exit_plan(self, loop, preheader, dom, max_iterations=4096):
        """Memoized multi-exit trip simulation (see
        :func:`repro.passes.loop_canon.simulate_exits`)."""
        from repro.passes.loop_canon import simulate_exits
        key = ("plan", id(loop), id(preheader), max_iterations)
        hit = self._trips.get(key)
        if hit is None:
            result = simulate_exits(loop, preheader, dom,
                                    max_iterations=max_iterations)
            hit = (loop, preheader, result)
            self._trips[key] = hit
        return hit[2]

    def counted_bound(self, loop, preheader, dom, max_iterations=4096):
        """Memoized counted-exit trip bound (see
        :func:`repro.passes.loop_canon.counted_exit_bound`)."""
        from repro.passes.loop_canon import counted_exit_bound
        key = ("bound", id(loop), id(preheader), max_iterations)
        hit = self._trips.get(key)
        if hit is None:
            result = counted_exit_bound(loop, preheader, dom,
                                        max_iterations=max_iterations)
            hit = (loop, preheader, result)
            self._trips[key] = hit
        return hit[2]


def domtree_of(function, am=None):
    """The function's dominator tree — cached when ``am`` is given."""
    if am is not None:
        return am.domtree(function)
    return DominatorTree(function)


def loopivs_of(function, am=None):
    """IV/trip-count query memo — cached when ``am`` is given."""
    if am is not None:
        return am.loopivs(function)
    return LoopIVAnalysis(function)


class AnalysisStats:
    """Hit/miss/invalidation counters for one manager."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.preservations = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "preservations": self.preservations,
        }

    def __repr__(self):
        return (f"<AnalysisStats hits={self.hits} misses={self.misses} "
                f"invalidations={self.invalidations}>")


class AnalysisManager:
    """Per-function analysis cache with explicit invalidation.

    Entries are keyed by function identity and hold a strong reference
    to the function, so id reuse cannot alias two functions within the
    manager's lifetime.  ``enabled=False`` turns the manager into a
    pass-through that recomputes every query (the legacy cost model,
    used as the benchmark baseline).
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.stats = AnalysisStats()
        self._entries = {}  # id(function) -> (function, {name: value})
        # Composed module digests (printer.module_fingerprint), dropped
        # whenever any per-function fingerprint changes: exactly as
        # stale as the per-function cache it composes.
        self._module_fps = {}  # id(module) -> (module, digest)

    # -- computation ------------------------------------------------------
    def _compute(self, name, function):
        if name == "domtree":
            return DominatorTree(function)
        if name == "loops":
            return LoopInfo(function, domtree=self.domtree(function))
        if name == "loopivs":
            return LoopIVAnalysis(function)
        if name == "loopcanon":
            from repro.passes.loop_canon import LoopCanonInfo
            return LoopCanonInfo(function)
        if name == "fingerprint":
            from repro.ir.printer import function_fingerprint
            return function_fingerprint(function)
        if name == "callsig":
            from repro.passes.transform_cache import callee_signature
            return callee_signature(function)
        raise KeyError(f"unknown analysis {name!r}")

    def get(self, name, function):
        """The (cached) analysis ``name`` for ``function``."""
        if not self.enabled:
            return self._compute(name, function)
        entry = self._entries.get(id(function))
        if entry is None:
            entry = (function, {})
            self._entries[id(function)] = entry
        cache = entry[1]
        if name in cache:
            self.stats.hits += 1
            return cache[name]
        self.stats.misses += 1
        value = self._compute(name, function)
        cache[name] = value
        return value

    def put(self, name, function, value):
        """Seed an analysis computed elsewhere (e.g. the verifier's
        post-change dominator tree)."""
        if not self.enabled:
            return
        if name == "fingerprint":
            self._module_fps.clear()
        entry = self._entries.get(id(function))
        if entry is None:
            entry = (function, {})
            self._entries[id(function)] = entry
        entry[1][name] = value

    def cached(self, name, function):
        """The cached value, or None (never computes)."""
        entry = self._entries.get(id(function))
        if entry is None:
            return None
        return entry[1].get(name)

    def entries(self):
        """Snapshot of ``(function, {name: value})`` pairs for every
        cached function (read-only view for the preservation auditor)."""
        return [(function, dict(cache))
                for function, cache in self._entries.values()]

    # -- conveniences -----------------------------------------------------
    def domtree(self, function):
        return self.get("domtree", function)

    def loops(self, function):
        return self.get("loops", function)

    def loopivs(self, function):
        return self.get("loopivs", function)

    def loopcanon(self, function):
        return self.get("loopcanon", function)

    def fingerprint(self, function):
        return self.get("fingerprint", function)

    def callee_signature(self, function):
        return self.get("callsig", function)

    # -- module fingerprint memo ------------------------------------------
    def cached_module_fingerprint(self, module):
        hit = self._module_fps.get(id(module))
        return hit[1] if hit is not None else None

    def store_module_fingerprint(self, module, digest):
        if self.enabled:
            self._module_fps[id(module)] = (module, digest)

    # -- invalidation -----------------------------------------------------
    def invalidate(self, function, preserved=PRESERVE_NONE):
        """Drop ``function``'s analyses except the ``preserved`` set.

        ``fingerprint`` is never preservable: a changed function must
        re-fingerprint.
        """
        self._module_fps.clear()
        entry = self._entries.get(id(function))
        if entry is None:
            return
        cache = entry[1]
        for name in list(cache):
            if name in preserved and name != "fingerprint":
                self.stats.preservations += 1
            else:
                del cache[name]
                self.stats.invalidations += 1

    def invalidate_module(self, module, preserved=PRESERVE_NONE):
        """Invalidate every cached function; entries for functions no
        longer in ``module`` (e.g. removed by globaldce) are dropped
        entirely."""
        self._module_fps.clear()
        live = {id(f) for f in module.functions.values()}
        for key in list(self._entries):
            function = self._entries[key][0]
            if key not in live:
                self.stats.invalidations += len(self._entries[key][1])
                del self._entries[key]
            else:
                self.invalidate(function, preserved)

    def drop_analysis(self, name):
        """Drop one analysis for every cached function (used when a
        pass mutates state that OTHER functions' derived analyses — the
        callee signature — observe)."""
        for _, cache in self._entries.values():
            if cache.pop(name, None) is not None:
                self.stats.invalidations += 1

    def forget(self, function):
        """Drop every cached analysis for ``function``."""
        self._module_fps.clear()
        entry = self._entries.pop(id(function), None)
        if entry is not None:
            self.stats.invalidations += len(entry[1])

    def clear(self):
        self._entries.clear()
        self._module_fps.clear()

    def __repr__(self):
        cached = sum(len(e[1]) for e in self._entries.values())
        return (f"<AnalysisManager functions={len(self._entries)} "
                f"analyses={cached} enabled={self.enabled}>")
