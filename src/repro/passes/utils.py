"""Shared analysis and rewriting utilities used across passes.

Includes: constant folding, trivial dead-code collection, a lightweight
alias analysis (identified-object based), and CFG edit helpers.
"""

from repro.errors import SimulationError
from repro.ir import (
    arith,
    AllocaInst,
    BinaryInst,
    CallInst,
    CastInst,
    CondBranchInst,
    ConstantFloat,
    ConstantInt,
    FCmpInst,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
    UndefValue,
)
from repro.ir.types import F64, I1


# -- constant folding --------------------------------------------------------

def fold_binary(opcode, lhs, rhs, type_):
    """Fold a binary op over constants; returns a Constant or None.

    Folding evaluates through :mod:`repro.ir.arith`, the same exact
    semantics the interpreter and simulators execute — a fold must
    never be able to produce a value execution would not.
    """
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        a, b = lhs.value, rhs.value
        if opcode in ("sdiv", "srem") and b == 0:
            return None  # division by zero traps at runtime; don't fold
        try:
            return ConstantInt(type_, arith.eval_int_binop(
                opcode, a, b, type_))
        except SimulationError:
            return None
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        a, b = lhs.value, rhs.value
        if opcode == "fdiv" and b == 0.0:
            return None  # preserve the runtime NaN/inf rules
        try:
            return ConstantFloat(F64, arith.eval_float_binop(opcode, a, b))
        except (OverflowError, SimulationError):
            return None
    return None


def fold_icmp(predicate, lhs, rhs):
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        return ConstantInt(I1, int(arith.icmp(predicate, lhs.value,
                                              rhs.value)))
    return None


def fold_fcmp(predicate, lhs, rhs):
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        return ConstantInt(I1, int(arith.fcmp(predicate, lhs.value,
                                              rhs.value)))
    return None


def fold_cast(opcode, value, source_type, target_type):
    if isinstance(value, ConstantInt):
        v = value.value
        if opcode == "sext":
            return ConstantInt(target_type, v)
        if opcode == "zext":
            mask = (1 << source_type.bits) - 1
            return ConstantInt(target_type, v & mask)
        if opcode == "trunc":
            return ConstantInt(target_type, v)
        if opcode == "sitofp":
            return ConstantFloat(F64, float(v))
    if isinstance(value, ConstantFloat) and opcode == "fptosi":
        return ConstantInt(target_type, arith.fptosi(value.value,
                                                     target_type))
    return None


def fold_instruction(inst):
    """Try to fold ``inst`` to a constant; returns Constant or None."""
    if isinstance(inst, BinaryInst):
        return fold_binary(inst.opcode, inst.lhs, inst.rhs, inst.type)
    if isinstance(inst, ICmpInst):
        return fold_icmp(inst.predicate, inst.operands[0], inst.operands[1])
    if isinstance(inst, FCmpInst):
        return fold_fcmp(inst.predicate, inst.operands[0], inst.operands[1])
    if isinstance(inst, CastInst):
        return fold_cast(inst.opcode, inst.value, inst.value.type, inst.type)
    if isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            chosen = inst.true_value if cond.value else inst.false_value
            if chosen.is_constant():
                return chosen
    return None


# -- dead code ----------------------------------------------------------------

def is_trivially_dead(inst):
    return (not inst.is_used() and not inst.type.is_void()
            and not inst.has_side_effects())


def delete_dead_instructions(function):
    """Iteratively delete unused side-effect-free instructions."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if is_trivially_dead(inst):
                    inst.erase_from_parent()
                    changed = True
                    progress = True
    return changed


# -- alias analysis (lite) ------------------------------------------------------

def underlying_object(pointer):
    """Walk GEP chains to the base object defining a pointer."""
    seen = 0
    while isinstance(pointer, GEPInst) and seen < 100:
        pointer = pointer.base
        seen += 1
    return pointer


def alloca_escapes(alloca):
    """True if the alloca's address may be observed outside the function.

    The address escapes when it is passed to a call or stored into memory.
    GEPs derived from it are tracked transitively.
    """
    worklist = [alloca]
    visited = set()
    while worklist:
        pointer = worklist.pop()
        if id(pointer) in visited:
            continue
        visited.add(id(pointer))
        for user in pointer.users:
            if isinstance(user, GEPInst) and user.base is pointer:
                worklist.append(user)
            elif isinstance(user, CallInst):
                return True
            elif isinstance(user, StoreInst) and user.value is pointer:
                return True
            elif isinstance(user, (PhiInst, SelectInst)):
                worklist.append(user)
    return False


def _is_identified(obj):
    return isinstance(obj, (AllocaInst, GlobalVariable))


def may_alias(p1, p2):
    """Conservative may-alias query for two pointers."""
    if p1 is p2:
        return True
    base1 = underlying_object(p1)
    base2 = underlying_object(p2)
    if _is_identified(base1) and _is_identified(base2):
        if base1 is not base2:
            return False
        return _indices_may_overlap(p1, p2)
    # An identified non-escaping alloca cannot alias an unknown pointer
    # (e.g. a pointer argument).
    for ident, other in ((base1, base2), (base2, base1)):
        if isinstance(ident, AllocaInst) and not _is_identified(other):
            if not alloca_escapes(ident):
                return False
    if _is_identified(base1) != _is_identified(base2):
        return True
    return True


def _indices_may_overlap(p1, p2):
    """Same base object: compare constant GEP indices when available."""
    off1 = _constant_offset(p1)
    off2 = _constant_offset(p2)
    if off1 is not None and off2 is not None:
        return off1 == off2
    return True


def _constant_offset(pointer):
    """Total constant cell offset of a (possibly nested) GEP chain."""
    offset = 0
    while isinstance(pointer, GEPInst):
        index = pointer.index
        if not isinstance(index, ConstantInt):
            return None
        offset += index.value * pointer.type.pointee.size_cells()
        pointer = pointer.base
    return offset


def must_alias(p1, p2):
    """True only when both pointers provably refer to the same cell."""
    if p1 is p2:
        return True
    base1 = underlying_object(p1)
    base2 = underlying_object(p2)
    if base1 is not base2 or not _is_identified(base1):
        return False
    off1 = _constant_offset(p1)
    off2 = _constant_offset(p2)
    return off1 is not None and off1 == off2


def instruction_may_write(inst, pointer):
    """May executing ``inst`` write to the cell(s) behind ``pointer``?"""
    if isinstance(inst, StoreInst):
        return may_alias(inst.pointer, pointer)
    if isinstance(inst, CallInst):
        if not inst.callee_may_access_memory():
            return False
        base = underlying_object(pointer)
        if isinstance(base, AllocaInst) and not alloca_escapes(base):
            # memset/memcpy intrinsics write through their pointer args.
            if inst.is_intrinsic() and inst.callee in ("memset", "memcpy"):
                return any(may_alias(arg, pointer) for arg in inst.args
                           if arg.type.is_pointer())
            return False
        return True
    return False


def instruction_may_read(inst, pointer):
    if isinstance(inst, LoadInst):
        return may_alias(inst.pointer, pointer)
    if isinstance(inst, CallInst):
        if not inst.callee_may_access_memory():
            return False
        base = underlying_object(pointer)
        if isinstance(base, AllocaInst) and not alloca_escapes(base):
            if inst.is_intrinsic() and inst.callee in ("memset", "memcpy"):
                return any(may_alias(arg, pointer) for arg in inst.args
                           if arg.type.is_pointer())
            return False
        return True
    return False


# -- CFG edits -----------------------------------------------------------------

def replace_and_erase(inst, new_value):
    inst.replace_all_uses_with(new_value)
    inst.erase_from_parent()


def remove_block_from_phis(block, successor):
    for phi in successor.phis():
        phi.remove_incoming(block)


def constant_fold_terminator(block):
    """Turn ``condbr const, a, b`` into ``br`` and clean up phis."""
    term = block.terminator()
    if not isinstance(term, CondBranchInst):
        return False
    cond = term.condition
    taken = None
    if isinstance(cond, ConstantInt):
        taken = term.true_target if cond.value else term.false_target
    elif term.true_target is term.false_target:
        taken = term.true_target
    if taken is None:
        return False
    dead = (term.false_target if taken is term.true_target
            else term.true_target)
    from repro.ir.instructions import BranchInst as _Br
    block.set_terminator(_Br(taken))
    if dead is not taken:
        remove_block_from_phis(block, dead)
    return True


def is_pure(inst):
    """Side-effect free, non-memory, non-control instruction."""
    if isinstance(inst, (BinaryInst, ICmpInst, FCmpInst, CastInst,
                         SelectInst, GEPInst)):
        return not inst.has_side_effects()
    if isinstance(inst, CallInst):
        return inst.is_pure_call() and not inst.callee_may_access_memory()
    return False


def value_number_key(inst):
    """Hashable key identifying the computation an instruction performs.

    Commutative operations are canonicalized by sorting operand ids.
    Returns None for instructions that cannot be value-numbered.
    """
    def opkey(value):
        if isinstance(value, ConstantInt):
            return ("ci", value.type.bits, value.value)
        if isinstance(value, ConstantFloat):
            return ("cf", value.value)
        if isinstance(value, UndefValue):
            return ("undef", str(value.type))
        return ("v", id(value))

    if isinstance(inst, BinaryInst):
        ops = [opkey(inst.lhs), opkey(inst.rhs)]
        if inst.is_commutative():
            ops.sort()
        return (inst.opcode, tuple(ops))
    if isinstance(inst, ICmpInst):
        return ("icmp", inst.predicate, opkey(inst.operands[0]),
                opkey(inst.operands[1]))
    if isinstance(inst, FCmpInst):
        return ("fcmp", inst.predicate, opkey(inst.operands[0]),
                opkey(inst.operands[1]))
    if isinstance(inst, CastInst):
        return ("cast", inst.opcode, str(inst.type), opkey(inst.value))
    if isinstance(inst, GEPInst):
        return ("gep", opkey(inst.base), opkey(inst.index))
    if isinstance(inst, SelectInst):
        return ("select", opkey(inst.condition), opkey(inst.true_value),
                opkey(inst.false_value))
    if isinstance(inst, CallInst) and is_pure(inst):
        return ("call", inst.callee_name(),
                tuple(opkey(a) for a in inst.args))
    return None
