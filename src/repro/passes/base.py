"""Pass infrastructure: Pass base classes, the registry of optimization
phases (paper Table VI), and the PassManager that applies sequences.

The execution layer follows LLVM's new pass manager: passes pull
analyses (dominators, loops, IV/trip counts, fingerprints) from an
:class:`repro.passes.analysis.AnalysisManager` instead of rebuilding
them, declare which analyses they preserve, and report *which functions*
they changed so verification and fingerprinting run function-granular.
"""

import os
import time
from collections import OrderedDict

from repro.ir import (
    verify_function,
    verify_function_bookkeeping,
    verify_module,
)
from repro.ir.printer import module_fingerprint, module_text_fingerprint
from repro.passes.analysis import AnalysisManager, PRESERVE_NONE


class VerifiedContents:
    """Bounded LRU set of function fingerprints that passed verification.

    The *content-determined* checks (terminators, operand scope, phis,
    dominance) are pure functions of function content, so a content
    hash that verified once need not re-run them — the same argument
    that justifies the transform cache's one-time snapshot
    verification, generalized to every changed function.  Def-use and
    parent-link bookkeeping is NOT content-determined; memo hits still
    run :func:`repro.ir.verify_function_bookkeeping`.  The legacy mode
    (``analysis_cache=False``) never consults this memo: it re-verifies
    everything, every phase, as the seed did.
    """

    def __init__(self, max_entries=16384):
        self.max_entries = max_entries
        self.hits = 0
        self._entries = OrderedDict()

    def __contains__(self, fingerprint):
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return True
        return False

    def add(self, fingerprint):
        self._entries[fingerprint] = None
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self):
        self._entries.clear()


#: Process-global verification memo (content-addressed, like the
#: transform cache).
VERIFIED_CONTENTS = VerifiedContents()

# name -> factory; populated by @register_pass.
PASS_REGISTRY = {}


def register_pass(name):
    def decorate(cls):
        if name in PASS_REGISTRY:
            raise ValueError(f"duplicate pass name {name!r}")
        PASS_REGISTRY[name] = cls
        cls.pass_name = name
        return cls
    return decorate


def available_phases():
    """Sorted names of all registered optimization phases."""
    return sorted(PASS_REGISTRY)


def create_pass(name):
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown optimization phase {name!r}") from None
    return factory()


class Pass:
    """A module-level transformation.

    Subclasses implement :meth:`run_on_module`; ``run`` returns True when
    the module was changed.  ``preserved_analyses`` names the analyses
    that stay valid across a run that changed code (the fingerprint
    analysis is never preservable).
    """

    pass_name = "<abstract>"
    preserved_analyses = PRESERVE_NONE
    #: True for module passes whose outcomes the module transform cache
    #: may memoize (content-deterministic, replayable as per-function
    #: body swaps): inline, ipsccp, globalopt.
    module_memo = False
    #: function -> snapshot, for changes that came from a
    #: transform-cache materialization in the last run.
    last_materialized = {}

    def run(self, module, am=None):
        """Apply the pass; True when the module changed."""
        if am is None:
            am = AnalysisManager()
        return bool(self.run_with_changes(module, am))

    def run_with_changes(self, module, am):
        """Apply the pass; returns the set of changed functions.

        Module passes cannot attribute their edits, so a change
        conservatively reports (and invalidates) every defined function;
        entries of functions removed from the module are dropped.

        Passes opting into ``module_memo`` are memoized through the
        module transform cache: a module state this pass was already
        observed on either skips the body (known inactive) or replays
        the recorded per-function bodies — then only the replayed
        functions are invalidated and reported.
        """
        from repro.passes.transform_cache import (
            MODULE_TRANSFORM_CACHE,
            module_pass_digest,
        )

        self.last_materialized = {}
        memo = MODULE_TRANSFORM_CACHE if (
            self.module_memo and am.enabled
            and MODULE_TRANSFORM_CACHE.enabled) else None
        key = pre_fingerprints = pre_meta = last_seen = None
        if memo is not None:
            digest, pre_meta = module_pass_digest(module, am)
            key = memo.key(self.pass_name, (digest, pre_meta))
            outcome, payload = memo.apply(key, module, am)
            if outcome is False:
                return set()
            if outcome is True:
                # Replayed: analyses of untouched functions survive
                # (the no-cache run invalidated them too, but analyses
                # only affect speed — the warm-vs-fresh contract).
                am.drop_analysis("callsig")
                if payload:
                    return payload
                return set(module.defined_functions())
            last_seen = payload
            pre_fingerprints = {
                name: (am.fingerprint(function)
                       if not function.is_declaration() else None)
                for name, function in module.functions.items()}
        changed = self.run_on_module(module, am)
        if not changed:
            if memo is not None:
                memo.record(key, module, am, False, pre_fingerprints,
                            pre_meta, last_seen)
            return set()
        am.invalidate_module(module, self.preserved_for(module))
        if memo is not None:
            memo.record(key, module, am, True, pre_fingerprints,
                        pre_meta, last_seen)
        return set(module.defined_functions())

    def run_on_module(self, module, am):
        raise NotImplementedError

    def preserved_for(self, unit):
        """The preservation set for this run (``unit`` is the module or
        function just transformed).  Passes whose preservation depends on
        what actually happened (e.g. sccp only keeps the CFG analyses
        alive when no branch folded) override this."""
        return self.preserved_analyses

    def __repr__(self):
        return f"<Pass {self.pass_name}>"


class FunctionPass(Pass):
    """A pass applied independently to each defined function.

    Applications are memoized through the function-granular transform
    cache: when a function's canonical fingerprint is already cached
    (the fingerprint-driven evaluation loops keep it warm), a content
    hit either skips the pass (known inactive) or materializes the
    cached transformed body instead of re-running the pass algorithm.
    """

    #: True for passes that change state OTHER functions' analyses can
    #: observe (today: function attributes, read by callers' callee
    #: signatures).  Such a change must drop every cached callsig.
    mutates_callee_visible_state = False

    def run_with_changes(self, module, am):
        from repro.passes.transform_cache import TRANSFORM_CACHE

        cache = TRANSFORM_CACHE if (am.enabled and
                                    TRANSFORM_CACHE.enabled) else None
        changed = set()
        self.last_materialized = {}
        for function in module.defined_functions():
            key = None
            if cache is not None:
                fingerprint = am.cached("fingerprint", function)
                if fingerprint is not None:
                    key = cache.key(self.pass_name, fingerprint,
                                    am.callee_signature(function))
                    outcome, snapshot = cache.apply(key, function)
                    if outcome is False:
                        continue  # known inactive: body skipped
                    if outcome is True:
                        # Materialized clone: every analysis (block and
                        # instruction objects included) is new; the
                        # post-transform fingerprint is already known.
                        am.invalidate(function, PRESERVE_NONE)
                        if snapshot.result_fingerprint is not None:
                            am.put("fingerprint", function,
                                   snapshot.result_fingerprint)
                        changed.add(function)
                        self.last_materialized[function] = snapshot
                        continue
            if self.run_on_function(function, am):
                am.invalidate(function, self.preserved_for(function))
                changed.add(function)
                if key is not None:
                    cache.record(key, function, changed=True, am=am)
            elif key is not None:
                cache.record(key, function, changed=False, am=am)
        if changed and self.mutates_callee_visible_state:
            # Callers' cached callee signatures now misrepresent this
            # function's attributes; recompute them on next use.
            am.drop_analysis("callsig")
        return changed

    def run_on_function(self, function, am=None):
        raise NotImplementedError


class PhaseStats:
    """Timing and bookkeeping for one executed phase."""

    __slots__ = ("phase", "seconds", "changed_functions",
                 "verified_functions", "analysis_hits",
                 "analysis_misses", "invalidations")

    def __init__(self, phase, seconds, changed_functions,
                 verified_functions, analysis_hits, analysis_misses,
                 invalidations):
        self.phase = phase
        self.seconds = seconds
        self.changed_functions = changed_functions
        self.verified_functions = verified_functions
        self.analysis_hits = analysis_hits
        self.analysis_misses = analysis_misses
        self.invalidations = invalidations

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (f"<PhaseStats {self.phase} {self.seconds * 1e3:.2f}ms "
                f"changed={self.changed_functions} "
                f"hits={self.analysis_hits} misses={self.analysis_misses}>")


class PassManagerStats:
    """Per-phase timing/invalidation statistics of one manager."""

    def __init__(self):
        self.phases = []

    def record(self, entry):
        self.phases.append(entry)

    def total_seconds(self):
        return sum(entry.seconds for entry in self.phases)

    def as_dict(self):
        return {
            "phases": [entry.as_dict() for entry in self.phases],
            "total_seconds": self.total_seconds(),
        }

    def clear(self):
        self.phases = []


class PassManager:
    """Applies a named sequence of phases to a module.

    With ``verify=True`` (tests construct it this way; the constructor
    default is ``verify=False``) the functions a phase changed are
    verified after that phase, so a miscompiling pass is caught at its
    own doorstep.

    ``analysis_cache=True`` (the default) shares one
    :class:`AnalysisManager` across the sequence: passes reuse cached
    dominator trees / loop nests, and verification plus fingerprinting
    run only on the functions each phase actually modified.
    ``analysis_cache=False`` reproduces the legacy cost model — fresh
    analyses for every query and whole-module verification and
    fingerprints after every phase — and exists as the measured baseline
    for ``benchmarks/test_passmanager.py``.

    Per-phase timing, changed/verified function counts, and analysis
    hit/miss/invalidation counters are collected in ``self.stats``.

    ``audit_analyses=True`` (or the ``REPRO_AUDIT_ANALYSES=1``
    environment variable, consulted when the argument is left ``None``)
    recomputes every still-cached analysis from scratch after each phase
    and raises :class:`repro.passes.audit.AnalysisPreservationError` on
    any divergence — the dynamic check that ``preserved_analyses``
    declarations (statically mandated by replint rule R004) are true.
    Far too slow for production; a dedicated test tier runs it across
    the whole phase registry.
    """

    def __init__(self, verify=False, analysis_cache=True,
                 audit_analyses=None):
        self.verify = verify
        self.analysis_cache = analysis_cache
        if audit_analyses is None:
            audit_analyses = os.environ.get("REPRO_AUDIT_ANALYSES") == "1"
        self.audit_analyses = audit_analyses
        self.stats = PassManagerStats()

    def run(self, module, phase_names, am=None):
        """Run ``phase_names`` in order; returns the list of per-phase
        "changed" booleans (the PSS uses this as its activity signal)."""
        return self._run(module, phase_names, am, fingerprints=False)

    def run_with_fingerprints(self, module, phase_names, am=None):
        """Like :meth:`run` but detects activity via module fingerprints.

        Some phases report "changed" for cosmetic updates; fingerprinting
        after canonical renaming is the ground truth the PSS deployment
        loop uses (paper §III-D).
        """
        return self._run(module, phase_names, am, fingerprints=True)

    # -- shared implementation -------------------------------------------
    def _run(self, module, phase_names, am, fingerprints):
        if am is None:
            am = AnalysisManager(enabled=self.analysis_cache)
        activity = []
        fingerprint = None
        if fingerprints:
            fingerprint = self._fingerprint(module, am)
        for name in phase_names:
            started = time.perf_counter()
            hits0 = am.stats.hits
            misses0 = am.stats.misses
            inval0 = am.stats.invalidations
            phase = create_pass(name)
            changed_functions = phase.run_with_changes(module, am)
            verified = 0
            if self.verify:
                if self.analysis_cache:
                    # Content-addressed verification: a changed function
                    # whose (post-change) fingerprint verified before —
                    # in this module or any other — is not re-verified.
                    # Subsumes the materialized-snapshot fast path.
                    for function in changed_functions:
                        snapshot = phase.last_materialized.get(function)
                        if snapshot is not None and snapshot.verified:
                            continue
                        if function.is_declaration() or \
                                function.module is not module:
                            continue
                        content = am.fingerprint(function)
                        if content in VERIFIED_CONTENTS:
                            # The content-determined checks are served
                            # by the memo; def-use/parent bookkeeping
                            # is NOT content (a fingerprint-identical
                            # function can carry corrupt use lists), so
                            # it is always re-checked.
                            verify_function_bookkeeping(function)
                        else:
                            verify_function(function, am)
                            verified += 1
                            VERIFIED_CONTENTS.add(content)
                        if snapshot is not None:
                            snapshot.verified = True
                else:
                    verify_module(module)
                    verified = len(module.defined_functions())
            if self.audit_analyses:
                from repro.passes.audit import audit_preservation
                audit_preservation(module, am, name)
            if fingerprints:
                new_fingerprint = self._fingerprint(module, am)
                activity.append(new_fingerprint != fingerprint)
                fingerprint = new_fingerprint
            else:
                activity.append(bool(changed_functions))
            self.stats.record(PhaseStats(
                phase=name,
                seconds=time.perf_counter() - started,
                changed_functions=len(changed_functions),
                verified_functions=verified,
                analysis_hits=am.stats.hits - hits0,
                analysis_misses=am.stats.misses - misses0,
                invalidations=am.stats.invalidations - inval0,
            ))
        return activity

    def _fingerprint(self, module, am):
        if self.analysis_cache:
            return module_fingerprint(module, am)
        # Legacy cost model: the seed's print-then-hash fingerprint.
        return module_text_fingerprint(module)
