"""Pass infrastructure: Pass base classes, the registry of optimization
phases (paper Table VI), and the PassManager that applies sequences.
"""

from repro.ir import verify_module
from repro.ir.printer import module_fingerprint

# name -> factory; populated by @register_pass.
PASS_REGISTRY = {}


def register_pass(name):
    def decorate(cls):
        if name in PASS_REGISTRY:
            raise ValueError(f"duplicate pass name {name!r}")
        PASS_REGISTRY[name] = cls
        cls.pass_name = name
        return cls
    return decorate


def available_phases():
    """Sorted names of all registered optimization phases."""
    return sorted(PASS_REGISTRY)


def create_pass(name):
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown optimization phase {name!r}") from None
    return factory()


class Pass:
    """A module-level transformation.  ``run`` returns True when the module
    was changed."""

    pass_name = "<abstract>"

    def run(self, module):
        raise NotImplementedError

    def __repr__(self):
        return f"<Pass {self.pass_name}>"


class FunctionPass(Pass):
    """A pass applied independently to each defined function."""

    def run(self, module):
        changed = False
        for function in module.defined_functions():
            if self.run_on_function(function):
                changed = True
        return changed

    def run_on_function(self, function):
        raise NotImplementedError


class PassManager:
    """Applies a named sequence of phases to a module.

    With ``verify=True`` (the default in tests) the module is verified after
    every phase so a miscompiling pass is caught at its own doorstep.
    """

    def __init__(self, verify=False):
        self.verify = verify

    def run(self, module, phase_names):
        """Run ``phase_names`` in order; returns the list of per-phase
        "changed" booleans (the PSS uses this as its activity signal)."""
        activity = []
        for name in phase_names:
            phase = create_pass(name)
            changed = bool(phase.run(module))
            if self.verify:
                verify_module(module)
            activity.append(changed)
        return activity

    def run_with_fingerprints(self, module, phase_names):
        """Like :meth:`run` but detects activity via module fingerprints.

        Some phases report "changed" for cosmetic updates; fingerprinting
        after canonical renaming is the ground truth the PSS deployment
        loop uses (paper §III-D).
        """
        activity = []
        fingerprint = module_fingerprint(module)
        for name in phase_names:
            create_pass(name).run(module)
            if self.verify:
                verify_module(module)
            new_fingerprint = module_fingerprint(module)
            activity.append(new_fingerprint != fingerprint)
            fingerprint = new_fingerprint
        return activity
