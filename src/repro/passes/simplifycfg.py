"""simplifycfg: CFG cleanup.

Folds constant branches, removes unreachable blocks, merges straight-line
block chains, skips empty forwarding blocks, collapses trivial phis, and
if-converts small diamonds into selects.
"""

from repro.ir import (
    BranchInst,
    CondBranchInst,
    SelectInst,
)
from repro.ir.cfg import reachable_blocks
from repro.passes.base import FunctionPass, register_pass
from repro.passes.utils import (
    constant_fold_terminator,
    remove_block_from_phis,
)


@register_pass("simplifycfg")
class SimplifyCFG(FunctionPass):
    # CFG restructuring: preserves nothing (the default).

    def run_on_function(self, function, am=None):
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= self._fold_constant_branches(function)
            progress |= self._remove_unreachable(function)
            progress |= self._collapse_trivial_phis(function)
            progress |= self._merge_chains(function)
            progress |= self._skip_forwarding_blocks(function)
            progress |= self._diamond_to_select(function)
            changed |= progress
        return changed

    @staticmethod
    def _fold_constant_branches(function):
        changed = False
        for block in function.blocks:
            changed |= constant_fold_terminator(block)
        return changed

    @staticmethod
    def _remove_unreachable(function):
        reachable = reachable_blocks(function)
        dead = [b for b in function.blocks if b not in reachable]
        if not dead:
            return False
        dead_set = set(dead)
        for block in dead:
            for succ in block.successors():
                if succ not in dead_set:
                    remove_block_from_phis(block, succ)
        for block in dead:
            # Break def-use links into the live region first.
            for inst in list(block.instructions):
                from repro.ir import UndefValue
                if not inst.type.is_void() and inst.is_used():
                    inst.replace_all_uses_with(UndefValue(inst.type))
            block.remove_from_parent()
        return True

    @staticmethod
    def _collapse_trivial_phis(function):
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                preds = block.predecessors()
                for phi in list(block.phis()):
                    if len(preds) == 1 and len(phi.operands) == 1:
                        phi.replace_all_uses_with(phi.operands[0])
                        phi.erase_from_parent()
                        progress = True
                        continue
                    values = [v for v in phi.operands if v is not phi]
                    if values and all(v is values[0] for v in values):
                        phi.replace_all_uses_with(values[0])
                        phi.erase_from_parent()
                        progress = True
            changed |= progress
        return changed

    @staticmethod
    def _merge_chains(function):
        """Merge ``a -> b`` when a's only successor is b and b's only
        predecessor is a."""
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(function.blocks):
                term = block.terminator()
                if not isinstance(term, BranchInst):
                    continue
                succ = term.target
                if succ is block or succ is function.entry:
                    continue
                if len(succ.predecessors()) != 1:
                    continue
                # Fold phis in succ (single predecessor).
                for phi in list(succ.phis()):
                    phi.replace_all_uses_with(phi.incoming_value_for(block))
                    phi.erase_from_parent()
                term.erase_from_parent()
                after_blocks = succ.successors()
                for inst in list(succ.instructions):
                    succ.instructions.remove(inst)
                    block.append(inst)
                for after in after_blocks:
                    for phi in after.phis():
                        phi.replace_incoming_block(succ, block)
                succ.parent = None
                function.blocks.remove(succ)
                progress = True
                changed = True
                break
        return changed

    @staticmethod
    def _skip_forwarding_blocks(function):
        """Rewire predecessors around empty blocks that just ``br`` on."""
        changed = False
        for block in list(function.blocks):
            if block is function.entry:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator()
            if not isinstance(term, BranchInst):
                continue
            target = term.target
            if target is block:
                continue
            # Safe only if target's phis can absorb the rewire: for each
            # predecessor P of block, target must not already have P as a
            # predecessor (else phi would need two entries with possibly
            # different values), unless target has no phis.
            preds = block.predecessors()
            if not preds:
                continue
            target_preds = target.predecessors()
            if target.phis():
                if any(p in target_preds for p in preds):
                    continue
            for pred in preds:
                pred.terminator().replace_successor(block, target)
                for phi in target.phis():
                    phi.add_incoming(phi.incoming_value_for(block), pred)
            for phi in target.phis():
                phi.remove_incoming(block)
            block.remove_from_parent()
            changed = True
        return changed

    @staticmethod
    def _diamond_to_select(function):
        """If-convert diamonds/triangles whose arms are empty.

        ``if (c) x = a; else x = b;`` after mem2reg becomes a diamond whose
        arms hold no instructions and a phi at the join — convert the phi
        into a select and fold the branch.
        """
        changed = False
        for block in list(function.blocks):
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            true_block, false_block = term.true_target, term.false_target
            if true_block is false_block:
                continue

            def is_empty_forward(candidate, join):
                return (len(candidate.instructions) == 1
                        and isinstance(candidate.terminator(), BranchInst)
                        and candidate.terminator().target is join
                        and candidate.predecessors() == [block])

            join = None
            arm_true = arm_false = None
            # Diamond: block -> t -> join, block -> f -> join.
            if (isinstance(true_block.terminator(), BranchInst)
                    and isinstance(false_block.terminator(), BranchInst)
                    and true_block.terminator().target
                    is false_block.terminator().target):
                join = true_block.terminator().target
                if not (is_empty_forward(true_block, join)
                        and is_empty_forward(false_block, join)):
                    continue
                arm_true, arm_false = true_block, false_block
            # Triangle: block -> t -> join, block -> join.
            elif (isinstance(true_block.terminator(), BranchInst)
                    and true_block.terminator().target is false_block):
                join = false_block
                if not is_empty_forward(true_block, join):
                    continue
                arm_true, arm_false = true_block, block
            elif (isinstance(false_block.terminator(), BranchInst)
                    and false_block.terminator().target is true_block):
                join = true_block
                if not is_empty_forward(false_block, join):
                    continue
                arm_true, arm_false = block, false_block
            else:
                continue
            if join is block or not join.phis():
                continue
            join_preds = join.predecessors()
            if sorted(map(id, join_preds)) != sorted(
                    map(id, {id(arm_true): arm_true,
                             id(arm_false): arm_false}.values())):
                continue
            condition = term.condition
            insert_at = block.instructions.index(term)
            for phi in list(join.phis()):
                tv = phi.incoming_value_for(arm_true)
                fv = phi.incoming_value_for(arm_false)
                if tv is fv:
                    phi.replace_all_uses_with(tv)
                    phi.erase_from_parent()
                    continue
                select = SelectInst(condition, tv, fv,
                                    function.next_name("sel"))
                block.insert(insert_at, select)
                insert_at += 1
                phi.replace_all_uses_with(select)
                phi.erase_from_parent()
            term.erase_from_parent()
            block.append(BranchInst(join))
            for arm in (arm_true, arm_false):
                if arm is not block:
                    arm.remove_from_parent()
            changed = True
        return changed
