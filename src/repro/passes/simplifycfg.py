"""simplifycfg: CFG cleanup.

Folds constant branches, removes unreachable blocks, merges straight-line
block chains, skips empty forwarding blocks, collapses trivial phis, and
if-converts small diamonds into selects.

Two execution engines share the per-block rewrite rules:

- the **dirty-block engine** (default): keeps the seed's round
  structure but each round only visits blocks marked by the previous
  round's rewrites (the touched block, blocks whose predecessor sets
  changed, users of collapsed phis);
- the **rescan engine** (``PassManager(analysis_cache=False)``): the
  seed's ``while progress: apply every rule to every block`` loop, kept
  as the measured legacy cost-model baseline.

Every guard query reads the IR-maintained predecessor links
(``Block.predecessors()`` is O(preds)), so neither engine rebuilds a
predecessors map after CFG edits — the per-round O(V+E) rebuild this
pass historically paid is gone with the stale-map hazard it carried.

Both engines apply the same rules in the same order and are
bit-identical on the differential corpus
(``tests/passes/test_worklist_vs_rescan.py``).
"""

from repro.ir import (
    BranchInst,
    CondBranchInst,
    SelectInst,
)
from repro.ir.cfg import reachable_blocks
from repro.passes.analysis import PRESERVE_NONE
from repro.passes.base import FunctionPass, register_pass
from repro.passes.utils import (
    constant_fold_terminator,
    remove_block_from_phis,
)
from repro.passes.worklist import CFGWorklist, use_worklist


@register_pass("simplifycfg")
class SimplifyCFG(FunctionPass):
    # CFG restructuring: preserves nothing.
    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        if not use_worklist(am):
            return self._run_rescan(function)
        return self._run_worklist(function)

    # -- dirty-block engine -----------------------------------------------
    def _run_worklist(self, function):
        """The rescan engine's round structure, restricted per round to
        the blocks the previous round's rewrites could have affected.

        Rule order, intra-rule iteration order, and each rule's
        fixpoint shape match ``_run_rescan`` exactly; only the clean
        blocks — where no rule can newly fire — are skipped, so the two
        engines apply the same rewrites in the same order and converge
        to bit-identical IR (differential-tested for every pass).
        """
        changed = False
        dirty = None  # marked ids from the previous round; None = all
        while True:
            marks = CFGWorklist()
            if dirty is not None and not dirty:
                break
            progress = False

            def is_dirty(block, dirty=dirty, marks=marks):
                return (dirty is None or id(block) in dirty
                        or id(block) in marks.ids)

            # 1. Fold constant branches; a removed edge changes the dead
            #    target's predecessor set (and can orphan a region).
            folded = False
            for block in function.blocks:
                if not is_dirty(block):
                    continue
                before = block.successors()
                if constant_fold_terminator(block):
                    folded = True
                    marks.add(block)
                    after = set(block.successors())
                    for succ in before:
                        if succ not in after:
                            marks.add_pred_change(succ)
            progress |= folded

            # 2. Remove unreachable blocks (round 1 also clears dead
            #    blocks left by earlier passes, as the rescan does).
            if folded or dirty is None:
                if self._remove_unreachable(function, marks):
                    progress = True

            # 3. Collapse trivial phis to a cross-block fixpoint.
            collapsing = True
            while collapsing:
                collapsing = False
                for block in function.blocks:
                    if not is_dirty(block):
                        continue
                    if self._collapse_phis_at(block, marks):
                        collapsing = True
                progress |= collapsing

            # 4. Merge chains: first dirty mergeable block in list
            #    order, restart after each merge (the rescan's shape).
            merging = True
            while merging:
                merging = False
                for block in list(function.blocks):
                    if block.parent is None or not is_dirty(block):
                        continue
                    if self._merge_chain_at(block, marks):
                        merging = True
                        progress = True
                        break

            # 5. Skip empty forwarding blocks (one sweep per round).
            for block in list(function.blocks):
                if block.parent is None or not is_dirty(block):
                    continue
                if self._skip_forwarding_at(block, marks):
                    progress = True

            # 6. If-convert empty diamonds (one sweep per round).
            for block in list(function.blocks):
                if block.parent is None or not is_dirty(block):
                    continue
                if self._diamond_at(block, marks):
                    progress = True

            changed |= progress
            if not progress:
                break
            dirty = marks.ids
        return changed

    # -- rescan engine (legacy cost model) --------------------------------
    def _run_rescan(self, function):
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= self._fold_constant_branches(function)
            progress |= self._remove_unreachable(function)
            progress |= self._collapse_trivial_phis(function)
            progress |= self._merge_chains(function)
            progress |= self._skip_forwarding_blocks(function)
            progress |= self._diamond_to_select(function)
            changed |= progress
        return changed

    @staticmethod
    def _fold_constant_branches(function):
        changed = False
        for block in function.blocks:
            changed |= constant_fold_terminator(block)
        return changed

    @staticmethod
    def _remove_unreachable(function, worklist=None):
        reachable = reachable_blocks(function)
        dead = [b for b in function.blocks if b not in reachable]
        if not dead:
            return False
        dead_set = set(dead)
        # Ordered dedup: the worklist below seeds from this, and seeding
        # order must not depend on block object addresses.
        survivors = []
        survivor_set = set()
        for block in dead:
            for succ in block.successors():
                if succ not in dead_set:
                    remove_block_from_phis(block, succ)
                    if succ not in survivor_set:
                        survivor_set.add(succ)
                        survivors.append(succ)
        for block in dead:
            # Break def-use links into the live region first.
            for inst in list(block.instructions):
                from repro.ir import UndefValue
                if not inst.type.is_void() and inst.is_used():
                    inst.replace_all_uses_with(UndefValue(inst.type))
            block.remove_from_parent()
        if worklist is not None:
            for succ in survivors:
                worklist.add_pred_change(succ)
        return True

    # -- per-block rules (shared by both engines) -------------------------
    @staticmethod
    def _collapse_phis_at(block, worklist=None):
        """Collapse trivial phis of one block."""
        changed = False
        preds = block.predecessors()
        for phi in list(block.phis()):
            value = None
            if len(preds) == 1 and len(phi.operands) == 1:
                value = phi.operands[0]
            else:
                values = [v for v in phi.operands if v is not phi]
                if values and all(v is values[0] for v in values):
                    value = values[0]
            if value is None:
                continue
            if worklist is not None:
                worklist.add(block)
                # A phi user elsewhere may have just become trivial (or
                # a condbr condition constant).
                for user in phi.users:
                    if user.parent is not None:
                        worklist.add(user.parent)
            phi.replace_all_uses_with(value)
            phi.erase_from_parent()
            changed = True
        return changed

    @staticmethod
    def _collapse_trivial_phis(function):
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                progress |= SimplifyCFG._collapse_phis_at(block)
            changed |= progress
        return changed

    @staticmethod
    def _merge_chain_at(block, worklist=None):
        """Merge ``block -> succ`` when block's only successor is succ
        and succ's only predecessor is block."""
        function = block.parent
        if function is None:
            return False
        term = block.terminator()
        if not isinstance(term, BranchInst):
            return False
        succ = term.target
        if succ is block or succ is function.entry:
            return False
        if len(succ.predecessors()) != 1:
            return False
        # Fold phis in succ (single predecessor).
        for phi in list(succ.phis()):
            phi.replace_all_uses_with(phi.incoming_value_for(block))
            phi.erase_from_parent()
        term.erase_from_parent()
        after_blocks = succ.successors()
        # Move succ's body (terminator included) into block; the
        # after-blocks' maintained predecessor switches from succ to
        # block as the terminator moves.
        block.take_instructions_from(succ)
        for after in after_blocks:
            for phi in after.phis():
                phi.replace_incoming_block(succ, block)
        function.remove_block(succ)
        if worklist is not None:
            worklist.add(block)  # may merge again / expose a diamond
            for after in after_blocks:
                worklist.add_pred_change(after)
        return True

    @staticmethod
    def _merge_chains(function):
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(function.blocks):
                if SimplifyCFG._merge_chain_at(block):
                    progress = True
                    changed = True
                    break
        return changed

    @staticmethod
    def _skip_forwarding_at(block, worklist=None):
        """Rewire predecessors around ``block`` when it is an empty
        block that just ``br``'s on."""
        function = block.parent
        if function is None:
            return False
        if block is function.entry:
            return False
        if len(block.instructions) != 1:
            return False
        term = block.terminator()
        if not isinstance(term, BranchInst):
            return False
        target = term.target
        if target is block:
            return False
        # Safe only if target's phis can absorb the rewire: for each
        # predecessor P of block, target must not already have P as a
        # predecessor (else phi would need two entries with possibly
        # different values), unless target has no phis.
        preds = block.predecessors()
        if not preds:
            return False
        target_preds = target.predecessors()
        if target.phis():
            if any(p in target_preds for p in preds):
                return False
        for pred in preds:
            pred.terminator().replace_successor(block, target)
        for phi in target.phis():
            # Splice the rewired entries where the forwarded entry sat,
            # so the resulting incoming order does not depend on when
            # this rule fires (the two engines reach it at different
            # times; appending would leave order-divergent phis).
            pairs = []
            for value, incoming in zip(phi.operands,
                                       phi.incoming_blocks):
                if incoming is block:
                    pairs.extend((value, pred) for pred in preds)
                else:
                    pairs.append((value, incoming))
            phi.drop_all_references()
            phi.incoming_blocks = []
            for value, incoming in pairs:
                phi.add_incoming(value, incoming)
        block.remove_from_parent()
        if worklist is not None:
            worklist.add_pred_change(target)
        return True

    @staticmethod
    def _skip_forwarding_blocks(function):
        changed = False
        for block in list(function.blocks):
            changed |= SimplifyCFG._skip_forwarding_at(block)
        return changed

    @staticmethod
    def _diamond_at(block, worklist=None):
        """If-convert a diamond/triangle branching at ``block`` whose
        arms are empty.

        ``if (c) x = a; else x = b;`` after mem2reg becomes a diamond
        whose arms hold no instructions and a phi at the join — convert
        the phi into a select and fold the branch.
        """
        function = block.parent
        if function is None:
            return False
        term = block.terminator()
        if not isinstance(term, CondBranchInst):
            return False
        true_block, false_block = term.true_target, term.false_target
        if true_block is false_block:
            return False

        def is_empty_forward(candidate, join):
            return (len(candidate.instructions) == 1
                    and isinstance(candidate.terminator(), BranchInst)
                    and candidate.terminator().target is join
                    and candidate.predecessors() == [block])

        join = None
        arm_true = arm_false = None
        # Diamond: block -> t -> join, block -> f -> join.
        if (isinstance(true_block.terminator(), BranchInst)
                and isinstance(false_block.terminator(), BranchInst)
                and true_block.terminator().target
                is false_block.terminator().target):
            join = true_block.terminator().target
            if not (is_empty_forward(true_block, join)
                    and is_empty_forward(false_block, join)):
                return False
            arm_true, arm_false = true_block, false_block
        # Triangle: block -> t -> join, block -> join.
        elif (isinstance(true_block.terminator(), BranchInst)
                and true_block.terminator().target is false_block):
            join = false_block
            if not is_empty_forward(true_block, join):
                return False
            arm_true, arm_false = true_block, block
        elif (isinstance(false_block.terminator(), BranchInst)
                and false_block.terminator().target is true_block):
            join = true_block
            if not is_empty_forward(false_block, join):
                return False
            arm_true, arm_false = block, false_block
        else:
            return False
        if join is block or not join.phis():
            return False
        join_preds = join.predecessors()
        if sorted(map(id, join_preds)) != sorted(
                map(id, {id(arm_true): arm_true,
                         id(arm_false): arm_false}.values())):
            return False
        condition = term.condition
        insert_at = block.instructions.index(term)
        for phi in list(join.phis()):
            tv = phi.incoming_value_for(arm_true)
            fv = phi.incoming_value_for(arm_false)
            if tv is fv:
                phi.replace_all_uses_with(tv)
                phi.erase_from_parent()
                continue
            select = SelectInst(condition, tv, fv,
                                function.next_name("sel"))
            block.insert(insert_at, select)
            insert_at += 1
            phi.replace_all_uses_with(select)
            phi.erase_from_parent()
        block.set_terminator(BranchInst(join))
        for arm in (arm_true, arm_false):
            if arm is not block:
                arm.remove_from_parent()
        if worklist is not None:
            worklist.add(block)  # now a straight branch: may merge
            worklist.add_pred_change(join)
        return True

    @staticmethod
    def _diamond_to_select(function):
        changed = False
        for block in list(function.blocks):
            if block.parent is None:
                continue
            changed |= SimplifyCFG._diamond_at(block)
        return changed
