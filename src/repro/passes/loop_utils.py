"""Shared machinery for loop passes: loop-simplify (preheader insertion),
invariance tests, canonical induction-variable and trip-count analysis.
"""

from repro.ir import (
    BinaryInst,
    BranchInst,
    CondBranchInst,
    ConstantInt,
    ICmpInst,
    Instruction,
    LoopInfo,
    PhiInst,
)
from repro.passes.utils import is_pure


def ensure_preheader_tracked(function, loop):
    """Like :func:`ensure_preheader` but also reports creation.

    Returns ``(preheader, created)`` — ``created`` is True only when a
    new block was inserted (a CFG change the calling pass must report
    and invalidate for, even if it then transforms nothing else).
    """
    existing = loop.preheader()
    if existing is not None:
        return existing, False
    preheader = ensure_preheader(function, loop)
    return preheader, preheader is not None


def ensure_preheader(function, loop):
    """Create (or return) a dedicated preheader block for ``loop``.

    All out-of-loop predecessors of the header are redirected through a
    fresh block ending in an unconditional branch to the header.
    """
    existing = loop.preheader()
    if existing is not None:
        return existing
    header = loop.header
    outside = [p for p in header.predecessors() if p not in loop.blocks]
    if not outside:
        return None
    preheader = function.append_block(function.next_name("preheader"))
    # Keep block order roughly topological: place before the header.
    preheader.insert_before(header)
    for pred in outside:
        pred.terminator().replace_successor(header, preheader)
    # Split phi incoming values: out-of-loop entries move to new phis in
    # the preheader (or single value when only one outside pred).
    for phi in header.phis():
        outside_pairs = [(v, b) for v, b in phi.incoming() if b in outside]
        if not outside_pairs:
            continue
        if len(outside_pairs) == 1:
            merged = outside_pairs[0][0]
        else:
            merged = PhiInst(phi.type, function.next_name("ph"))
            preheader.insert(0, merged)
            for value, block in outside_pairs:
                merged.add_incoming(value, block)
        inside_pairs = [(v, b) for v, b in phi.incoming()
                        if b not in outside]
        phi.drop_all_references()
        phi.incoming_blocks = []
        phi.add_incoming(merged, preheader)
        for value, block in inside_pairs:
            phi.add_incoming(value, block)
    preheader.append(BranchInst(header))
    return preheader


def is_loop_invariant(value, loop):
    """True when ``value`` does not change within the loop."""
    if not isinstance(value, Instruction):
        return True
    return value.parent not in loop.blocks


def invariant_operands(inst, loop):
    return all(is_loop_invariant(op, loop) for op in inst.operands)


class InductionVariable:
    """A canonical affine IV: ``phi = [start, preheader], [phi + step,
    latch]`` with a constant step."""

    def __init__(self, phi, start, step, update):
        self.phi = phi
        self.start = start      # Value (loop-invariant)
        self.step = step        # int (constant step)
        self.update = update    # the add instruction in the latch chain


def _look_through_copies(value, depth=4):
    """Follow single-incoming (pass-through) phis to the real value."""
    while depth > 0 and isinstance(value, PhiInst) \
            and len(value.operands) == 1:
        value = value.operands[0]
        depth -= 1
    return value


def find_induction_variables(loop, preheader):
    """Every canonical IV of the loop, in header-phi order.

    Two-counter loops (``for (i...; j...)`` shapes) carry one entry
    per independent counter; :func:`find_induction_variable` returns
    the first (the loop's primary IV)."""
    latches = loop.latches()
    if len(latches) != 1:
        return []
    latch = latches[0]
    result = []
    for phi in loop.header.phis():
        try:
            start = phi.incoming_value_for(preheader)
            update = _look_through_copies(
                phi.incoming_value_for(latch))
        except KeyError:
            continue
        if not isinstance(update, BinaryInst) or update.opcode != "add":
            continue
        if update.parent not in loop.blocks:
            continue
        step = None
        if update.lhs is phi and isinstance(update.rhs, ConstantInt):
            step = update.rhs.value
        elif update.rhs is phi and isinstance(update.lhs, ConstantInt):
            step = update.lhs.value
        if step is None or step == 0:
            continue
        if not is_loop_invariant(start, loop):
            continue
        result.append(InductionVariable(phi, start, step, update))
    return result


def find_induction_variable(loop, preheader):
    """Find the loop's primary canonical IV, or None."""
    ivs = find_induction_variables(loop, preheader)
    return ivs[0] if ivs else None


def constant_trip_count(loop, preheader, max_count=4096):
    """Compute the exact trip count when the loop is a canonical counted
    loop ``for (i = C0; i < C1; i += C2)`` with a single exit through the
    header (rotated forms with the compare in the latch are also handled).

    Returns (trip_count, iv) or (None, None).
    """
    iv = find_induction_variable(loop, preheader)
    if iv is None or not isinstance(iv.start, ConstantInt):
        return None, None
    exiting = loop.exiting_blocks()
    if len(exiting) != 1:
        return None, None
    exit_block = exiting[0]
    term = exit_block.terminator()
    if not isinstance(term, CondBranchInst):
        return None, None
    condition = term.condition
    if not isinstance(condition, ICmpInst):
        return None, None
    lhs, rhs = condition.operands
    # Identify "iv-expression" vs bound.  Accept the phi itself or its
    # update instruction (rotated loops compare i+step).
    candidates = {id(iv.phi): 0, id(iv.update): iv.step}
    if id(lhs) in candidates and isinstance(rhs, ConstantInt):
        offset = candidates[id(lhs)]
        predicate = condition.predicate
        bound = rhs.value
    elif id(rhs) in candidates and isinstance(lhs, ConstantInt):
        offset = candidates[id(rhs)]
        from repro.ir.instructions import ICMP_SWAP
        predicate = ICMP_SWAP[condition.predicate]
        bound = lhs.value
    else:
        return None, None
    stays_in_loop = term.true_target in loop.blocks
    if not stays_in_loop and term.false_target in loop.blocks:
        from repro.ir.instructions import ICMP_NEGATE
        predicate = ICMP_NEGATE[predicate]
    elif not stays_in_loop:
        return None, None
    latches = loop.latches()
    single_latch = latches[0] if len(latches) == 1 else None
    # Bottom-tested iff the iteration's body (specifically the IV update)
    # has executed when the exit test runs: exit at the latch, or exit at
    # a header that itself contains the update (rotated single-block
    # shapes).  A genuine top-tested loop exits at the header before the
    # update runs.
    if single_latch is not None and exit_block is single_latch:
        bottom_tested = True
    elif exit_block is loop.header:
        bottom_tested = iv.update.parent is exit_block
    else:
        return None, None
    # Simulate the counter (bounded): robust against off-by-one pitfalls
    # and non-divisible ranges, and exact by construction.  ``value``
    # tracks the phi at the top of each iteration; the compare sees
    # ``value + offset`` (offset == step when the test compares the
    # already-updated IV).
    value = iv.start.value
    compare = {"slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
               "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
               "ne": lambda a, b: a != b, "eq": lambda a, b: a == b}
    test = compare[predicate]
    count = 1 if bottom_tested else 0
    while test(value + offset, bound):
        count += 1
        value += iv.step
        if count > max_count:
            return None, None
    return count, iv


def loops_of(function, am=None):
    """The function's loop nest — from the analysis manager's cache when
    one is supplied, freshly computed otherwise."""
    if am is not None:
        return am.loops(function)
    return LoopInfo(function)


def loop_values_escape(loop):
    """True when any value computed inside ``loop`` is used outside it
    (the safety bail shared by loop-deletion and loop-idiom: a deleted
    loop must leave no dangling consumers)."""
    for block in loop.ordered_blocks():
        for inst in block.instructions:
            for user in inst.users:
                if user.parent not in loop.blocks:
                    return True
    return False


def exit_phis_reference_loop(exit_blocks, loop):
    """True when a phi in any of ``exit_blocks`` carries an entry from
    a loop block — deleting the loop would orphan that entry."""
    for exit_block in exit_blocks:
        for phi in exit_block.phis():
            if any(b in loop.blocks for b in phi.incoming_blocks):
                return True
    return False


def loop_body_is_pure(loop):
    """No stores/calls and no instructions that may trap."""
    for block in loop.ordered_blocks():
        for inst in block.instructions:
            if inst.is_terminator():
                continue
            if isinstance(inst, PhiInst):
                continue
            if not is_pure(inst):
                return False
    return True
