"""Function-granular transform cache: content-addressed reuse of
FunctionPass results.

The compile→profile loop applies thousands of phase sequences to the
same workloads; sequences share prefixes and converge, so the same
(pass, function-content) pair is evaluated over and over.  A
``FunctionPass`` is a deterministic function of its function's content
(plus the purity attributes of called functions, folded into the cache
key), so its outcome can be cached:

- an *inactive* outcome (``run_on_function`` returned False, which by
  the pass contract means "did not mutate") lets a later identical
  application skip the pass body entirely;
- an *active* outcome stores a detached snapshot of the transformed
  body; a later identical application materializes the snapshot (a
  plain clone) instead of re-running the pass algorithm.

Materialized output equals the pass's own output up to local value
names, which the canonical fingerprint normalizes away — activity bits,
fingerprints and behaviour are bit-identical either way (enforced by
the differential suite).  Any doubt during snapshot or materialization
(function-pointer operands, missing global/callee names in the target
module, signature drift) falls back to simply running the pass.

The cache is process-global (content-addressed keys are module- and
session-independent), bounded LRU, and disabled whenever the calling
AnalysisManager is disabled (the legacy cost model) or via
``TRANSFORM_CACHE.enabled``.
"""

import threading
from collections import OrderedDict

from repro.ir.function import Function
from repro.ir.instructions import CallInst, PhiInst
from repro.ir.values import (
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)

_INACTIVE = "inactive"
_SEEN_ACTIVE = "seen-active"


def _fix_forward_references(shell, value_map):
    _fix_forward_references_blocks(shell.blocks, value_map)


def _fix_forward_references_blocks(blocks, value_map):
    """Rewrite operands that still reference origin values (forward
    references cloned before their defs existed) through the completed
    value map."""
    for block in blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                mapped = value_map.get(id(op))
                if mapped is not None and mapped is not op:
                    inst.set_operand(index, mapped)


def callee_signature(function):
    """Everything a FunctionPass may read about OTHER functions: the
    purity attributes of each non-intrinsic callee.  Part of the cache
    key so two content-identical functions whose callees differ in
    attributes never share an entry."""
    signature = set()
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, CallInst) and not inst.is_intrinsic():
                callee = inst.callee
                signature.add((callee.name, callee.is_pure,
                               callee.accesses_memory,
                               tuple(sorted(callee.attributes))))
    return tuple(sorted(signature))


class FunctionSnapshot:
    """A detached copy of a transformed function body.

    Globals and constants are replaced by placeholders so the snapshot
    never appears in any live module's use lists; callees are recorded
    by name.  ``materialize`` clones the snapshot into a target function
    of a (content-identical) module, remapping placeholders to the
    target module's objects by name.
    """

    def __init__(self, shell, arg_count, global_names, callee_names):
        self.shell = shell
        self.arg_count = arg_count
        self.global_names = global_names    # name -> placeholder
        self.callee_names = callee_names    # name -> placeholder shell
        self.result_fingerprint = None      # canonical post-state hash
        self.verified = False               # passed verify_function once
        # Cloning temporarily registers forward-reference uses on the
        # shell's instructions; concurrent materializations (thread-mode
        # evaluation) must not interleave those use-list edits.
        self._lock = threading.Lock()

    # -- capture ----------------------------------------------------------
    @classmethod
    def capture(cls, function):
        """Snapshot ``function``'s current body, or None when the body
        holds something the snapshot cannot make module-independent."""
        from repro.passes.cloning import clone_instruction

        value_map = {}
        global_names = {}
        callee_names = {}
        for block in function.blocks:
            for inst in block.instructions:
                for op in inst.operands:
                    if isinstance(op, GlobalVariable):
                        if id(op) not in value_map:
                            placeholder = GlobalVariable(
                                op.name, op.value_type, op.initializer,
                                op.is_constant_global)
                            value_map[id(op)] = placeholder
                            global_names[op.name] = placeholder
                    elif isinstance(op, Function):
                        return None  # function-pointer-ish operand
        shell = Function(function.name, function.ftype)
        shell.is_pure = function.is_pure
        shell.accesses_memory = function.accesses_memory
        shell.attributes = set(function.attributes)
        for old_arg, new_arg in zip(function.args, shell.args):
            new_arg.name = old_arg.name
            value_map[id(old_arg)] = new_arg
        block_map = {}
        for block in function.blocks:
            block_map[id(block)] = shell.append_block(block.name)
        # Block LIST order is not def-before-use in general (cloned loop
        # bodies are appended at the end but referenced earlier, and
        # unreachable regions have no safe order at all), so cloning is
        # two-phase: build clones in list order — forward references
        # temporarily keep the origin operand — then rewrite every
        # operand through the completed value map.
        for block in function.blocks:
            target = block_map[id(block)]
            for inst in block.instructions:
                clone = clone_instruction(inst, value_map, block_map,
                                          shell)
                if isinstance(clone, CallInst) and \
                        not clone.is_intrinsic():
                    name = clone.callee.name
                    placeholder = callee_names.get(name)
                    if placeholder is None:
                        placeholder = Function(name, clone.callee.ftype)
                        callee_names[name] = placeholder
                    clone.callee = placeholder
                target.append(clone)
                value_map[id(inst)] = clone
        for block in function.blocks:
            target = block_map[id(block)]
            for inst, clone in zip(block.instructions,
                                   target.instructions):
                if isinstance(inst, PhiInst):
                    for value, pred in inst.incoming():
                        clone.add_incoming(
                            value_map.get(id(value), value),
                            block_map.get(id(pred), pred))
        _fix_forward_references(shell, value_map)
        return cls(shell, len(function.args), global_names,
                   callee_names)

    # -- materialization --------------------------------------------------
    def materialize(self, function):
        """Replace ``function``'s body with a clone of the snapshot.

        Returns True on success; on any mismatch the target is left
        untouched and the caller runs the pass normally.
        """
        with self._lock:
            return self._materialize(function)

    def _materialize(self, function):
        from repro.passes.cloning import clone_instruction

        module = function.module
        if module is None or len(function.args) != self.arg_count:
            return False
        value_map = {}
        for name, placeholder in self.global_names.items():
            target_global = module.globals.get(name)
            if target_global is None or \
                    target_global.value_type != placeholder.value_type:
                return False
            value_map[id(placeholder)] = target_global
        callee_map = {}
        for name, placeholder in self.callee_names.items():
            target_callee = module.functions.get(name)
            if target_callee is None or \
                    target_callee.ftype != placeholder.ftype:
                return False
            callee_map[name] = target_callee
        for snap_arg, target_arg in zip(self.shell.args, function.args):
            if snap_arg.type != target_arg.type:
                return False
            value_map[id(snap_arg)] = target_arg

        from repro.ir.basicblock import BasicBlock
        new_blocks = []
        block_map = {}
        for block in self.shell.blocks:
            clone_block = BasicBlock(block.name, function)
            block_map[id(block)] = clone_block
            new_blocks.append(clone_block)
        try:
            for block in self.shell.blocks:
                target = block_map[id(block)]
                for inst in block.instructions:
                    # Constants are copied (never shared with the
                    # snapshot) so no use-list grows across modules.
                    for op in inst.operands:
                        if id(op) in value_map:
                            continue
                        if isinstance(op, ConstantInt):
                            value_map[id(op)] = ConstantInt(op.type,
                                                            op.value)
                        elif isinstance(op, ConstantFloat):
                            value_map[id(op)] = ConstantFloat(op.type,
                                                              op.value)
                        elif isinstance(op, UndefValue):
                            value_map[id(op)] = UndefValue(op.type)
                    clone = clone_instruction(inst, value_map, block_map,
                                              function)
                    if isinstance(clone, CallInst) and \
                            not clone.is_intrinsic():
                        clone.callee = callee_map[clone.callee.name]
                    target.append(clone)
                    value_map[id(inst)] = clone
            for block in self.shell.blocks:
                target = block_map[id(block)]
                for inst, clone in zip(block.instructions,
                                       target.instructions):
                    if isinstance(inst, PhiInst):
                        for value, pred in inst.incoming():
                            clone.add_incoming(
                                value_map.get(id(value), value),
                                block_map.get(id(pred), pred))
            _fix_forward_references_blocks(new_blocks, value_map)
        except Exception:  # pragma: no cover - abort leaves target intact
            for block in new_blocks:
                for inst in block.instructions:
                    inst.drop_all_references()
            return False
        # Commit: detach the old body, install the clone.
        for block in function.blocks:
            for inst in block.instructions:
                inst.drop_all_references()
                inst.parent = None
            block.instructions = []
            block.parent = None
        function.blocks = new_blocks
        function.attributes = set(self.shell.attributes)
        return True


class TransformCacheStats:
    def __init__(self):
        self.inactive_hits = 0
        self.materialized = 0
        self.materialize_failures = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def as_dict(self):
        return dict(self.__dict__)

    def __repr__(self):
        return (f"<TransformCacheStats inactive={self.inactive_hits} "
                f"materialized={self.materialized} misses={self.misses}>")


class FunctionTransformCache:
    """Bounded LRU of (pass, function-content) -> outcome."""

    def __init__(self, max_entries=4096):
        self.enabled = True
        self.max_entries = max_entries
        self.stats = TransformCacheStats()
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def key(self, pass_name, fingerprint, signature):
        return (pass_name, fingerprint, signature)

    def apply(self, key, function):
        """Serve a cached outcome for ``function``.

        Returns ``(outcome, snapshot)`` where outcome is ``False``
        (known inactive: skip the pass), ``True`` (snapshot
        materialized: function transformed; the snapshot rides along so
        the caller can seed its analysis manager and track
        verification), or ``None`` (miss / unusable entry: run the
        pass).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None or entry == _SEEN_ACTIVE:
            self.stats.misses += 1
            return None, None
        if entry == _INACTIVE:
            self.stats.inactive_hits += 1
            return False, None
        if entry.materialize(function):
            self.stats.materialized += 1
            return True, entry
        self.stats.materialize_failures += 1
        return None, None

    def record(self, key, function, changed, am=None):
        """Store the just-observed outcome for ``key``.

        Snapshots are captured lazily: the first active encounter only
        marks the key (capturing every one-off transform would tax cold
        evaluations), the second captures the transformed body, and
        later encounters materialize it.  For a captured snapshot the
        post-transform fingerprint is computed once, stored, and seeded
        into ``am`` (the change just invalidated it, and the evaluation
        loop is about to ask for it anyway).
        """
        if changed:
            with self._lock:
                existing = self._entries.get(key)
            if isinstance(existing, FunctionSnapshot):
                return  # keep the snapshot (materialize failed only
                        # for THIS module's global/callee layout)
            if existing != _SEEN_ACTIVE:
                entry = _SEEN_ACTIVE
            else:
                snapshot = FunctionSnapshot.capture(function)
                if snapshot is None:
                    return
                from repro.ir.printer import function_fingerprint
                snapshot.result_fingerprint = function_fingerprint(
                    function)
                if am is not None:
                    am.put("fingerprint", function,
                           snapshot.result_fingerprint)
                entry = snapshot
        else:
            entry = _INACTIVE
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)


#: Process-global cache consulted by FunctionPass.run_with_changes.
TRANSFORM_CACHE = FunctionTransformCache()
