"""Function-granular transform cache: content-addressed reuse of
FunctionPass results.

The compile→profile loop applies thousands of phase sequences to the
same workloads; sequences share prefixes and converge, so the same
(pass, function-content) pair is evaluated over and over.  A
``FunctionPass`` is a deterministic function of its function's content
(plus the purity attributes of called functions, folded into the cache
key), so its outcome can be cached:

- an *inactive* outcome (``run_on_function`` returned False, which by
  the pass contract means "did not mutate") lets a later identical
  application skip the pass body entirely;
- an *active* outcome stores a detached snapshot of the transformed
  body; a later identical application materializes the snapshot (a
  plain clone) instead of re-running the pass algorithm.

Materialized output equals the pass's own output up to local value
names, which the canonical fingerprint normalizes away — activity bits,
fingerprints and behaviour are bit-identical either way (enforced by
the differential suite).  Any doubt during snapshot or materialization
(function-pointer operands, missing global/callee names in the target
module, signature drift) falls back to simply running the pass.

The cache is process-global (content-addressed keys are module- and
session-independent), bounded LRU, and disabled whenever the calling
AnalysisManager is disabled (the legacy cost model) or via
``TRANSFORM_CACHE.enabled``.
"""

import threading
from collections import OrderedDict

from repro.ir.function import Function
from repro.ir.instructions import CallInst
from repro.ir.values import (
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)

_INACTIVE = "inactive"
_SEEN_ACTIVE = "seen-active"


def callee_signature(function):
    """Everything a FunctionPass may read about OTHER functions: the
    purity attributes of each non-intrinsic callee.  Part of the cache
    key so two content-identical functions whose callees differ in
    attributes never share an entry."""
    signature = set()
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, CallInst) and not inst.is_intrinsic():
                callee = inst.callee
                signature.add((callee.name, callee.is_pure,
                               callee.accesses_memory,
                               tuple(sorted(callee.attributes))))
    return tuple(sorted(signature))


class FunctionSnapshot:
    """A detached copy of a transformed function body.

    Globals and constants are replaced by placeholders so the snapshot
    never appears in any live module's use lists; callees are recorded
    by name.  ``materialize`` clones the snapshot into a target function
    of a (content-identical) module, remapping placeholders to the
    target module's objects by name.
    """

    def __init__(self, shell, arg_count, global_names, callee_names):
        self.shell = shell
        self.arg_count = arg_count
        self.global_names = global_names    # name -> placeholder
        self.callee_names = callee_names    # name -> placeholder shell
        self.result_fingerprint = None      # canonical post-state hash
        self.verified = False               # passed verify_function once
        # Cloning temporarily registers forward-reference uses on the
        # shell's instructions; concurrent materializations (thread-mode
        # evaluation) must not interleave those use-list edits.
        self._lock = threading.Lock()

    # -- capture ----------------------------------------------------------
    @classmethod
    def capture(cls, function):
        """Snapshot ``function``'s current body, or None when the body
        holds something the snapshot cannot make module-independent."""
        from repro.passes.cloning import clone_blocks_into

        value_map = {}
        global_names = {}
        callee_names = {}
        for block in function.blocks:
            for inst in block.instructions:
                for op in inst.operands:
                    if isinstance(op, GlobalVariable):
                        if id(op) not in value_map:
                            placeholder = GlobalVariable(
                                op.name, op.value_type, op.initializer,
                                op.is_constant_global)
                            value_map[id(op)] = placeholder
                            global_names[op.name] = placeholder
                    elif isinstance(op, Function):
                        return None  # function-pointer-ish operand
        shell = Function(function.name, function.ftype)
        shell.is_pure = function.is_pure
        shell.accesses_memory = function.accesses_memory
        shell.attributes = set(function.attributes)
        for old_arg, new_arg in zip(function.args, shell.args):
            new_arg.name = old_arg.name
            value_map[id(old_arg)] = new_arg

        def on_clone(_inst, clone):
            # Callees are recorded as placeholder shells by name;
            # materialization rebinds them in the target module.
            if isinstance(clone, CallInst) and not clone.is_intrinsic():
                name = clone.callee.name
                placeholder = callee_names.get(name)
                if placeholder is None:
                    placeholder = Function(name, clone.callee.ftype)
                    callee_names[name] = placeholder
                clone.callee = placeholder

        clone_blocks_into(
            function.blocks, shell, value_map, {},
            make_block=lambda b: shell.append_block(b.name),
            on_clone=on_clone)
        return cls(shell, len(function.args), global_names,
                   callee_names)

    # -- materialization --------------------------------------------------
    def materialize(self, function):
        """Replace ``function``'s body with a clone of the snapshot.

        Returns True on success; on any mismatch the target is left
        untouched and the caller runs the pass normally.
        """
        with self._lock:
            built = self._build(function)
            if built is None:
                return False
            self._commit(function, built)
            return True

    def _build(self, function):
        """Clone the snapshot body against ``function``'s module without
        touching the function; returns the new block list or None.  The
        split from :meth:`_commit` lets the module-pass memo build every
        function's clone before committing any — replay stays atomic.
        """
        from repro.passes.cloning import clone_blocks_into

        module = function.module
        if module is None or len(function.args) != self.arg_count:
            return None
        value_map = {}
        for name, placeholder in self.global_names.items():
            target_global = module.globals.get(name)
            if target_global is None or \
                    target_global.value_type != placeholder.value_type:
                return None
            value_map[id(placeholder)] = target_global
        callee_map = {}
        for name, placeholder in self.callee_names.items():
            target_callee = module.functions.get(name)
            if target_callee is None or \
                    target_callee.ftype != placeholder.ftype:
                return None
            callee_map[name] = target_callee
        for snap_arg, target_arg in zip(self.shell.args, function.args):
            if snap_arg.type != target_arg.type:
                return None
            value_map[id(snap_arg)] = target_arg

        from repro.ir.basicblock import BasicBlock

        def prepare(inst):
            # Constants are copied (never shared with the snapshot) so
            # no use-list grows across modules.
            for op in inst.operands:
                if id(op) in value_map:
                    continue
                if isinstance(op, ConstantInt):
                    value_map[id(op)] = ConstantInt(op.type, op.value)
                elif isinstance(op, ConstantFloat):
                    value_map[id(op)] = ConstantFloat(op.type, op.value)
                elif isinstance(op, UndefValue):
                    value_map[id(op)] = UndefValue(op.type)

        def on_clone(_inst, clone):
            if isinstance(clone, CallInst) and not clone.is_intrinsic():
                clone.callee = callee_map[clone.callee.name]

        block_map = {}
        try:
            return clone_blocks_into(
                self.shell.blocks, function, value_map, block_map,
                make_block=lambda b: BasicBlock(b.name, function),
                prepare=prepare, on_clone=on_clone)
        except Exception:  # pragma: no cover - abort leaves target intact
            for clone_block in block_map.values():
                clone_block.clear_instructions()
            return None

    def _commit(self, function, new_blocks):
        """Detach the old body, install the built clone (cannot fail)."""
        function.set_blocks(new_blocks)
        function.attributes = set(self.shell.attributes)


class TransformCacheStats:
    def __init__(self):
        self.inactive_hits = 0
        self.materialized = 0
        self.materialize_failures = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def as_dict(self):
        return dict(self.__dict__)

    def __repr__(self):
        return (f"<TransformCacheStats inactive={self.inactive_hits} "
                f"materialized={self.materialized} misses={self.misses}>")


class FunctionTransformCache:
    """Bounded LRU of (pass, function-content) -> outcome."""

    def __init__(self, max_entries=4096, eager_capture=False):
        self.enabled = True
        #: True captures a snapshot on the first active encounter.
        #: Measured on the cold compile->profile benchmark this LOSES:
        #: most (pass, content) pairs are unique, so the per-outcome
        #: clone tax exceeds the saved re-runs.  Lazy capture (default)
        #: marks the first encounter and clones on the second.
        self.eager_capture = eager_capture
        self.max_entries = max_entries
        self.stats = TransformCacheStats()
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def key(self, pass_name, fingerprint, signature):
        return (pass_name, fingerprint, signature)

    def apply(self, key, function):
        """Serve a cached outcome for ``function``.

        Returns ``(outcome, snapshot)`` where outcome is ``False``
        (known inactive: skip the pass), ``True`` (snapshot
        materialized: function transformed; the snapshot rides along so
        the caller can seed its analysis manager and track
        verification), or ``None`` (miss / unusable entry: run the
        pass).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None or entry == _SEEN_ACTIVE:
            self.stats.misses += 1
            return None, None
        if entry == _INACTIVE:
            self.stats.inactive_hits += 1
            return False, None
        if entry.materialize(function):
            self.stats.materialized += 1
            return True, entry
        self.stats.materialize_failures += 1
        return None, None

    def record(self, key, function, changed, am=None):
        """Store the just-observed outcome for ``key``.

        Snapshots are captured lazily: the first active encounter only
        marks the key (capturing every one-off transform would tax cold
        evaluations), the second captures the transformed body, and
        later encounters materialize it.  For a captured snapshot the
        post-transform fingerprint is computed once, stored, and seeded
        into ``am`` (the change just invalidated it, and the evaluation
        loop is about to ask for it anyway).
        """
        if changed:
            with self._lock:
                existing = self._entries.get(key)
            if isinstance(existing, FunctionSnapshot):
                return  # keep the snapshot (materialize failed only
                        # for THIS module's global/callee layout)
            if not self.eager_capture and existing != _SEEN_ACTIVE:
                entry = _SEEN_ACTIVE
            else:
                snapshot = FunctionSnapshot.capture(function)
                if snapshot is None:
                    return
                from repro.ir.printer import function_fingerprint
                snapshot.result_fingerprint = function_fingerprint(
                    function)
                if am is not None:
                    am.put("fingerprint", function,
                           snapshot.result_fingerprint)
                entry = snapshot
        else:
            entry = _INACTIVE
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)


#: Process-global cache consulted by FunctionPass.run_with_changes.
TRANSFORM_CACHE = FunctionTransformCache()


# -- module-pass outcome memo ---------------------------------------------

def module_pass_digest(module, am):
    """Everything a module pass may read: the composed module
    fingerprint (globals header + every function's content, attributes
    and name, in module order) plus the per-function signature and
    purity flags the fingerprint does not carry (declarations included —
    inline and the SCCP call oracle read them)."""
    from repro.ir.printer import module_fingerprint

    meta = tuple((name, str(f.ftype), f.is_pure, f.accesses_memory)
                 for name, f in module.functions.items())
    return (module_fingerprint(module, am), meta)


class ModuleSnapshot:
    """The recorded outcome of one active module-pass run: a
    :class:`FunctionSnapshot` for every function whose canonical
    fingerprint changed.

    Only captured when the run changed nothing a per-function body
    snapshot cannot replay — same function and global sets, same
    signatures, same purity flags (``capture`` returns None otherwise,
    and the entry stays uncacheable).  Replay is atomic: every
    function's clone is built against the target module first, then all
    are committed; a build failure leaves the module untouched.
    """

    def __init__(self, snapshots):
        self.snapshots = snapshots  # name -> FunctionSnapshot
        self._lock = threading.Lock()

    @classmethod
    def capture(cls, module, am, pre_fingerprints, pre_meta):
        digest_meta = tuple(
            (name, str(f.ftype), f.is_pure, f.accesses_memory)
            for name, f in module.functions.items())
        if digest_meta != pre_meta:
            return None  # signature/purity/function-set drift
        snapshots = {}
        for name, function in module.functions.items():
            if function.is_declaration():
                if pre_fingerprints.get(name) is None:
                    continue
                return None  # definition became a declaration
            fingerprint = am.fingerprint(function)
            if fingerprint == pre_fingerprints.get(name):
                continue
            snapshot = FunctionSnapshot.capture(function)
            if snapshot is None:
                return None
            snapshot.result_fingerprint = fingerprint
            snapshots[name] = snapshot
        return cls(snapshots)

    def materialize(self, module, am):
        """Replay the recorded outcome onto ``module``; returns the set
        of replaced functions, or None (module left untouched)."""
        with self._lock:
            built = {}
            for name, snapshot in self.snapshots.items():
                function = module.functions.get(name)
                if function is None:
                    return None
                blocks = snapshot._build(function)
                if blocks is None:
                    return None
                built[name] = (function, snapshot, blocks)
            changed = set()
            for name, (function, snapshot, blocks) in built.items():
                snapshot._commit(function, blocks)
                am.invalidate(function, frozenset())
                if snapshot.result_fingerprint is not None:
                    am.put("fingerprint", function,
                           snapshot.result_fingerprint)
                changed.add(function)
            return changed


class ModuleTransformCache:
    """Bounded LRU of (pass, module-content) -> module-pass outcome.

    The compile→profile loop re-runs inline/ipsccp/globalopt on the
    same module states thousands of times during search (every sequence
    candidate sharing a prefix replays them); outcomes are content
    deterministic, so the memo either skips the pass (known inactive)
    or replays the recorded per-function bodies.
    """

    def __init__(self, max_entries=512, eager_capture=False):
        self.enabled = True
        self.eager_capture = eager_capture
        self.max_entries = max_entries
        self.stats = TransformCacheStats()
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def key(self, pass_name, digest):
        return (pass_name, digest)

    def apply(self, key, module, am):
        """Serve a cached outcome: ``(False, None)`` known inactive,
        ``(True, changed_functions)`` snapshot replayed, ``(None,
        last_seen)`` miss (run the pass; pass ``last_seen`` back to
        :meth:`record`)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None or entry == _SEEN_ACTIVE:
            self.stats.misses += 1
            return None, entry
        if entry == _INACTIVE:
            self.stats.inactive_hits += 1
            return False, None
        changed = entry.materialize(module, am)
        if changed is not None:
            self.stats.materialized += 1
            return True, changed
        self.stats.materialize_failures += 1
        return None, None

    def record(self, key, module, am, changed, pre_fingerprints,
               pre_meta, last_seen):
        """Store the just-observed outcome (lazy capture, like the
        function-level cache: first active encounter marks, the second
        captures)."""
        if not changed:
            entry = _INACTIVE
        else:
            with self._lock:
                existing = self._entries.get(key)
            if isinstance(existing, ModuleSnapshot):
                return  # keep it (replay failed only for THIS module)
            if last_seen != _SEEN_ACTIVE and not self.eager_capture:
                entry = _SEEN_ACTIVE
            else:
                snapshot = ModuleSnapshot.capture(
                    module, am, pre_fingerprints, pre_meta)
                if snapshot is None:
                    return
                entry = snapshot
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)


#: Process-global module-pass memo consulted by Pass.run_with_changes.
MODULE_TRANSFORM_CACHE = ModuleTransformCache()
