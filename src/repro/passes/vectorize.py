"""loop-vectorize / slp-vectorizer.

The IR stays scalar (see DESIGN.md): these phases enable the backend's
SLP fuser, which packs groups of four independent, consecutive,
same-opcode float operations into one SIMD machine instruction on targets
that have vector units (the x86-like target; the RISC-V-like target
ignores the attribute).

``loop-vectorize`` additionally performs an interleaving unroll of small
counted loops (the scalar part of vectorization) so that the straight-line
body exposes the independent operation groups the fuser needs.
``slp-vectorizer`` only marks straight-line code as fusable.
"""

from repro.passes.analysis import PRESERVE_CFG, PRESERVE_NONE
from repro.passes.base import FunctionPass, register_pass
from repro.passes.loop_unroll import LoopUnroll

SLP_ATTRIBUTE = "slp-enabled"


@register_pass("slp-vectorizer")
class SLPVectorizer(FunctionPass):
    # Attribute-only change: the IR text and CFG are untouched (the
    # attribute IS part of the fingerprint, which is never preserved).
    preserved_analyses = PRESERVE_CFG | frozenset({"loopivs"})
    mutates_callee_visible_state = True

    def run_on_function(self, function, am=None):
        if SLP_ATTRIBUTE in function.attributes:
            return False
        # Only meaningful when there is straight-line float math to pack.
        float_ops = sum(
            1 for inst in function.instructions()
            if getattr(inst, "opcode", "") in ("fadd", "fsub", "fmul",
                                               "fdiv"))
        if float_ops < 4:
            return False
        function.attributes.add(SLP_ATTRIBUTE)
        return True


@register_pass("loop-vectorize")
class LoopVectorize(FunctionPass):
    """Interleaving unroll + SLP enablement."""

    # Delegates to LoopUnroll, which restructures the CFG.
    preserved_analyses = PRESERVE_NONE
    mutates_callee_visible_state = True

    def run_on_function(self, function, am=None):
        unroller = LoopUnroll()
        unroller.MAX_TRIP_COUNT = 32
        unroller.MAX_BODY_INSTRUCTIONS = 24
        changed = unroller.run_on_function(function, am)
        if changed and SLP_ATTRIBUTE not in function.attributes:
            function.attributes.add(SLP_ATTRIBUTE)
        return changed
