"""loop-rotate: convert top-tested loops into bottom-tested (do-while) form.

The header's exit test is duplicated into the preheader as a guard; the
loop then tests at the latch.  This gives later passes (licm, indvars,
unroll) a loop whose body is straight-line from header to latch.

Implementation: for a while-shaped loop
  preheader -> header{cond; condbr body, exit} ; body ... latch -> header
the header test instructions are cloned into the preheader, the preheader
branches on the cloned condition (guard), and the latch jumps to a copy of
the test instead of the header.

Multi-exit loops (``break``/early-``return`` shapes) rotate too: the
loop is first put into canonical form (LoopSimplify + LCSSA, see
:mod:`repro.passes.loop_canon`), the header's exit edge gets a private
landing block, and after rotation every *other* exit block's phis are
remapped onto the current-iteration values materialized in the new loop
top — the per-exit fixup that the old single-exit-only implementation
could not express (it funneled every escaping value through the one
exit block, which miscompiled ``break`` shapes — the qurt/isqrt bug).
"""

from repro.ir import (
    BranchInst,
    CondBranchInst,
    PhiInst,
    split_edge,
)
from repro.passes.analysis import PRESERVE_NONE
from repro.passes.base import FunctionPass, register_pass
from repro.passes.loop_canon import (
    ensure_canonical_loop,
    loop_is_lcssa,
    loop_is_simplified,
)
from repro.passes.loop_utils import ensure_preheader_tracked, loops_of
from repro.passes.utils import is_pure


_CLONEABLE = None


def _can_clone(inst):
    """True when :func:`_clone_instruction` supports ``inst``'s type
    (checked up front so rotation never bails mid-mutation)."""
    global _CLONEABLE
    if _CLONEABLE is None:
        from repro.ir import (
            BinaryInst, CastInst, FCmpInst, GEPInst, ICmpInst, LoadInst,
            SelectInst, CallInst,
        )
        _CLONEABLE = (BinaryInst, ICmpInst, FCmpInst, CastInst, GEPInst,
                      SelectInst, LoadInst, CallInst)
    return isinstance(inst, _CLONEABLE)


def _clone_instruction(inst, operand_map, function):
    """Clone a pure instruction remapping operands through ``operand_map``."""
    from repro.ir import (
        BinaryInst, CastInst, FCmpInst, GEPInst, ICmpInst, LoadInst,
        SelectInst, CallInst,
    )

    def remap(value):
        return operand_map.get(id(value), value)

    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.opcode, remap(inst.lhs), remap(inst.rhs))
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.opcode, remap(inst.value), inst.type)
    elif isinstance(inst, GEPInst):
        clone = GEPInst(remap(inst.base), remap(inst.index))
    elif isinstance(inst, SelectInst):
        clone = SelectInst(remap(inst.condition), remap(inst.true_value),
                           remap(inst.false_value))
    elif isinstance(inst, LoadInst):
        clone = LoadInst(remap(inst.pointer))
    elif isinstance(inst, CallInst):
        clone = CallInst(inst.callee, [remap(a) for a in inst.args])
    else:
        return None
    clone.name = function.next_name("rot")
    return clone


@register_pass("loop-rotate")
class LoopRotate(FunctionPass):
    preserved_analyses = PRESERVE_NONE
    MAX_HEADER_SIZE = 8

    def __init__(self):
        self._structure_dirty = False

    def run_on_function(self, function, am=None):
        # Single-exit rotation only rewrites existing blocks, so one
        # sweep over a loop forest stays self-consistent.  The
        # multi-exit path *creates* blocks (split exits, merged
        # latches), which invalidates the sibling/enclosing Loop
        # objects' membership sets — the sweep restarts on fresh loop
        # info after any such structural change (rotated loops become
        # bottom-tested and are skipped, so this terminates).
        changed = False
        for _ in range(64):
            info = loops_of(function, am)
            self._structure_dirty = False
            restart = False
            for loop in sorted(info.loops, key=lambda lp: -lp.depth):
                changed |= self._rotate(function, loop, am)
                if self._structure_dirty:
                    restart = True
                    break
            if not restart:
                break
        return changed

    def _rotate(self, function, loop, am=None):
        header = loop.header
        term = header.terminator()
        if not isinstance(term, CondBranchInst):
            return False  # already rotated or headerless-test shape
        in_true = term.true_target in loop.blocks
        in_false = term.false_target in loop.blocks
        if in_true == in_false:
            return False  # both or neither: not a top-tested exit
        exit_block = term.false_target if in_true else term.true_target
        if set(map(id, loop.exit_blocks())) != {id(exit_block)}:
            return self._rotate_multi_exit(function, loop, am)
        # Validate everything BEFORE the first mutation (including the
        # preheader) so a bail-out below never leaves a half-rotated
        # loop behind while reporting "no change".
        latches = loop.latches()
        if len(latches) != 1:
            return False
        latch = latches[0]
        if latch is header:
            return False  # single-block loop is already bottom-tested
        # The latch must fall through to the header unconditionally; a
        # conditionally-exiting latch means the loop is already
        # bottom-tested.
        if not isinstance(latch.terminator(), BranchInst):
            return False
        body_entry = term.true_target if in_true else term.false_target
        if exit_block in loop.blocks or body_entry is header:
            return False
        # The header must contain only phis + a small pure test sequence.
        phis = header.phis()
        tail = header.instructions[len(phis):-1]
        if len(tail) > self.MAX_HEADER_SIZE:
            return False
        for inst in tail:
            if not is_pure(inst) or not _can_clone(inst):
                return False
        # Exit-block and body-entry shape restrictions keep the phi
        # fixups local.
        if [p for p in exit_block.predecessors()] != [header]:
            return False
        if body_entry.phis() or len(body_entry.predecessors()) != 1:
            return False
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False
        if created:
            # The fresh preheader joins every ENCLOSING loop's body but
            # not their (already-computed) block sets — the sweep must
            # re-derive the forest before touching another loop, or a
            # stale outer loop would misclassify the new block as an
            # extra exit and wrongly take the multi-exit path.
            self._structure_dirty = True
        self._do_rotate(function, loop, term, in_true, phis, tail,
                        body_entry, exit_block, latch, preheader,
                        multi_exit=False)
        if am is not None:
            # Mid-run consumers (the restart's loops_of, the multi-exit
            # path's domtree_of) must not read pre-rotation analyses.
            am.invalidate(function)
        return True

    def _rotate_multi_exit(self, function, loop, am):
        """Rotation of loops with early exits (break/early-return).

        Canonical form makes the per-exit fixups expressible: dedicated
        exits + a single backedge (LoopSimplify), every escaping value
        routed through exit phis (LCSSA), and a private landing block
        for the header's own exit edge.  After the shared rotation
        steps, the other exit blocks' phis are remapped onto the
        current-iteration values in the new loop top — they referenced
        header-defined values that no longer dominate those edges.

        Any mutation here (canonicalization included) marks the loop
        forest dirty so the caller re-derives it before touching
        another loop.
        """
        changed = ensure_canonical_loop(function, loop, am)
        if changed:
            self._structure_dirty = True
        if not loop_is_simplified(loop):
            return changed
        header = loop.header
        term = header.terminator()
        in_true = term.true_target in loop.blocks
        # Canonicalization may have redirected the exit edge onto a
        # split landing block; recompute the shape from the terminator.
        body_entry = term.true_target if in_true else term.false_target
        exit_block = term.false_target if in_true else term.true_target
        if exit_block in loop.blocks or body_entry is header:
            return changed
        latches = loop.latches()
        if len(latches) != 1:
            return changed
        latch = latches[0]
        if latch is header or not isinstance(latch.terminator(),
                                             BranchInst):
            return changed
        phis = header.phis()
        tail = header.instructions[len(phis):-1]
        if len(tail) > self.MAX_HEADER_SIZE:
            return changed
        for inst in tail:
            if not is_pure(inst) or not _can_clone(inst):
                return changed
        if body_entry.phis() or len(body_entry.predecessors()) != 1:
            return changed
        # The header's exit edge needs a private landing block: the
        # guard and the rotated latch will both target it.
        if exit_block.predecessors() != [header]:
            exit_block = split_edge(header, exit_block,
                                    name=function.next_name("rotexit"))
            changed = True
            self._structure_dirty = True
            if am is not None:
                am.invalidate(function)
        changed |= ensure_canonical_loop(function, loop, am, lcssa=True)
        if changed:
            self._structure_dirty = True
        if not loop_is_lcssa(loop):
            return changed
        preheader = loop.preheader()
        if preheader is None:
            return changed
        self._do_rotate(function, loop, term, in_true, phis, tail,
                        body_entry, exit_block, latch, preheader,
                        multi_exit=True)
        self._structure_dirty = True
        if am is not None:
            am.invalidate(function)
        return True

    def _do_rotate(self, function, loop, term, in_true, phis, tail,
                   body_entry, exit_block, latch, preheader, multi_exit):
        header = loop.header
        # 1. Clone the test chain into the preheader as the entry guard
        #    (header phis resolve to their initial values).
        guard_map = {}
        for phi in phis:
            guard_map[id(phi)] = phi.incoming_value_for(preheader)
        for inst in tail:
            clone = _clone_instruction(inst, guard_map, function)
            preheader.insert_before_terminator(clone)
            guard_map[id(inst)] = clone
        guard_cond = guard_map[id(term.condition)]
        preheader.set_terminator(
            CondBranchInst(guard_cond, body_entry, exit_block)
            if in_true else
            CondBranchInst(guard_cond, exit_block, body_entry))

        # 2. body_entry becomes the new loop top: merge phis join the
        #    guard path (initial values) with the back edge (header phi),
        #    and the whole tail chain is re-materialized there for the
        #    current iteration.
        merge_of = {}
        for phi in list(phis):
            init = phi.incoming_value_for(preheader)
            merge = PhiInst(phi.type, function.next_name("rphi"))
            body_entry.insert(0, merge)
            merge.add_incoming(init, preheader)
            merge.add_incoming(phi, header)
            merge_of[id(phi)] = merge
        body_map = dict(merge_of)
        insert_at = len(body_entry.phis())
        for inst in tail:
            clone = _clone_instruction(inst, body_map, function)
            body_entry.insert(insert_at, clone)
            insert_at += 1
            body_map[id(inst)] = clone

        def current_iteration_value(value):
            """Value as seen during the current iteration inside the
            rotated body (phis via their merge, tail via its clone)."""
            return body_map.get(id(value), value)

        # Rewire in-loop uses (outside the old header) of phis and tail
        # values to the body_entry versions.
        for original in list(phis) + list(tail):
            replacement = body_map[id(original)]
            for user, index in list(original.uses):
                if user is replacement or user in body_map.values():
                    continue
                if id(user) in {id(c) for c in body_map.values()}:
                    continue
                if user.parent in loop.blocks and \
                        user.parent is not header and \
                        user.parent is not body_entry:
                    user.set_operand(index, replacement)
                elif user.parent is body_entry and \
                        not isinstance(user, PhiInst) and \
                        user not in body_map.values():
                    user.set_operand(index, replacement)

        # 3. Clone the test into the latch: it now decides back edge vs
        #    exit using the *updated* values (phi incoming on the back
        #    edge, remapped through the body versions).
        latch_map = {}
        for phi in phis:
            incoming = phi.incoming_value_for(latch)
            latch_map[id(phi)] = current_iteration_value(incoming)
        for inst in tail:
            clone = _clone_instruction(inst, latch_map, function)
            latch.insert_before_terminator(clone)
            latch_map[id(inst)] = clone
        latch_cond = latch_map[id(term.condition)]
        latch.set_terminator(CondBranchInst(latch_cond, header, exit_block)
                             if in_true else
                             CondBranchInst(latch_cond, exit_block, header))

        # 4. The old header now unconditionally re-enters the body; its
        #    phi incoming values on the back edge are remapped to the
        #    body versions so they dominate the latch edge.
        header.set_terminator(BranchInst(body_entry))
        for phi in phis:
            for index, (value, pred) in enumerate(list(phi.incoming())):
                if pred is latch:
                    phi.set_operand(phi.incoming_blocks.index(pred),
                                    current_iteration_value(value))
            phi.remove_incoming(preheader)

        # 5. The exit block's predecessors changed from {header} to
        #    {preheader, latch}: rebuild its phis and give any other
        #    out-of-loop use of loop values a merge phi.
        for inst in list(exit_block.instructions):
            if isinstance(inst, PhiInst):
                entries = list(inst.incoming())
                inst.drop_all_references()
                inst.incoming_blocks = []
                for value, pred in entries:
                    if pred is header:
                        inst.add_incoming(guard_map.get(id(value), value),
                                          preheader)
                        inst.add_incoming(latch_map.get(id(value), value),
                                          latch)
                    else:
                        inst.add_incoming(value, pred)
        if multi_exit:
            # Per-exit LCSSA fixup: the other exit blocks' phis read
            # header-defined values (old phis / tail) whose defs no
            # longer dominate those exit edges — the guard path enters
            # the body without executing the old header.  The
            # body_entry versions carry the current iteration's values
            # and dominate every body block, so each in-loop entry is
            # remapped through ``body_map``.
            for other_exit in loop.exit_blocks():
                if other_exit is exit_block:
                    continue
                for phi in other_exit.phis():
                    for index, (value, pred) in \
                            enumerate(list(phi.incoming())):
                        if pred in loop.blocks and \
                                id(value) in body_map:
                            phi.set_operand(index, body_map[id(value)])
            return
        exit_fix = {}
        latch_side = dict(latch_map)
        for phi in phis:
            latch_side.setdefault(id(phi), latch_map[id(phi)])
        for inst in list(phis) + list(tail):
            for user, index in list(inst.uses):
                if user.parent is None:
                    continue
                if user.parent in loop.blocks or \
                        user.parent is preheader or \
                        user.parent is body_entry:
                    continue
                if isinstance(user, PhiInst) and \
                        user.parent is exit_block:
                    continue
                key = id(inst)
                if key not in exit_fix:
                    merge = PhiInst(inst.type, function.next_name("xphi"))
                    exit_block.insert(0, merge)
                    merge.add_incoming(guard_map.get(key, inst),
                                       preheader)
                    merge.add_incoming(latch_side.get(key, inst), latch)
                    exit_fix[key] = merge
                if user is not exit_fix[key]:
                    user.set_operand(index, exit_fix[key])
