"""Loop canonicalization: LoopSimplify + LCSSA (LLVM-style).

The loop-pass family used to bail on every loop with more than one exit
block — the conservative fix for a real loop-rotate miscompile
(qurt/isqrt) silently forfeited optimization on every ``break``/
early-``return`` loop shape.  This module establishes the two canonical
forms those passes need to handle multi-exit loops safely:

**Simplified form** (per loop):

- a *dedicated preheader*: the unique out-of-loop predecessor of the
  header, ending in an unconditional branch to it;
- *dedicated exits*: every exit block's predecessors are all inside the
  loop (exit edges to shared join blocks are split), so exit-phi fixups
  never disturb unrelated control flow;
- a *single backedge*: multiple latches are funneled through one merge
  block, so "the latch" is well-defined for rotation and IV analysis.

**LCSSA form** (per loop): every value defined inside the loop and used
outside it flows through a phi in one of the loop's exit blocks.  A
transformation that clones or redirects exit edges then only has to
patch phis *in the exit blocks themselves* — all downstream uses read
the phis, not loop-internal defs.  Formation inserts per-exit phis and
reroutes outer uses through a small SSA reconstruction (join phis at
iterated dominance frontiers) when a use is reachable from several
exits.

Canonical-form verdicts are cached on the
:class:`repro.passes.analysis.AnalysisManager` under the ``loopcanon``
analysis: loop passes consult the cached verdict and skip the
(re-)establishment scan entirely when the function has not changed —
the inactive-trial regime the deployment loop spends most of its phase
budget on.  Passes that maintain the form declare it preserved.

The exit *simulation* utilities at the bottom generalize
``constant_trip_count`` to multi-exit loops: when every exit condition
is an IV-vs-constant compare, the exact per-iteration branch decisions
(and therefore the early-exit trip count) are computable, which lets
full unrolling and loop-idiom fire on early-exit counted loops.
"""

from repro.ir import (
    BranchInst,
    CondBranchInst,
    ConstantInt,
    ICmpInst,
    PhiInst,
    UndefValue,
    split_edge,
)
from repro.ir.cfg import DominatorTree
from repro.passes.loop_utils import (
    ensure_preheader_tracked,
    find_induction_variables,
)

_COMPARE = {
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ne": lambda a, b: a != b, "eq": lambda a, b: a == b,
}


# -- canonical-form verdicts (the ``loopcanon`` analysis) -----------------

class LoopCanonInfo:
    """Memoized canonical-form verdicts for one function's loops.

    Verdicts are computed lazily per loop and pinned by loop identity
    (strong references, so CPython id reuse cannot alias two loops).
    Cached on the AnalysisManager as ``loopcanon``; invalidated with
    the function unless a pass declares it preserved.
    """

    def __init__(self, function):
        self.function = function
        self._simplified = {}
        self._lcssa = {}
        self._lcssa_failed = {}

    def is_simplified(self, loop):
        key = id(loop)
        hit = self._simplified.get(key)
        if hit is None:
            hit = (loop, loop_is_simplified(loop))
            self._simplified[key] = hit
        return hit[1]

    def is_lcssa(self, loop):
        key = id(loop)
        hit = self._lcssa.get(key)
        if hit is None:
            hit = (loop, loop_is_lcssa(loop))
            self._lcssa[key] = hit
        return hit[1]

    def lcssa_formation_failed(self, loop):
        """True when a formation attempt already found nothing it
        could rewrite for this (unchanged) function — there is no
        point re-running the scan until the function mutates (and
        this memo is invalidated with it)."""
        hit = self._lcssa_failed.get(id(loop))
        return hit is not None and hit[1]

    def mark_lcssa_formation_failed(self, loop):
        self._lcssa_failed[id(loop)] = (loop, True)

def loopcanon_of(function, am=None):
    """Canonical-form verdict memo — cached when ``am`` is given."""
    if am is not None:
        return am.loopcanon(function)
    return LoopCanonInfo(function)


def loop_is_simplified(loop):
    """Preheader + dedicated exits + single backedge (no mutation)."""
    return (loop.preheader() is not None
            and len(loop.latches()) == 1
            and loop.has_dedicated_exits())


def loop_is_lcssa(loop):
    """True when every loop-defined value's *reachable* outside uses
    are phis in the loop's exit blocks (no mutation).

    Unreachable users are ignored, mirroring :func:`form_lcssa` (which
    cannot and need not rewrite them) — otherwise a loop with dead
    outside uses would flunk the verdict forever while formation keeps
    reporting nothing to do.  Reachability is only computed when a
    violation candidate shows up (the common all-clear path stays one
    use-list sweep)."""
    exit_ids = {id(b) for b in loop.exit_blocks()}
    reachable = None
    for block in loop.ordered_blocks():
        for inst in block.instructions:
            for user, _ in inst.uses:
                parent = user.parent
                if parent is None or parent in loop.blocks:
                    continue
                if isinstance(user, PhiInst) and id(parent) in exit_ids:
                    continue
                if reachable is None:
                    from repro.ir.cfg import reachable_blocks
                    reachable = reachable_blocks(loop.header.parent)
                if parent in reachable:
                    return False
    return True


# -- LoopSimplify ---------------------------------------------------------

def simplify_loop(function, loop):
    """Establish simplified form for one loop.  Returns True when the
    CFG changed (the calling pass must report and invalidate).

    ``loop``'s block set is maintained in place (the merged latch joins
    the loop and all enclosing loops), so the caller may keep using the
    loop object; split exit blocks live outside every loop.
    """
    changed = False
    preheader, created = ensure_preheader_tracked(function, loop)
    if preheader is None:
        return changed
    changed |= created
    for exiting, exit_block in loop.exit_edges():
        if all(p in loop.blocks for p in exit_block.predecessors()):
            continue
        split_edge(exiting, exit_block,
                   name=function.next_name("loopexit"))
        changed = True
    latches = loop.latches()
    if len(latches) > 1:
        _merge_latches(function, loop, latches)
        changed = True
    return changed


def _merge_latches(function, loop, latches):
    """Funnel every backedge through one fresh latch block."""
    header = loop.header
    latch = function.append_block(function.next_name("latch"))
    # Place after the last latch: keeps the layout roughly topological.
    positions = function.block_positions()
    latch.insert_after(max(latches, key=lambda b: positions[id(b)]))
    for phi in header.phis():
        merged = PhiInst(phi.type, function.next_name("lt"))
        latch.insert(len(latch.phis()), merged)
        for source in latches:
            merged.add_incoming(phi.incoming_value_for(source), source)
        for source in latches:
            phi.remove_incoming(source)
        phi.add_incoming(merged, latch)
    for source in latches:
        source.terminator().replace_successor(header, latch)
    latch.append(BranchInst(header))
    enclosing = loop
    while enclosing is not None:
        enclosing.blocks.add(latch)
        enclosing = enclosing.parent


# -- LCSSA ----------------------------------------------------------------

def form_lcssa(function, loop, dom=None):
    """Insert exit phis so no loop-defined value is used outside the
    loop directly.  Requires dedicated exits (``simplify_loop`` first).
    Returns True when phis were inserted."""
    if dom is None:
        dom = DominatorTree(function)
    reachable = set(dom.rpo)
    exit_blocks = [b for b in loop.exit_blocks() if b in reachable]
    exit_ids = {id(b) for b in exit_blocks}
    reach_cache = {}
    # Coverage tests below issue repeated same-block dominance queries
    # against in-loop terminators; phi insertion happens in the exit
    # blocks, whose length change the memo detects.
    from repro.ir.cfg import InstructionPositions
    positions = InstructionPositions()
    changed = False
    for block in loop.ordered_blocks():
        if block not in reachable:
            continue
        for inst in list(block.instructions):
            if inst.type.is_void():
                continue
            outside = [
                (user, index) for user, index in list(inst.uses)
                if user.parent is not None
                and user.parent in reachable
                and user.parent not in loop.blocks
                and not (isinstance(user, PhiInst)
                         and id(user.parent) in exit_ids)]
            if not outside:
                continue
            changed |= _rewrite_through_exit_phis(
                function, loop, inst, outside, dom, exit_blocks,
                reach_cache, positions)
    return changed


def _rewrite_through_exit_phis(function, loop, inst, uses, dom,
                               exit_blocks, reach_cache, positions=None):
    """Route ``uses`` (outside the loop) of loop-defined ``inst``
    through fresh per-exit phis, adding join phis where a use is
    reachable from several exits.

    An exit is *covered* when ``inst`` dominates all its (in-loop)
    predecessors' terminators — the value flows out of that exit.  A
    use reachable from an **un**covered exit cannot be rewritten: on a
    loop re-entry path the dominator walk would resolve it to undef,
    so the whole value bails (False) and the calling pass falls back
    to its conservative behaviour."""
    covered = []
    uncovered = []
    for exit_block in exit_blocks:
        preds = exit_block.predecessors()
        if preds and all(p in loop.blocks
                         and dom.instruction_dominates(inst,
                                                       p.terminator(),
                                                       positions)
                         for p in preds):
            covered.append(exit_block)
        else:
            uncovered.append(exit_block)
    if not covered:
        return False
    if uncovered:
        unsafe = _blocks_reachable_from(uncovered, reach_cache)
        for user, op_index in uses:
            source = user.incoming_blocks[op_index] \
                if isinstance(user, PhiInst) else user.parent
            if id(source) in unsafe:
                return False
    defs = {}
    for exit_block in covered:
        phi = PhiInst(inst.type, function.next_name("lcssa"))
        exit_block.insert(0, phi)
        for pred in exit_block.predecessors():
            phi.add_incoming(inst, pred)
        defs[exit_block] = phi
    _ssa_rewrite(function, dom, defs, uses, inst.type)
    return True


def _blocks_reachable_from(roots, cache):
    """ids of blocks reachable from any root's successors (memoized
    per formation run)."""
    key = tuple(sorted(map(id, roots)))
    hit = cache.get(key)
    if hit is not None:
        return hit
    seen = set()
    worklist = list(roots)
    while worklist:
        block = worklist.pop()
        for succ in block.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                worklist.append(succ)
    cache[key] = seen
    return seen


def _ssa_rewrite(function, dom, defs, uses, type_):
    """Rewrite ``uses`` to the nearest definition in ``defs``
    ({block: value-at-top-of-block}), inserting join phis at iterated
    dominance frontiers.  Standard single-variable SSA reconstruction;
    paths reached by no definition read ``undef`` (they cannot execute
    a use that was valid SSA before the rewrite)."""
    index = {id(b): i for i, b in enumerate(function.blocks)}
    frontiers = dom.dominance_frontiers()
    ordered = sorted(defs, key=lambda b: index[id(b)])
    join_blocks = []
    seen = {id(b) for b in ordered}
    worklist = list(ordered)
    while worklist:
        block = worklist.pop(0)
        for frontier in sorted(frontiers.get(block, ()),
                               key=lambda b: index[id(b)]):
            if id(frontier) in seen:
                continue
            seen.add(id(frontier))
            join_blocks.append(frontier)
            worklist.append(frontier)
    joins = {}
    for block in join_blocks:
        phi = PhiInst(type_, function.next_name("lcssa.join"))
        block.insert(0, phi)
        joins[block] = phi
        defs[block] = phi

    def reaching(block):
        runner = block
        while runner is not None:
            if runner in defs:
                return defs[runner]
            runner = dom.idom.get(runner)
        return UndefValue(type_)

    for block, phi in joins.items():
        for pred in block.predecessors():
            phi.add_incoming(reaching(pred), pred)
    for user, op_index in uses:
        # Phi operands are defined along the incoming edge; other users
        # read the def live at their own block (new phis sit at block
        # top, so a same-block def dominates the user).
        source = user.incoming_blocks[op_index] \
            if isinstance(user, PhiInst) else user.parent
        user.set_operand(op_index, reaching(source))
    # Prune join phis nothing ended up reading (pruned SSA would not
    # have placed them); iterate because joins may only feed each other.
    progress = True
    while progress:
        progress = False
        for block in list(joins):
            phi = joins[block]
            if phi.parent is not None and all(
                    user is phi for user, _ in phi.uses):
                phi.erase_from_parent()
                del joins[block]
                progress = True


def fixup_exit_phis(loop, value_map, block_map):
    """After cloning loop blocks (unroll copies, unswitch versions):
    extend every exit-block phi with entries for the cloned exit edges.

    For each phi entry ``(value, pred)`` with ``pred`` inside the loop
    and cloned, an entry ``(mapped value, mapped pred)`` is appended —
    the cloned predecessor carries the cloned value on its (parallel)
    exit edge.  Requires LCSSA (downstream uses read the phis)."""
    for exit_block in loop.exit_blocks():
        for phi in exit_block.phis():
            for value, pred in list(phi.incoming()):
                if pred in loop.blocks and id(pred) in block_map:
                    phi.add_incoming(value_map.get(id(value), value),
                                     block_map[id(pred)])


# -- pass-facing canonicalization entry point -----------------------------

def ensure_canonical_loop(function, loop, am=None, lcssa=False):
    """Establish simplified (and optionally LCSSA) form for ``loop``.

    Returns True when the function was mutated; the caller must then
    report a change.  Cached ``loopcanon`` verdicts make the common
    already-canonical case a cheap memo lookup; on mutation every
    analysis of the function is invalidated (mid-run staleness would
    change downstream decisions, as in licm's preheader handling).
    """
    status = loopcanon_of(function, am)
    changed = False
    if not status.is_simplified(loop):
        changed |= simplify_loop(function, loop)
    if lcssa:
        # A simplify mutation can break a memoized LCSSA verdict (a
        # split exit edge moves the exit phis off the exit block), so
        # the cached verdict only answers for untouched functions.
        lcssa_holds = loop_is_lcssa(loop) if changed \
            else status.is_lcssa(loop)
        if not lcssa_holds and \
                (changed or not status.lcssa_formation_failed(loop)):
            if changed and am is not None:
                am.invalidate(function)
            from repro.passes.analysis import domtree_of
            formed = form_lcssa(function, loop,
                                domtree_of(function, am))
            if not formed and not changed:
                # Nothing rewritable (uncovered exits): remember the
                # failure so the next pass skips the scan until the
                # function changes.
                status.mark_lcssa_formation_failed(loop)
            changed |= formed
    if changed and am is not None:
        # A mutation can flip OTHER loops' verdicts too (a split exit
        # edge un-dedicates an enclosing loop's exit), so the whole
        # memo is dropped rather than patched; the next query recomputes
        # lazily against the post-mutation IR.
        am.invalidate(function)
    return changed


# -- multi-exit trip-count simulation -------------------------------------

class ExitPlan:
    """Exact per-iteration exit decisions of an IV-governed loop.

    ``iterations[k]`` lists ``(exiting_block, fired)`` pairs in
    dominance order, truncated at the first fired exit; the final
    iteration ends with the taken exit.  ``taken_block``/
    ``taken_target`` name the exit edge the loop leaves through.
    ``ivs`` lists every counter governing an exit test (two-counter
    loops carry one entry per independent counter); ``iv`` is the
    first of them.
    """

    def __init__(self, iterations, taken_block, taken_target, ivs):
        self.iterations = iterations
        self.taken_block = taken_block
        self.taken_target = taken_target
        self.ivs = list(ivs)

    @property
    def iv(self):
        return self.ivs[0]

    @property
    def n_entered(self):
        return len(self.iterations)

    def executions_of(self, block, dom):
        """Number of iterations in which ``block`` executes.  Only
        meaningful for blocks dominating the latch (guaranteed to run
        in every completed iteration)."""
        count = 0
        for record in self.iterations:
            last_block, fired = record[-1]
            if fired:
                count += 1 if dom.dominates(block, last_block) else 0
            else:
                count += 1
        return count


def _exit_condition_spec(loop, ivs, exiting):
    """(iv, offset, predicate, bound, exit_on_true, target) for an
    exiting block whose test compares one of ``ivs`` against a
    constant, else None.

    Two-counter loops (``for (i...; j...)`` shapes) carry several
    canonical IVs; each exit test may be governed by any of them, so
    the candidate set spans every IV's phi (iteration-start value) and
    update (post-increment; SSA dominance guarantees the update ran).
    """
    term = exiting.terminator()
    if not isinstance(term, CondBranchInst):
        return None
    in_true = term.true_target in loop.blocks
    in_false = term.false_target in loop.blocks
    if in_true == in_false:
        return None
    target = term.false_target if in_true else term.true_target
    condition = term.condition
    if not isinstance(condition, ICmpInst):
        return None
    lhs, rhs = condition.operands
    candidates = {}
    for iv in ivs:
        candidates[id(iv.phi)] = (iv, 0)
        candidates[id(iv.update)] = (iv, iv.step)
    if id(lhs) in candidates and isinstance(rhs, ConstantInt):
        iv, offset = candidates[id(lhs)]
        predicate = condition.predicate
        bound = rhs.value
    elif id(rhs) in candidates and isinstance(lhs, ConstantInt):
        from repro.ir.instructions import ICMP_SWAP
        iv, offset = candidates[id(rhs)]
        predicate = ICMP_SWAP[condition.predicate]
        bound = lhs.value
    else:
        return None
    return iv, offset, predicate, bound, not in_true, target


def _constant_start_ivs(loop, preheader):
    return [iv for iv in find_induction_variables(loop, preheader)
            if isinstance(iv.start, ConstantInt)]


def simulate_exits(loop, preheader, dom, max_iterations=4096):
    """Exact multi-exit trip simulation, or None.

    Requires: canonical IVs with constant starts, every exiting block
    dominating the (single) latch — each completed iteration then runs
    every exit test, in dominance order — and every exit condition an
    IV-vs-constant compare, so each test's outcome is a pure function
    of the iteration number.  Loops governed by *several* independent
    IVs simulate too: all counters step in lockstep once per completed
    iteration, and each exit test reads its own counter.
    """
    from repro.ir.types import I64

    ivs = _constant_start_ivs(loop, preheader)
    if not ivs:
        return None
    latch = loop.latches()[0]
    exiting = loop.exiting_blocks()
    if not exiting:
        return None
    for block in exiting:
        if not dom.dominates(block, latch):
            return None
    # Blocks dominating a common node form a chain: dominance order is
    # total, and rpo position respects it.
    exiting.sort(key=lambda b: dom._index[b])
    specs = []
    used_ivs = []
    for block in exiting:
        spec = _exit_condition_spec(loop, ivs, block)
        if spec is None:
            return None
        specs.append((block, spec))
        if spec[0] not in used_ivs:
            used_ivs.append(spec[0])
    values = {id(iv.phi): iv.start.value for iv in used_ivs}
    iterations = []
    while True:
        record = []
        fired = None
        for block, (iv, offset, predicate, bound, exit_on_true,
                    target) in specs:
            outcome = _COMPARE[predicate](
                I64.wrap(values[id(iv.phi)] + offset), bound)
            takes_exit = outcome == exit_on_true
            record.append((block, takes_exit))
            if takes_exit:
                fired = (block, target)
                break
        iterations.append(record)
        if fired is not None:
            # ``fired`` implies at least one spec, so ``used_ivs`` is
            # never empty here.
            return ExitPlan(iterations, fired[0], fired[1], used_ivs)
        for iv in used_ivs:
            values[id(iv.phi)] = I64.wrap(values[id(iv.phi)] + iv.step)
        if len(iterations) > max_iterations:
            return None


def counted_exit_bound(loop, preheader, dom, max_iterations=4096):
    """Trip bound from the loop's *counted* exits alone, tolerating
    live (data-dependent) early exits.

    A counted exit is an exiting block that dominates the single latch
    (so every completed iteration runs its test) with an
    IV-vs-constant condition over *any* of the loop's canonical IVs;
    the iteration count at which it fires — computed by ignoring every
    other exit — bounds the loop, since the ignored exits only leave
    *sooner*.  The tightest bound over all counted exits wins.
    Returns ``(n_entered, iv, exiting_block)`` or None, with ``iv``
    the counter governing the winning exit.
    """
    from repro.ir.types import I64

    ivs = _constant_start_ivs(loop, preheader)
    if not ivs:
        return None
    latch = loop.latches()[0]
    best = None
    for block in loop.exiting_blocks():
        if not dom.dominates(block, latch):
            continue
        spec = _exit_condition_spec(loop, ivs, block)
        if spec is None:
            continue
        iv, offset, predicate, bound, exit_on_true, _target = spec
        value = iv.start.value
        entered = 0
        fired = None
        while entered <= max_iterations:
            entered += 1
            if _COMPARE[predicate](I64.wrap(value + offset), bound) \
                    == exit_on_true:
                fired = entered
                break
            value = I64.wrap(value + iv.step)
        if fired is None:
            continue
        if best is None or fired < best[0]:
            best = (fired, iv, block)
    return best
