"""Interprocedural phases: inline, argpromotion, deadargelim, globalopt,
globaldce, constmerge, called-value-propagation, prune-eh,
elim-avail-extern.
"""

from repro.ir import (
    AllocaInst,
    BranchInst,
    CallInst,
    ConstantInt,
    FunctionType,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.passes.analysis import PRESERVE_CFG, PRESERVE_NONE
from repro.passes.base import FunctionPass, Pass, register_pass
from repro.passes.cloning import clone_region


def _call_sites(module, function):
    sites = []
    for caller in module.defined_functions():
        for block in caller.blocks:
            for inst in block.instructions:
                if isinstance(inst, CallInst) and not inst.is_intrinsic() \
                        and inst.callee is function:
                    sites.append(inst)
    return sites


def _is_recursive(function):
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, CallInst) and not inst.is_intrinsic() \
                    and inst.callee is function:
                return True
    return False


@register_pass("inline")
class Inliner(Pass):
    """Bottom-up inlining with a size threshold."""

    # Splices callee blocks into callers: CFG analyses do not survive.
    preserved_analyses = PRESERVE_NONE
    module_memo = True
    THRESHOLD = 45

    def run_on_module(self, module, am):
        changed = False
        budget = 50  # bound total inlines per run
        progress = True
        while progress and budget > 0:
            progress = False
            for caller in module.defined_functions():
                for block in list(caller.blocks):
                    for inst in list(block.instructions):
                        if not isinstance(inst, CallInst) or \
                                inst.is_intrinsic():
                            continue
                        callee = inst.callee
                        if callee.is_declaration() or callee is caller:
                            continue
                        if _is_recursive(callee):
                            continue
                        if callee.instruction_count() > self.THRESHOLD:
                            continue
                        self._inline_site(caller, inst)
                        changed = progress = True
                        budget -= 1
                        break
                    if progress:
                        break
                if progress:
                    break
        return changed

    @staticmethod
    def _inline_site(caller, call):
        callee = call.callee
        block = call.parent
        # 1. Split the calling block at the call site.  The tail
        #    (terminator included) moves in one splice; the successors'
        #    maintained incoming edge switches from ``block`` to
        #    ``continuation`` with the terminator.
        index = block.instructions.index(call)
        continuation = caller.append_block(caller.next_name("inl.cont"))
        continuation.take_instructions_from(block, index + 1)
        # Phi users in successors must now name the continuation block.
        for succ in continuation.successors():
            for phi in succ.phis():
                phi.replace_incoming_block(block, continuation)
        # 2. Clone the callee body into the caller.
        value_map, block_map = clone_region(callee.blocks, caller,
                                            f"inl.{callee.name}")
        entry_clone = block_map[id(callee.entry)]
        # 3. Bind arguments.
        for arg, actual in zip(callee.args, call.args):
            for clone_block in block_map.values():
                for inst in clone_block.instructions:
                    for op_index, op in enumerate(inst.operands):
                        if op is arg:
                            inst.set_operand(op_index, actual)
        # 4. Rewire returns to the continuation with a phi for the value.
        return_sites = []
        for orig in callee.blocks:
            clone_block = block_map[id(orig)]
            term = clone_block.terminator()
            if isinstance(term, RetInst):
                return_sites.append((clone_block, term.value))
                clone_block.set_terminator(BranchInst(continuation))
        if not call.type.is_void():
            if len(return_sites) == 1:
                call.replace_all_uses_with(return_sites[0][1])
            else:
                phi = PhiInst(call.type, caller.next_name("retval"))
                continuation.insert(0, phi)
                # A direct self-use would be illegal; return values always
                # come from the cloned body.
                for site_block, value in return_sites:
                    phi.add_incoming(value, site_block)
                call.replace_all_uses_with(phi)
        # 5. Replace the call with a jump into the inlined entry.
        call.erase_from_parent()
        block.append(BranchInst(entry_clone))
        # 6. Inlined allocas are hoisted to the caller entry so mem2reg
        #    can see them.
        entry = caller.entry
        for clone_block in block_map.values():
            for inst in list(clone_block.instructions):
                if isinstance(inst, AllocaInst):
                    clone_block.remove_instruction(inst)
                    entry.insert(0, inst)


@register_pass("argpromotion")
class ArgPromotion(Pass):
    """Promote pointer arguments that are only loaded (never written,
    never escaped) into value arguments.

    The rewrite changes the function signature, so all call sites must be
    known and the function must not be recursive (kept simple).
    """

    # Signature/load rewrites only; every function's CFG is untouched.
    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        changed = False
        for function in list(module.defined_functions()):
            if function.name == "main" or _is_recursive(function):
                continue
            promotable = self._promotable_args(function)
            if not promotable:
                continue
            # Only promote when every call site passes a pointer we can
            # load from at the call site.
            sites = _call_sites(module, function)
            if not sites:
                continue
            self._promote(module, function, promotable, sites)
            changed = True
        return changed

    @staticmethod
    def _promotable_args(function):
        result = []
        for arg in function.args:
            if not arg.type.is_pointer():
                continue
            if not arg.type.pointee.is_scalar():
                continue
            uses_ok = all(isinstance(user, LoadInst) for user in arg.users)
            if uses_ok and arg.users:
                result.append(arg.index)
        return result

    @staticmethod
    def _promote(module, function, promotable, sites):
        # New signature: promoted args become their pointee type.
        new_params = []
        for index, ptype in enumerate(function.ftype.params):
            if index in promotable:
                new_params.append(ptype.pointee)
            else:
                new_params.append(ptype)
        function.ftype = FunctionType(function.ftype.ret, new_params)
        function.type = function.ftype
        for index in promotable:
            arg = function.args[index]
            arg.type = arg.type.pointee
            # Replace loads of the argument with the argument itself.
            for user in list(arg.users):
                if isinstance(user, LoadInst):
                    user.replace_all_uses_with(arg)
                    user.erase_from_parent()
        # Rewrite call sites: load the pointer before the call.
        for call in sites:
            for index in promotable:
                pointer = call.args[index]
                load = LoadInst(pointer)
                load.name = call.parent.parent.next_name("apl")
                block = call.parent
                block.insert(block.instructions.index(call), load)
                call.set_operand(index, load)


@register_pass("deadargelim")
class DeadArgElim(Pass):
    """Remove arguments that no function body reads (all call sites known,
    non-recursive, not main)."""

    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        changed = False
        for function in list(module.defined_functions()):
            if function.name == "main":
                continue
            dead = [a.index for a in function.args if not a.uses]
            if not dead:
                continue
            sites = _call_sites(module, function)
            keep = [i for i in range(len(function.args)) if i not in dead]
            new_params = [function.ftype.params[i] for i in keep]
            function.ftype = FunctionType(function.ftype.ret, new_params)
            function.type = function.ftype
            old_args = function.args
            function.args = [old_args[i] for i in keep]
            for new_index, arg in enumerate(function.args):
                arg.index = new_index
            for call in sites:
                # Rebuild the call with fewer args (CallInst operands are
                # positional); easiest correct path: construct new call.
                new_call = CallInst(function,
                                    [call.args[i] for i in keep])
                new_call.name = call.name
                block = call.parent
                block.insert(block.instructions.index(call), new_call)
                call.replace_all_uses_with(new_call)
                call.erase_from_parent()
            changed = True
        return changed


@register_pass("globalopt")
class GlobalOpt(Pass):
    """Fold globals that are never stored to their initializer value, and
    delete stores to globals that are never read."""

    module_memo = True
    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        changed = False
        for gv in list(module.globals.values()):
            if gv.value_type.is_array():
                continue
            loads = [u for u in gv.users if isinstance(u, LoadInst)
                     and u.pointer is gv]
            stores = [u for u in gv.users if isinstance(u, StoreInst)
                      and u.pointer is gv]
            others = [u for u in gv.users
                      if u not in loads and u not in stores]
            if others:
                continue
            if not stores and gv.initializer is not None:
                from repro.ir import ConstantFloat
                if gv.value_type.is_float():
                    constant = ConstantFloat(gv.value_type, gv.initializer)
                else:
                    constant = ConstantInt(gv.value_type, gv.initializer)
                for load in loads:
                    load.replace_all_uses_with(constant)
                    load.erase_from_parent()
                changed = bool(loads) or changed
            elif not loads and stores:
                for store in stores:
                    store.erase_from_parent()
                changed = True
        return changed


@register_pass("globaldce")
class GlobalDCE(Pass):
    """Delete unreferenced functions and globals (main is the root)."""

    # Surviving functions are untouched (a deleted function had no live
    # call sites); their analyses all stay valid.  The removed functions'
    # cache entries are dropped by invalidate_module.
    preserved_analyses = PRESERVE_CFG | frozenset({"loopivs"})

    def run_on_module(self, module, am):
        changed = False
        # Functions reachable from main via calls.
        reachable = set()
        worklist = ["main"] if "main" in module.functions else []
        while worklist:
            name = worklist.pop()
            if name in reachable:
                continue
            reachable.add(name)
            function = module.functions[name]
            for block in function.blocks:
                for inst in block.instructions:
                    if isinstance(inst, CallInst) and \
                            not inst.is_intrinsic():
                        worklist.append(inst.callee.name)
        for name in list(module.functions):
            if name not in reachable:
                module.functions[name].clear_body()
                module.remove_function(name)
                changed = True
        for name, gv in list(module.globals.items()):
            if not gv.uses:
                module.remove_global(name)
                changed = True
        return changed


@register_pass("constmerge")
class ConstMerge(Pass):
    """Merge identical constant global arrays into one."""

    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        changed = False
        by_content = {}
        for name, gv in list(module.globals.items()):
            if not gv.is_constant_global or gv.initializer is None:
                continue
            key = (str(gv.value_type), tuple(gv.initializer)
                   if isinstance(gv.initializer, (list, tuple))
                   else gv.initializer)
            leader = by_content.get(key)
            if leader is None:
                by_content[key] = gv
            else:
                gv.replace_all_uses_with(leader)
                module.remove_global(name)
                changed = True
        return changed


@register_pass("called-value-propagation")
class CalledValuePropagation(Pass):
    """Propagate constant return values: a function whose every return
    yields the same constant lets callers use the constant directly
    (the call is kept for its side effects; DCE removes it if pure)."""

    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        changed = False
        constant_returns = {}
        for function in module.defined_functions():
            value = None
            consistent = True
            for block in function.blocks:
                term = block.terminator()
                if isinstance(term, RetInst) and term.value is not None:
                    if not term.value.is_constant():
                        consistent = False
                        break
                    if value is None:
                        value = term.value
                    elif not self._same_constant(value, term.value):
                        consistent = False
                        break
            if consistent and value is not None:
                constant_returns[function.name] = value
        for function in module.defined_functions():
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, CallInst) and \
                            not inst.is_intrinsic() and \
                            inst.callee.name in constant_returns and \
                            inst.is_used():
                        inst.replace_all_uses_with(
                            constant_returns[inst.callee.name])
                        changed = True
        return changed

    @staticmethod
    def _same_constant(a, b):
        from repro.ir import ConstantFloat
        if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
            return a.value == b.value
        if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
            return a.value == b.value
        return False


@register_pass("prune-eh")
class PruneEH(FunctionPass):
    """Without exceptions in the IR this reduces to removing unreachable
    blocks and marking functions that cannot trap."""

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        from repro.passes.simplifycfg import SimplifyCFG
        changed = SimplifyCFG._remove_unreachable(function)
        return changed


@register_pass("elim-avail-extern")
class ElimAvailExtern(Pass):
    """No linkage model exists in this IR, so the phase is a documented
    no-op (the PSS's inactive-subsequence logic exercises such phases)."""

    # A no-op trivially keeps the CFG analyses valid (never invoked
    # anyway: invalidation only runs when a pass reports a change).
    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        return False
