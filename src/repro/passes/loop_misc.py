"""Smaller loop phases: loop-deletion, indvars, loop-idiom, loop-sink,
loop-load-elim, loop-distribute, loop-unswitch.
"""

from repro.ir import (
    BinaryInst,
    BranchInst,
    CallInst,
    CondBranchInst,
    ConstantInt,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.ir.types import I64
from repro.passes.analysis import (
    PRESERVE_CFG,
    PRESERVE_NONE,
    domtree_of,
    loopivs_of,
)
from repro.passes.base import FunctionPass, register_pass
from repro.passes.cloning import clone_instruction, clone_region
from repro.passes.loop_canon import (
    ensure_canonical_loop,
    fixup_exit_phis,
    loop_is_lcssa,
    loop_is_simplified,
)
from repro.passes.loop_utils import (
    ensure_preheader_tracked,
    exit_phis_reference_loop,
    is_loop_invariant,
    loop_body_is_pure,
    loop_values_escape,
    loops_of,
)
from repro.passes.utils import (
    delete_dead_instructions,
    instruction_may_write,
    is_pure,
    must_alias,
    remove_block_from_phis,
    replace_and_erase,
)


def _drop_blocks(function, blocks):
    """Detach and remove ``blocks`` through
    :meth:`repro.ir.function.Function.remove_block` (loop teardown:
    operand references drop, maintained CFG edges disconnect, and any
    former successor's phi incoming lists are scrubbed in one step)."""
    for block in blocks:
        function.remove_block(block)


@register_pass("loop-deletion")
class LoopDeletion(FunctionPass):
    """Delete loops with no side effects whose results are unused.

    Requires a provably-finite loop (constant trip count) so that deleting
    it cannot turn a non-terminating program into a terminating one.
    """

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        info = loops_of(function, am)
        mutated = False
        for loop in info.innermost_loops():
            deleted, created = self._delete(function, loop, am)
            mutated |= created
            if deleted:
                return True  # structures stale; one deletion per run
        return mutated

    def _delete(self, function, loop, am=None):
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        if len(loop.exiting_blocks()) != 1 or \
                len(loop.exit_blocks()) != 1:
            return self._delete_multi_exit(function, loop, am, created)
        trip_count, _ = loopivs_of(function, am).trip_count(loop, preheader)
        if trip_count is None:
            return False, created
        if not loop_body_is_pure(loop):
            return False, created
        exit_blocks = loop.exit_blocks()
        if len(exit_blocks) != 1:
            return False, created
        exit_block = exit_blocks[0]
        # No value computed inside may be used outside, and exit phis
        # with entries from loop blocks would lose a predecessor.
        if loop_values_escape(loop) or \
                exit_phis_reference_loop([exit_block], loop):
            return False, created
        # Rewire the preheader straight to the exit, drop the loop blocks.
        preheader.set_terminator(BranchInst(exit_block))
        _drop_blocks(function, loop.ordered_blocks())
        return True, created

    def _delete_multi_exit(self, function, loop, am, created):
        """Delete a pure, provably-finite early-exit loop when all its
        (dedicated) exits trivially converge on one successor.

        Which exit fires at runtime is then irrelevant: every exit
        block is a phi-free lone branch to the same join, so the
        preheader can jump straight there.  Finiteness follows from the
        counted exit alone — early exits only leave *sooner*.
        """
        changed = created
        changed |= ensure_canonical_loop(function, loop, am)
        if not loop_is_simplified(loop):
            return False, changed
        preheader = loop.preheader()
        dom = domtree_of(function, am)
        if loopivs_of(function, am).counted_bound(loop, preheader,
                                                  dom) is None:
            return False, changed
        if not loop_body_is_pure(loop):
            return False, changed
        if loop_values_escape(loop):
            return False, changed
        exit_blocks = loop.exit_blocks()
        doomed = []
        if len(exit_blocks) == 1:
            # Several exiting edges, one exit block (the common
            # post-simplifycfg ``break`` shape): whichever edge fires,
            # control lands there — jump straight to it.
            target = exit_blocks[0]
            for phi in target.phis():
                if any(b in loop.blocks for b in phi.incoming_blocks):
                    return False, changed
        else:
            # Distinct exit blocks must trivially converge: each is a
            # phi-free lone branch to one common join.
            target = None
            for exit_block in exit_blocks:
                if any(p not in loop.blocks
                       for p in exit_block.predecessors()):
                    return False, changed
                if len(exit_block.instructions) != 1 or \
                        not isinstance(exit_block.terminator(),
                                       BranchInst):
                    return False, changed
                succ = exit_block.terminator().target
                if target is None:
                    target = succ
                elif target is not succ:
                    return False, changed
            if target is None or target in loop.blocks or \
                    target is preheader or target in exit_blocks or \
                    target.phis():
                return False, changed
            doomed = exit_blocks
        preheader.set_terminator(BranchInst(target))
        _drop_blocks(function, loop.ordered_blocks() + doomed)
        if am is not None:
            am.invalidate(function)
        return True, True


@register_pass("indvars")
class IndVarSimplify(FunctionPass):
    """Induction-variable strength reduction.

    ``iv * C`` inside a canonical loop is rewritten into a second
    induction variable updated by ``+ step*C`` — replacing a multiply in
    the loop body with an add.
    """

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        changed = False
        info = loops_of(function, am)
        for loop in sorted(info.loops, key=lambda lp: -lp.depth):
            changed |= self._strength_reduce(function, loop, am)
        return changed

    def _strength_reduce(self, function, loop, am=None):
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False
        iv = loopivs_of(function, am).induction_variable(loop, preheader)
        if iv is None:
            return created
        latches = loop.latches()
        if len(latches) != 1:
            return created
        latch = latches[0]
        changed = created
        for user in list(iv.phi.users):
            if not isinstance(user, BinaryInst) or user.opcode != "mul":
                continue
            if user.parent not in loop.blocks:
                continue
            factor = None
            if user.lhs is iv.phi and isinstance(user.rhs, ConstantInt):
                factor = user.rhs.value
            elif user.rhs is iv.phi and isinstance(user.lhs, ConstantInt):
                factor = user.lhs.value
            if factor is None or factor == 0:
                continue
            # The scaled IV phi tracks iv*C in lockstep with the original
            # phi, so it can replace the multiply anywhere in the loop.
            new_phi = PhiInst(I64, function.next_name("iv"))
            loop.header.insert(0, new_phi)
            # start' = start * C (computed in the preheader).
            start = iv.phi.incoming_value_for(preheader)
            if isinstance(start, ConstantInt):
                start_scaled = ConstantInt(I64, start.value * factor)
            else:
                start_scaled = BinaryInst("mul", start,
                                          ConstantInt(I64, factor))
                start_scaled.name = function.next_name("ivs")
                preheader.insert_before_terminator(start_scaled)
            update = BinaryInst("add", new_phi,
                                ConstantInt(I64, iv.step * factor))
            update.name = function.next_name("ivu")
            latch.insert_before_terminator(update)
            new_phi.add_incoming(start_scaled, preheader)
            new_phi.add_incoming(update, latch)
            # Preserve phi ordering invariant: ensure incoming matches
            # preds; header preds are exactly {preheader, latch}.
            replace_and_erase(user, new_phi)
            changed = True
        return changed


@register_pass("loop-idiom")
class LoopIdiom(FunctionPass):
    """Recognize memset loops: ``for (i=a;i<b;i++) arr[i] = C`` becomes a
    ``memset`` intrinsic executed in the preheader (the backend lowers it
    to a fast block operation)."""

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        info = loops_of(function, am)
        mutated = False
        for loop in info.innermost_loops():
            matched, created = self._match_memset(function, loop, am)
            mutated |= created
            if matched:
                return True
        return mutated

    def _match_memset(self, function, loop, am=None):
        if len(loop.exiting_blocks()) != 1 or \
                len(loop.exit_blocks()) != 1:
            return self._match_memset_multi_exit(function, loop, am)
        # cond/body/step frontend shape or rotated 1–2 block shapes.
        if len(loop.blocks) > 3:
            return False, False
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        trip_count, iv = loopivs_of(function, am).trip_count(loop, preheader)
        if trip_count is None or trip_count <= 0 or iv is None:
            return False, created
        if iv.step != 1:
            return False, created
        # The body must be exactly: gep(base, iv) ; store C -> gep ; iv
        # update ; compare ; branch.  Everything else — calls, loads,
        # and anything that may trap (a division by a non-constant
        # elides its trap if the loop is deleted) — disqualifies.
        store = None
        for block in loop.ordered_blocks():
            for inst in block.instructions:
                if isinstance(inst, StoreInst):
                    if store is not None:
                        return False, created
                    store = inst
                elif not (isinstance(inst, PhiInst)
                          or inst.is_terminator()
                          or is_pure(inst)):
                    return False, created
        if store is None:
            return False, created
        pointer = store.pointer
        if not isinstance(pointer, GEPInst):
            return False, created
        if pointer.index is not iv.phi:
            return False, created
        if not is_loop_invariant(pointer.base, loop):
            return False, created
        value = store.value
        if not value.is_constant() and not is_loop_invariant(value, loop):
            return False, created
        if value.is_constant() is False and \
                isinstance(value, Instruction) and \
                value.parent in loop.blocks:
            return False, created
        # Loop results must not escape.
        exit_blocks = loop.exit_blocks()
        if len(exit_blocks) != 1:
            return False, created
        if loop_values_escape(loop) or \
                exit_phis_reference_loop(exit_blocks, loop):
            return False, created
        # Element size must be one cell (scalars only).
        if pointer.type.pointee.size_cells() != 1:
            return False, created
        if not isinstance(iv.start, ConstantInt):
            return False, created
        # Build: dest = gep(base, start); memset(dest, value, trip_count).
        dest = GEPInst(pointer.base, iv.start)
        dest.name = function.next_name("ms")
        preheader.insert_before_terminator(dest)
        memset = CallInst("memset", [dest, value,
                                     ConstantInt(I64, trip_count)])
        preheader.insert_before_terminator(memset)
        # Delete the loop (same mechanics as loop-deletion).
        exit_block = exit_blocks[0]
        preheader.set_terminator(BranchInst(exit_block))
        _drop_blocks(function, loop.ordered_blocks())
        return True, created

    def _match_memset_multi_exit(self, function, loop, am):
        """Memset recognition on early-exit counted loops.

        When every exit condition is an IV-vs-constant compare, the
        exact number of store executions follows from the per-exit
        simulation (``for (i = 0; i < 64; i++) { if (i == 10) break;
        a[i] = C; }`` memsets 10 cells).  The store must run on every
        completed iteration (its block dominates the latch); the final,
        partially-executed iteration contributes iff the store's block
        dominates the firing exit.
        """
        # cond/body/store/step plus the frontend's unreachable filler
        # blocks (simplifycfg may not have run yet).
        if len(loop.blocks) > 6:
            return False, False
        changed = ensure_canonical_loop(function, loop, am)
        if not loop_is_simplified(loop):
            return False, changed
        preheader = loop.preheader()
        dom = domtree_of(function, am)
        plan = loopivs_of(function, am).exit_plan(loop, preheader, dom)
        if plan is None:
            return False, changed
        store = None
        for block in loop.ordered_blocks():
            for inst in block.instructions:
                if isinstance(inst, StoreInst):
                    if store is not None:
                        return False, changed
                    store = inst
                elif not (isinstance(inst, PhiInst)
                          or inst.is_terminator()
                          or is_pure(inst)):
                    # Calls, loads, potential traps: deleting the loop
                    # would elide an observable effect.
                    return False, changed
        if store is None:
            return False, changed
        pointer = store.pointer
        if not isinstance(pointer, GEPInst) or \
                not is_loop_invariant(pointer.base, loop):
            return False, changed
        # The store may be indexed by any of the loop's simulated
        # counters (two-IV loops): pick the one the GEP reads.
        iv = next((v for v in plan.ivs if v.phi is pointer.index), None)
        if iv is None or iv.step != 1 or \
                not isinstance(iv.start, ConstantInt):
            return False, changed
        value = store.value
        if not value.is_constant() and \
                not is_loop_invariant(value, loop):
            return False, changed
        latch = loop.latches()[0]
        if not dom.dominates(store.parent, latch):
            return False, changed
        count = plan.executions_of(store.parent, dom)
        if count <= 0:
            return False, changed
        # Loop results must not escape (exit phis included).
        if loop_values_escape(loop) or \
                exit_phis_reference_loop(loop.exit_blocks(), loop):
            return False, changed
        if pointer.type.pointee.size_cells() != 1:
            return False, changed
        target = plan.taken_target
        if target.phis():
            return False, changed
        dest = GEPInst(pointer.base, iv.start)
        dest.name = function.next_name("ms")
        preheader.insert_before_terminator(dest)
        memset = CallInst("memset", [dest, value,
                                     ConstantInt(I64, count)])
        preheader.insert_before_terminator(memset)
        preheader.set_terminator(BranchInst(target))
        # Non-taken dedicated exits lose their last predecessor; the
        # backend emits every block in ``function.blocks``, so trivial
        # (lone-branch, value-free) ones are dropped with the loop
        # rather than left as dead code.  Non-trivial exits (early
        # ``return`` bodies) stay for simplifycfg: dropping them could
        # detach values their successors still reference.
        doomed = []
        for exit_block in loop.exit_blocks():
            if exit_block is target or \
                    len(exit_block.instructions) != 1 or \
                    not isinstance(exit_block.terminator(), BranchInst):
                continue
            remove_block_from_phis(exit_block,
                                   exit_block.terminator().target)
            doomed.append(exit_block)
        _drop_blocks(function, loop.ordered_blocks() + doomed)
        if am is not None:
            am.invalidate(function)
        return True, True


@register_pass("loop-sink")
class LoopSink(FunctionPass):
    """Sink pure loop computations used only outside the loop into the
    exit block(s) — they then execute once instead of per-iteration.

    Single-exit loops with a private exit take the direct move; loops
    with several exits (or a shared exit block) are put into LCSSA
    form first, after which every outside use reads an exit phi and
    the computation can be rematerialized per using exit.
    """

    # Moves pure instructions between existing blocks: the CFG, the IV
    # chains, the loop nest and the canonical loop forms all survive —
    # unless the multi-exit path had to canonicalize first (tracked
    # per-run, reported via ``preserved_for``).
    preserved_analyses = PRESERVE_CFG | frozenset({"loopivs",
                                                   "loopcanon"})

    def __init__(self):
        self._canonicalized = False   # sticky: drives preserved_for
        self._sweep_dirty = False     # per-loop: drives sweep restarts

    def preserved_for(self, function):
        from repro.passes.analysis import PRESERVE_NONE
        if self._canonicalized:
            return PRESERVE_NONE
        return self.preserved_analyses

    def run_on_function(self, function, am=None):
        # Canonicalization creates blocks, which stales the other Loop
        # objects' membership sets — restart the sweep on fresh loop
        # info after any structural change (idempotent, so this
        # terminates).
        changed = False
        self._canonicalized = False
        for _ in range(64):
            info = loops_of(function, am)
            restart = False
            for loop in info.loops:
                exit_blocks = loop.exit_blocks()
                if len(exit_blocks) == 1 and \
                        len(exit_blocks[0].predecessors()) == 1:
                    changed |= self._sink_single_exit(loop,
                                                      exit_blocks[0])
                    continue
                self._sweep_dirty = False
                changed |= self._sink_multi_exit(function, loop, am)
                if self._sweep_dirty:
                    restart = True
                    break
            if not restart:
                break
        return changed

    @staticmethod
    def _sinkable(inst, loop):
        if isinstance(inst, PhiInst) or inst.is_terminator():
            return False
        if not is_pure(inst):
            return False
        users = inst.users
        if not users:
            return False
        if any(u.parent in loop.blocks for u in users):
            return False
        # All operands must dominate the exit: loop-invariant
        # operands do; in-loop operands do not in general
        # (values from the last iteration are only available
        # if defined in a block dominating the exit edge) —
        # restrict to invariant operands.
        return all(is_loop_invariant(op, loop)
                   for op in inst.operands)

    def _sink_single_exit(self, loop, exit_block):
        changed = False
        for block in loop.ordered_blocks():
            for inst in list(block.instructions):
                if not self._sinkable(inst, loop):
                    continue
                block.remove_instruction(inst)
                index = exit_block.first_non_phi_index()
                exit_block.insert(index, inst)
                changed = True
        return changed

    def _sink_multi_exit(self, function, loop, am):
        changed = ensure_canonical_loop(function, loop, am, lcssa=True)
        if changed:
            self._canonicalized = True
            self._sweep_dirty = True
        if not (loop_is_simplified(loop) and loop_is_lcssa(loop)):
            return changed
        exit_ids = {id(b) for b in loop.exit_blocks()}
        for block in loop.ordered_blocks():
            for inst in list(block.instructions):
                if not self._sinkable(inst, loop):
                    continue
                # Under LCSSA every outside user is an exit phi; the
                # computation sinks only when each using phi merges
                # nothing but this instruction.
                users = inst.users
                if not all(isinstance(u, PhiInst)
                           and id(u.parent) in exit_ids
                           and all(v is inst for v in u.operands)
                           for u in users):
                    continue
                block.remove_instruction(inst)
                for position, phi in enumerate(users):
                    if position == 0:
                        replacement = inst
                    else:
                        replacement = clone_instruction(inst, {}, {},
                                                        function)
                    target = phi.parent
                    target.insert(target.first_non_phi_index(),
                                  replacement)
                    replace_and_erase(phi, replacement)
                changed = True
        return changed


@register_pass("loop-load-elim")
class LoopLoadElim(FunctionPass):
    """Store-to-load forwarding within a loop iteration: a load from the
    same address as an earlier store in the same block takes the stored
    value directly."""

    # Value replacements only; loop structure and canonical forms
    # survive (a forwarded exit-phi operand stays loop-defined).
    preserved_analyses = PRESERVE_CFG | frozenset({"loopcanon"})

    def run_on_function(self, function, am=None):
        changed = False
        info = loops_of(function, am)
        for loop in info.loops:
            for block in loop.ordered_blocks():
                available = None  # (pointer, value)
                for inst in list(block.instructions):
                    if isinstance(inst, StoreInst):
                        available = (inst.pointer, inst.value)
                    elif isinstance(inst, LoadInst) and available:
                        if must_alias(available[0], inst.pointer):
                            replace_and_erase(inst, available[1])
                            changed = True
                    elif isinstance(inst, CallInst) and \
                            inst.callee_may_access_memory():
                        available = None
                    elif available and \
                            instruction_may_write(inst, available[0]):
                        available = None
        return changed


@register_pass("loop-distribute")
class LoopDistribute(FunctionPass):
    """Split a single-block counted loop whose body consists of two
    independent store chains into two loops.

    Very conservative: requires a canonical IV, a pure body except for
    stores to two different base arrays with no loads, and no values
    escaping the loop.
    """

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        info = loops_of(function, am)
        mutated = False
        for loop in info.innermost_loops():
            if len(loop.blocks) != 1:
                continue
            distributed, created = self._distribute(function, loop, am)
            mutated |= created
            if distributed:
                return True
        return mutated

    def _distribute(self, function, loop, am=None):
        from repro.passes.utils import underlying_object

        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        iv = loopivs_of(function, am).induction_variable(loop, preheader)
        if iv is None:
            return False, created
        block = loop.header
        stores = [i for i in block.instructions if isinstance(i, StoreInst)]
        if len(stores) < 2:
            return False, created
        if any(isinstance(i, (LoadInst, CallInst))
               for i in block.instructions):
            return False, created
        bases = {id(underlying_object(s.pointer)) for s in stores}
        if len(bases) < 2:
            return False, created
        for inst in block.instructions:
            for user in inst.users:
                if user.parent is not block:
                    return False, created
        # Partition stores by base; keep the first base's stores in the
        # original loop and move the rest into a cloned loop that runs
        # afterwards.
        exit_blocks = loop.exit_blocks()
        if len(exit_blocks) != 1:
            return False, created
        exit_block = exit_blocks[0]
        if exit_block.phis():
            return False, created
        # Validate the exit terminator BEFORE cloning anything, so a
        # bail-out below cannot leave half-attached cloned blocks behind.
        original_exit_term = None
        for inst in block.instructions:
            if isinstance(inst, CondBranchInst):
                original_exit_term = inst
        if original_exit_term is None:
            return False, created
        first_base = underlying_object(stores[0].pointer)
        moved = [s for s in stores
                 if underlying_object(s.pointer) is not first_base]
        value_map, block_map = clone_region([block], function, "dist")
        cloned = block_map[id(block)]
        # Original loop: delete the moved stores.
        for store in moved:
            store.erase_from_parent()
        # Cloned loop: delete the kept stores.
        for store in stores:
            if store not in moved:
                value_map[id(store)].erase_from_parent()
        # Chain: original loop exits into the cloned loop's preheader.
        # Cloned header phis currently have incoming from preheader and
        # cloned latch; redirect entry edge.
        # The original loop's exit edge now targets the cloned block's
        # entry; the cloned loop's exit edge goes to the real exit.
        # Cloned phi entries from the preheader stay (the clone is entered
        # once, from the original's exit edge) — rewrite that incoming
        # block to the original block.
        original_exit_term.replace_successor(exit_block, cloned)
        for phi in cloned.phis():
            phi.replace_incoming_block(preheader, block)
        delete_dead_instructions(function)
        return True, created


@register_pass("loop-unswitch")
class LoopUnswitch(FunctionPass):
    """Hoist a loop-invariant branch out of the loop by versioning it:
    two copies of the loop, one per branch direction, selected once
    outside."""

    preserved_analyses = PRESERVE_NONE
    MAX_LOOP_SIZE = 60

    def run_on_function(self, function, am=None):
        info = loops_of(function, am)
        mutated = False
        for loop in info.innermost_loops():
            unswitched, created = self._unswitch(function, loop, am)
            mutated |= created
            if unswitched:
                return True
        return mutated

    def _unswitch(self, function, loop, am=None):
        if sum(len(b.instructions) for b in loop.blocks) > \
                self.MAX_LOOP_SIZE:
            return False, False
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        # Find an invariant conditional branch that is not the exit test.
        candidate = None
        for block in loop.ordered_blocks():
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            if not is_loop_invariant(term.condition, loop):
                continue
            if term.true_target not in loop.blocks or \
                    term.false_target not in loop.blocks:
                continue  # the exit test; unswitching it is loop-rotate's job
            candidate = term
            break
        if candidate is None:
            return False, created
        exit_blocks = loop.exit_blocks()
        if len(exit_blocks) != 1:
            # Early-exit loops version on canonical form: with every
            # escaping value routed through exit phis (LCSSA), the
            # two-version merge is a per-exit phi extension.
            created |= ensure_canonical_loop(function, loop, am,
                                            lcssa=True)
            if not (loop_is_simplified(loop) and loop_is_lcssa(loop)):
                return False, created
            preheader = loop.preheader()
            exit_blocks = loop.exit_blocks()
        exit_block = exit_blocks[0]
        exit_ids = {id(b) for b in exit_blocks}
        orig_exit_preds = [p for p in exit_block.predecessors()
                           if p in loop.blocks]

        blocks = [b for b in function.blocks if b in loop.blocks]
        value_map, block_map = clone_region(blocks, function, "unsw")
        clone_block_ids = {id(b) for b in block_map.values()}

        # Existing exit phis gain entries for the cloned exiting edges.
        fixup_exit_phis(loop, value_map, block_map)
        # In-loop values used outside the loop merge through fresh exit
        # phis (both versions produce a candidate value).  Under LCSSA
        # (the multi-exit case) every outside user already reads an
        # exit phi, so this loop finds nothing there.
        for block in blocks:
            for inst in list(block.instructions):
                if inst.type.is_void():
                    continue
                outside_users = [
                    (user, index) for user, index in list(inst.uses)
                    if user.parent is not None
                    and user.parent not in loop.blocks
                    and id(user.parent) not in clone_block_ids
                    and not (isinstance(user, PhiInst)
                             and id(user.parent) in exit_ids)]
                if not outside_users:
                    continue
                merge = PhiInst(inst.type, function.next_name("unswx"))
                exit_block.insert(0, merge)
                for pred in orig_exit_preds:
                    merge.add_incoming(inst, pred)
                    merge.add_incoming(value_map.get(id(inst), inst),
                                       block_map[id(pred)])
                for user, index in outside_users:
                    user.set_operand(index, merge)
        # Preheader now branches on the invariant condition between the
        # two versions.
        condition = candidate.condition
        true_header = loop.header
        false_header = block_map[id(loop.header)]
        preheader.set_terminator(CondBranchInst(condition, true_header,
                                                false_header))
        # Cloned header phis: entries from the preheader survive; entries
        # from cloned latches already remapped by clone_region.
        # In the "true" version the branch always goes to true_target; in
        # the clone, always to false_target.
        candidate_clone = value_map[id(candidate)]
        for term_inst, taken in ((candidate, candidate.true_target),
                                 (candidate_clone,
                                  block_map[id(candidate.false_target)])):
            block = term_inst.parent
            dead = (term_inst.false_target
                    if taken is term_inst.true_target or
                    taken is block_map.get(id(candidate.true_target))
                    else term_inst.true_target)
            # Recompute for the clone: taken is the mapped false target.
            if term_inst is candidate_clone:
                dead = candidate_clone.true_target
                taken = candidate_clone.false_target
            else:
                dead = candidate.false_target
                taken = candidate.true_target
            block.set_terminator(BranchInst(taken))
            remove_block_from_phis(block, dead)
        delete_dead_instructions(function)
        return True, created
