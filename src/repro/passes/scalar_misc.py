"""Scalar phases: reassociate, tailcallelim, jump-threading,
correlated-propagation, memcpyopt, mldst-motion, float2int, div-rem-pairs,
lower-expect, speculative-execution, alignment-from-assumptions,
callsite-splitting, sroa.
"""

from repro.ir import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    ConstantInt,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.types import I64
from repro.passes.analysis import PRESERVE_CFG, PRESERVE_NONE, domtree_of
from repro.passes.base import FunctionPass, Pass, register_pass
from repro.passes.utils import (
    delete_dead_instructions,
    fold_binary,
    is_pure,
    must_alias,
    replace_and_erase,
)
from repro.passes.worklist import delete_dead_worklist, use_worklist


@register_pass("reassociate")
class Reassociate(FunctionPass):
    """Canonicalize commutative chains: gather the leaves of a single-use
    add/mul tree, sort constants last, fold them, and rebuild a left-
    leaning chain.  This exposes CSE/constant-folding opportunities."""

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.parent is None or not isinstance(inst, BinaryInst):
                    continue
                if inst.opcode not in ("add", "mul"):
                    continue
                # Only rewrite tree roots (no same-opcode single-use user).
                if any(isinstance(u, BinaryInst) and u.opcode == inst.opcode
                       for u in inst.users):
                    continue
                leaves = self._gather(inst, inst.opcode)
                if leaves is None or len(leaves) < 3:
                    continue
                constants = [l for l in leaves
                             if isinstance(l, ConstantInt)]
                if len(constants) < 2:
                    continue
                variables = [l for l in leaves
                             if not isinstance(l, ConstantInt)]
                folded = constants[0]
                for constant in constants[1:]:
                    folded = fold_binary(inst.opcode, folded, constant,
                                         inst.type)
                ordered = variables + ([folded] if not self._is_identity(
                    inst.opcode, folded) else [])
                if not ordered:
                    ordered = [folded]
                block_obj = inst.parent
                index = block_obj.instructions.index(inst)
                current = ordered[0]
                for leaf in ordered[1:]:
                    new_inst = BinaryInst(inst.opcode, current, leaf)
                    new_inst.name = function.next_name("ra")
                    block_obj.insert(index, new_inst)
                    index += 1
                    current = new_inst
                if current is not inst:
                    replace_and_erase(inst, current)
                    changed = True
        if use_worklist(am):
            changed |= delete_dead_worklist(function)
        else:
            changed |= delete_dead_instructions(function)
        return changed

    @staticmethod
    def _is_identity(opcode, constant):
        return (opcode == "add" and constant.value == 0) or \
               (opcode == "mul" and constant.value == 1)

    @staticmethod
    def _gather(root, opcode, limit=8):
        """Collect leaves of a single-use same-opcode tree."""
        leaves = []
        worklist = [(root, True)]
        while worklist:
            node, is_root = worklist.pop()
            if isinstance(node, BinaryInst) and node.opcode == opcode and \
                    (is_root or len(node.uses) == 1):
                worklist.append((node.lhs, False))
                worklist.append((node.rhs, False))
            else:
                leaves.append(node)
            if len(leaves) + len(worklist) > limit:
                return None
        return leaves


@register_pass("tailcallelim")
class TailCallElim(FunctionPass):
    """Turn self-recursive tail calls into loops.

    ``return f(args...)`` inside ``f`` becomes: rewrite the entry into a
    loop header with phis for the parameters, and the tail call becomes a
    back edge updating the phis.
    """

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        tail_sites = []
        for block in function.blocks:
            instructions = block.instructions
            if len(instructions) < 2:
                continue
            term = instructions[-1]
            call = instructions[-2]
            if not isinstance(term, RetInst) or \
                    not isinstance(call, CallInst) or call.is_intrinsic():
                continue
            if call.callee is not function:
                continue
            if term.value is not call and term.value is not None:
                continue
            tail_sites.append((block, call, term))
        if not tail_sites:
            return False
        # Re-entering the body must not observe stale locals: with allocas
        # present, each recursive activation would need fresh slots, so the
        # phase only fires on alloca-free functions (run after mem2reg).
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, AllocaInst):
                    return False
        # Build a new header: old entry becomes the loop body target.
        old_entry = function.entry
        new_entry = function.append_block("tce.entry")
        new_entry.insert_before(old_entry)
        new_entry.append(BranchInst(old_entry))
        phis = []
        for arg in function.args:
            phi = PhiInst(arg.type, function.next_name(f"tce.{arg.name}"))
            old_entry.insert(len(phis), phi)
            phi.add_incoming(arg, new_entry)
            phis.append(phi)
            for user, index in list(arg.uses):
                if user is not phi:
                    user.set_operand(index, phi)
        for block, call, term in tail_sites:
            for phi, actual in zip(phis, call.args):
                phi.add_incoming(actual, block)
            term.erase_from_parent()
            call.erase_from_parent()
            block.set_terminator(BranchInst(old_entry))
        return True


@register_pass("jump-threading")
class JumpThreading(FunctionPass):
    """Thread branches over phi-of-constant conditions: when a block's
    conditional branch tests a phi whose incoming value from predecessor P
    is a constant, P can jump directly to the decided successor."""

    preserved_analyses = PRESERVE_NONE

    def run_on_function(self, function, am=None):
        changed = False
        for block in list(function.blocks):
            if block not in function.blocks:
                continue
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            condition = term.condition
            phi = None
            if isinstance(condition, PhiInst) and condition.parent is block:
                phi = condition
            elif isinstance(condition, ICmpInst) and \
                    condition.parent is block and \
                    isinstance(condition.operands[0], PhiInst) and \
                    condition.operands[0].parent is block and \
                    isinstance(condition.operands[1], ConstantInt) and \
                    len(condition.operands[0].uses) == 1:
                phi = condition.operands[0]
            if phi is None:
                continue
            # Only thread through blocks that do nothing else (phis +
            # optional compare + condbr): otherwise we would need to clone
            # the block body per predecessor.
            body = [i for i in block.instructions
                    if not isinstance(i, PhiInst) and i is not term
                    and i is not condition]
            if body:
                continue
            if len(block.phis()) != 1:
                continue
            for value, pred in list(phi.incoming()):
                if not isinstance(value, ConstantInt):
                    continue
                if pred not in function.blocks:
                    continue
                if isinstance(condition, ICmpInst):
                    folded = {"eq": value.value ==
                              condition.operands[1].value,
                              "ne": value.value !=
                              condition.operands[1].value,
                              "slt": value.value <
                              condition.operands[1].value,
                              "sle": value.value <=
                              condition.operands[1].value,
                              "sgt": value.value >
                              condition.operands[1].value,
                              "sge": value.value >=
                              condition.operands[1].value}[
                                  condition.predicate]
                    target = term.true_target if folded \
                        else term.false_target
                else:
                    target = term.true_target if value.value \
                        else term.false_target
                if target is block or target.phis():
                    continue
                # Redirect pred around this block.
                pred.terminator().replace_successor(block, target)
                phi.remove_incoming(pred)
                changed = True
                if not phi.incoming_blocks:
                    # Block became unreachable; leave cleanup to
                    # simplifycfg but keep IR consistent.
                    break
        return changed


@register_pass("correlated-propagation")
class CorrelatedPropagation(FunctionPass):
    """Replace a value with a constant in regions dominated by an
    equality test: after ``if (x == C)`` the true block knows ``x == C``.
    """

    # Operand rewrites only; no CFG edits.
    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        dom = domtree_of(function, am)
        changed = False
        for block in function.blocks:
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            condition = term.condition
            if not isinstance(condition, ICmpInst):
                continue
            if condition.predicate != "eq":
                continue
            lhs, rhs = condition.operands
            if not isinstance(rhs, ConstantInt) or \
                    isinstance(lhs, ConstantInt):
                continue
            true_block = term.true_target
            if true_block is term.false_target:
                continue
            # The true block must be dominated by this edge: it has the
            # branch block as unique predecessor.
            if true_block.predecessors() != [block]:
                continue
            for user, index in list(lhs.uses):
                if user is condition:
                    continue
                if isinstance(user, PhiInst):
                    continue
                if user.parent is not None and \
                        dom.dominates(true_block, user.parent):
                    user.set_operand(index, rhs)
                    changed = True
        return changed


@register_pass("memcpyopt")
class MemCpyOpt(FunctionPass):
    """Collapse runs of stores of one value to consecutive constant
    addresses into a ``memset`` intrinsic (≥ 4 elements)."""

    preserved_analyses = PRESERVE_CFG
    MIN_RUN = 4

    def run_on_function(self, function, am=None):
        from repro.passes.utils import _constant_offset, underlying_object

        changed = False
        for block in function.blocks:
            run = []  # list of (store, base, offset)
            instructions = block.instructions
            index = 0
            while index <= len(instructions):
                inst = instructions[index] if index < len(instructions) \
                    else None
                extended = False
                if isinstance(inst, StoreInst):
                    pointer = inst.pointer
                    base = underlying_object(pointer)
                    offset = _constant_offset(pointer)
                    if offset is not None:
                        if not run:
                            run = [(inst, base, offset)]
                            extended = True
                        else:
                            _, rbase, roffset = run[-1]
                            same_value = run[0][0].value is inst.value
                            if rbase is base and offset == roffset + 1 and \
                                    same_value:
                                run.append((inst, base, offset))
                                extended = True
                if not extended:
                    if len(run) >= self.MIN_RUN:
                        self._replace_run(function, block, run)
                        changed = True
                        instructions = block.instructions
                        index = 0
                        run = []
                        continue
                    run = []
                    if isinstance(inst, StoreInst):
                        pointer = inst.pointer
                        base = underlying_object(pointer)
                        offset = _constant_offset(pointer)
                        if offset is not None:
                            run = [(inst, base, offset)]
                index += 1
        return changed

    @staticmethod
    def _replace_run(function, block, run):
        first_store = run[0][0]
        count = len(run)
        value = first_store.value
        index = block.instructions.index(first_store)
        memset = CallInst("memset",
                          [first_store.pointer, value,
                           ConstantInt(I64, count)])
        block.insert(index, memset)
        for store, _, _ in run:
            store.erase_from_parent()


@register_pass("mldst-motion")
class MergedLoadStoreMotion(FunctionPass):
    """Sink identical stores from both arms of a diamond into the join
    block (the classic mldst-motion store sinking)."""

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            left, right = term.true_target, term.false_target
            if left is right:
                continue
            if not (isinstance(left.terminator(), BranchInst)
                    and isinstance(right.terminator(), BranchInst)):
                continue
            join = left.terminator().target
            if join is not right.terminator().target:
                continue
            if left.predecessors() != [block] or \
                    right.predecessors() != [block]:
                continue
            left_stores = [i for i in left.instructions
                           if isinstance(i, StoreInst)]
            right_stores = [i for i in right.instructions
                            if isinstance(i, StoreInst)]
            if not left_stores or not right_stores:
                continue
            ls, rs = left_stores[-1], right_stores[-1]
            # Must be the last memory operation in each arm.
            if left.instructions[-2:] != [ls, left.terminator()] or \
                    right.instructions[-2:] != [rs, right.terminator()]:
                continue
            if ls.pointer is not rs.pointer:
                if not must_alias(ls.pointer, rs.pointer):
                    continue
                # The sunk store reuses one of the pointers: it must be
                # defined above the diamond, not inside an arm.
                from repro.ir import Instruction
                if isinstance(ls.pointer, Instruction) and \
                        ls.pointer.parent in (left, right):
                    continue
            if ls.value is rs.value:
                merged_value = ls.value
            else:
                phi = PhiInst(ls.value.type, function.next_name("mls"))
                join.insert(0, phi)
                phi.add_incoming(ls.value, left)
                phi.add_incoming(rs.value, right)
                merged_value = phi
            new_store = StoreInst(merged_value, ls.pointer)
            join.insert(join.first_non_phi_index(), new_store)
            ls.erase_from_parent()
            rs.erase_from_parent()
            changed = True
        return changed


@register_pass("float2int")
class Float2Int(FunctionPass):
    """Demote float arithmetic on sitofp-ed integers consumed only by
    fptosi back into integer arithmetic."""

    preserved_analyses = PRESERVE_CFG
    _SAFE = {"fadd": "add", "fsub": "sub", "fmul": "mul"}

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryInst) or \
                        inst.opcode not in self._SAFE:
                    continue
                lhs, rhs = inst.lhs, inst.rhs
                if not (isinstance(lhs, CastInst) and lhs.opcode == "sitofp"
                        and isinstance(rhs, CastInst)
                        and rhs.opcode == "sitofp"):
                    continue
                users = inst.users
                if not users or not all(
                        isinstance(u, CastInst) and u.opcode == "fptosi"
                        for u in users):
                    continue
                new_inst = BinaryInst(self._SAFE[inst.opcode],
                                      lhs.value, rhs.value)
                new_inst.name = function.next_name("f2i")
                block.insert(block.instructions.index(inst), new_inst)
                for user in list(users):
                    user.replace_all_uses_with(new_inst)
                    user.erase_from_parent()
                inst.erase_from_parent()
                changed = True
        if use_worklist(am):
            changed |= delete_dead_worklist(function)
        else:
            changed |= delete_dead_instructions(function)
        return changed


@register_pass("div-rem-pairs")
class DivRemPairs(FunctionPass):
    """When both ``a / b`` and ``a % b`` exist in the same block, compute
    the remainder as ``a - (a/b)*b``, saving one division."""

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            divs = {}
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryInst):
                    continue
                key = (id(inst.lhs), id(inst.rhs))
                if inst.opcode == "sdiv":
                    divs.setdefault(key, inst)
                elif inst.opcode == "srem" and key in divs:
                    div = divs[key]
                    if block.instructions.index(div) > \
                            block.instructions.index(inst):
                        continue
                    mul = BinaryInst("mul", div, inst.rhs)
                    mul.name = function.next_name("drp")
                    sub = BinaryInst("sub", inst.lhs, mul)
                    sub.name = function.next_name("drp")
                    index = block.instructions.index(inst)
                    block.insert(index, mul)
                    block.insert(index + 1, sub)
                    replace_and_erase(inst, sub)
                    changed = True
        return changed


@register_pass("lower-expect")
class LowerExpect(Pass):
    """The IR has no ``llvm.expect`` intrinsic or branch-weight metadata;
    the phase exists for sequence compatibility and is a documented no-op.
    """

    # A no-op trivially keeps the CFG analyses valid (never consulted:
    # invalidation only runs when a pass reports a change).
    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        return False


@register_pass("alignment-from-assumptions")
class AlignmentFromAssumptions(Pass):
    """Cell-addressed memory has no alignment; documented no-op."""

    preserved_analyses = PRESERVE_CFG

    def run_on_module(self, module, am):
        return False


@register_pass("speculative-execution")
class SpeculativeExecution(FunctionPass):
    """Hoist cheap, pure, single instructions from both targets of a
    conditional branch into the branching block (if-conversion prep)."""

    # Moves instructions between existing blocks; edges untouched.
    preserved_analyses = PRESERVE_CFG
    MAX_HOIST = 4

    def run_on_function(self, function, am=None):
        changed = False
        for block in function.blocks:
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                continue
            for target in (term.true_target, term.false_target):
                if target.predecessors() != [block]:
                    continue
                hoisted = 0
                for inst in list(target.instructions):
                    if inst.is_terminator() or isinstance(inst, PhiInst):
                        break
                    if not is_pure(inst) or isinstance(inst, LoadInst):
                        break
                    # Operands must dominate the branch block: they cannot
                    # be defined in ``target`` itself (we hoist in order,
                    # so earlier hoisted instructions are fine).
                    if any(isinstance(op, Instruction)
                           and op.parent is target
                           for op in inst.operands):
                        break
                    if hoisted >= self.MAX_HOIST:
                        break
                    target.remove_instruction(inst)
                    block.insert_before_terminator(inst)
                    hoisted += 1
                    changed = True
        return changed


@register_pass("callsite-splitting")
class CallSiteSplitting(FunctionPass):
    """Split a call whose argument is a phi of constants into per-
    predecessor calls with the constant bound — enabling ipsccp/inlining
    specialization.  Conservative shape: block contains only the phi(s),
    the call, and the terminator, and the call's users are phis or local.
    """

    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        for block in list(function.blocks):
            phis = block.phis()
            if len(phis) != 1:
                continue
            phi = phis[0]
            body = block.instructions[len(phis):]
            if len(body) != 2:
                continue
            call, term = body
            if not isinstance(call, CallInst) or call.is_intrinsic():
                continue
            if not isinstance(term, BranchInst):
                continue
            if phi not in call.operands:
                continue
            if len(phi.uses) != 1:
                continue
            if not all(isinstance(v, ConstantInt) for v in phi.operands):
                continue
            preds = block.predecessors()
            if len(preds) < 2 or len(preds) != len(phi.incoming_blocks):
                continue
            successor = term.target
            if successor.phis():
                continue
            if call.is_used():
                continue  # keeping the result would need a merge phi
            # Split: each predecessor gets its own copy of the call.
            for value, pred in list(phi.incoming()):
                args = [value if a is phi else a for a in call.args]
                new_call = CallInst(call.callee, args)
                pred_term = pred.terminator()
                pred.insert(pred.instructions.index(pred_term), new_call)
            call.erase_from_parent()
            return True
        return False


@register_pass("sroa")
class SROA(FunctionPass):
    """Scalar replacement of aggregates.

    Splits small, non-escaping, constant-indexed array allocas into one
    scalar alloca per element, then lets mem2reg promote them.  Scalar
    allocas are promoted directly (mem2reg subsumed).
    """

    # Alloca splitting + SSA construction: CFG untouched.
    preserved_analyses = PRESERVE_CFG
    MAX_ELEMENTS = 16

    def run_on_function(self, function, am=None):
        changed = self._split_arrays(function)
        from repro.passes.mem2reg import Mem2Reg
        changed |= Mem2Reg().run_on_function(function, am)
        return changed

    def _split_arrays(self, function):
        changed = False
        for inst in list(function.entry.instructions):
            if not isinstance(inst, AllocaInst):
                continue
            atype = inst.allocated_type
            if not atype.is_array() or atype.count > self.MAX_ELEMENTS:
                continue
            if not atype.element.is_scalar():
                continue
            # Every use must be a GEP with a constant in-bounds index,
            # itself used only by loads/stores.
            geps = []
            ok = True
            for user in inst.users:
                if isinstance(user, GEPInst) and user.base is inst and \
                        isinstance(user.index, ConstantInt) and \
                        0 <= user.index.value < atype.count:
                    if all(isinstance(u, LoadInst) or
                           (isinstance(u, StoreInst) and u.value is not user)
                           for u in user.users):
                        geps.append(user)
                    else:
                        ok = False
                        break
                else:
                    ok = False
                    break
            if not ok or not geps:
                continue
            scalars = []
            for element_index in range(atype.count):
                scalar = AllocaInst(atype.element,
                                    function.next_name("sroa"))
                function.entry.insert(0, scalar)
                scalars.append(scalar)
            for gep in list(geps):
                replace_and_erase(gep, scalars[gep.index.value])
            inst.erase_from_parent()
            changed = True
        return changed
