"""Region/function cloning with value remapping.

Used by loop-unroll (body copies), loop-unswitch (loop versioning), and
inline (callee body into caller).
"""

from repro.ir import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)


def clone_instruction(inst, value_map, block_map, function):
    """Clone one instruction, remapping operands (and, for phis and
    terminators, blocks).  Phi incoming values are remapped by the caller
    after all blocks exist (two-phase cloning)."""

    def remap(value):
        return value_map.get(id(value), value)

    def remap_block(block):
        return block_map.get(id(block), block)

    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.opcode, remap(inst.lhs), remap(inst.rhs))
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.opcode, remap(inst.value), inst.type)
    elif isinstance(inst, AllocaInst):
        clone = AllocaInst(inst.allocated_type)
    elif isinstance(inst, LoadInst):
        clone = LoadInst(remap(inst.pointer))
    elif isinstance(inst, StoreInst):
        clone = StoreInst(remap(inst.value), remap(inst.pointer))
    elif isinstance(inst, GEPInst):
        clone = GEPInst(remap(inst.base), remap(inst.index))
    elif isinstance(inst, SelectInst):
        clone = SelectInst(remap(inst.condition), remap(inst.true_value),
                           remap(inst.false_value))
    elif isinstance(inst, CallInst):
        clone = CallInst(inst.callee, [remap(a) for a in inst.args])
    elif isinstance(inst, PhiInst):
        clone = PhiInst(inst.type)
        # Incoming entries are filled by remap_phis once blocks exist.
    elif isinstance(inst, BranchInst):
        clone = BranchInst(remap_block(inst.target))
    elif isinstance(inst, CondBranchInst):
        clone = CondBranchInst(remap(inst.condition),
                               remap_block(inst.true_target),
                               remap_block(inst.false_target))
    elif isinstance(inst, RetInst):
        clone = RetInst(None if inst.value is None else remap(inst.value))
    elif isinstance(inst, UnreachableInst):
        clone = UnreachableInst()
    else:
        raise TypeError(f"cannot clone {inst!r}")
    if not clone.type.is_void():
        clone.name = function.next_name("c")
    return clone


def clone_region(blocks, function, suffix="clone"):
    """Clone a list of blocks into ``function``.

    Returns (value_map, block_map) where maps key by id() of originals.
    Branches to blocks outside the region keep their original targets.
    Phi entries from predecessors outside the region are preserved as-is;
    entries from inside the region are remapped.
    """
    value_map = {}
    block_map = {}
    clones = []
    for block in blocks:
        clone = function.append_block(f"{block.name}.{suffix}")
        block_map[id(block)] = clone
        clones.append(clone)
    # First pass: clone instructions (phis get no incoming yet).
    for block in blocks:
        clone_block = block_map[id(block)]
        for inst in block.instructions:
            clone = clone_instruction(inst, value_map, block_map, function)
            clone_block.append(clone)
            value_map[id(inst)] = clone
    # Second pass: rebuild phi incoming lists.
    for block in blocks:
        clone_block = block_map[id(block)]
        for inst, clone in zip(block.instructions,
                               clone_block.instructions):
            if not isinstance(inst, PhiInst):
                continue
            for value, pred in inst.incoming():
                mapped_value = value_map.get(id(value), value)
                mapped_pred = block_map.get(id(pred), pred)
                clone.add_incoming(mapped_value, mapped_pred)
    return value_map, block_map
