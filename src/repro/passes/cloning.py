"""Region/function/module cloning with value remapping.

Used by loop-unroll (body copies), loop-unswitch (loop versioning),
inline (callee body into caller), the transform cache (snapshot capture
and materialization), and the workload registry (template-clone
compilation).

Every consumer shares one two-phase engine, :func:`clone_blocks_into`:
block list order is not def-before-use in general (cloned loop bodies
are appended at the end but referenced earlier, and unreachable regions
have no safe order at all), so phase one builds clones in list order —
forward references temporarily keep the origin operand — and phase two
rebuilds phi incoming lists and rewrites every operand through the
completed value map.  Callers customize via hooks instead of carrying
their own copies of the loop (``prepare`` pre-seeds the value map per
instruction, e.g. to intern constants; ``on_clone`` post-processes each
clone, e.g. to remap callees or preserve names).
"""

from repro.ir import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)


def clone_instruction(inst, value_map, block_map, function):
    """Clone one instruction, remapping operands (and, for phis and
    terminators, blocks).  Phi incoming values are remapped by the caller
    after all blocks exist (two-phase cloning)."""

    def remap(value):
        return value_map.get(id(value), value)

    def remap_block(block):
        return block_map.get(id(block), block)

    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.opcode, remap(inst.lhs), remap(inst.rhs))
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.predicate, remap(inst.operands[0]),
                         remap(inst.operands[1]))
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.opcode, remap(inst.value), inst.type)
    elif isinstance(inst, AllocaInst):
        clone = AllocaInst(inst.allocated_type)
    elif isinstance(inst, LoadInst):
        clone = LoadInst(remap(inst.pointer))
    elif isinstance(inst, StoreInst):
        clone = StoreInst(remap(inst.value), remap(inst.pointer))
    elif isinstance(inst, GEPInst):
        clone = GEPInst(remap(inst.base), remap(inst.index))
    elif isinstance(inst, SelectInst):
        clone = SelectInst(remap(inst.condition), remap(inst.true_value),
                           remap(inst.false_value))
    elif isinstance(inst, CallInst):
        clone = CallInst(inst.callee, [remap(a) for a in inst.args])
    elif isinstance(inst, PhiInst):
        clone = PhiInst(inst.type)
        # Incoming entries are filled by phase two once blocks exist.
    elif isinstance(inst, BranchInst):
        clone = BranchInst(remap_block(inst.target))
    elif isinstance(inst, CondBranchInst):
        clone = CondBranchInst(remap(inst.condition),
                               remap_block(inst.true_target),
                               remap_block(inst.false_target))
    elif isinstance(inst, RetInst):
        clone = RetInst(None if inst.value is None else remap(inst.value))
    elif isinstance(inst, UnreachableInst):
        clone = UnreachableInst()
    else:
        raise TypeError(f"cannot clone {inst!r}")
    if not clone.type.is_void():
        clone.name = function.next_name("c")
    return clone


def fix_forward_references(blocks, value_map):
    """Rewrite operands that still reference origin values (forward
    references cloned before their defs existed) through the completed
    value map."""
    for block in blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                mapped = value_map.get(id(op))
                if mapped is not None and mapped is not op:
                    inst.set_operand(index, mapped)


def clone_blocks_into(blocks, function, value_map, block_map,
                      make_block, prepare=None, on_clone=None):
    """Two-phase clone of ``blocks`` into ``function``.

    ``make_block(block)`` creates (and registers) the clone of one
    block; ``prepare(inst)`` runs before each instruction clones (e.g.
    interning constants into ``value_map``); ``on_clone(inst, clone)``
    runs on each fresh clone before it is appended (e.g. remapping
    callees or preserving names).  Branches to blocks outside the
    region keep their original targets; phi entries from predecessors
    outside the region are preserved as-is.  Returns the new blocks.
    """
    new_blocks = []
    for block in blocks:
        clone_block = make_block(block)
        block_map[id(block)] = clone_block
        new_blocks.append(clone_block)
    for block in blocks:
        target = block_map[id(block)]
        for inst in block.instructions:
            if prepare is not None:
                prepare(inst)
            clone = clone_instruction(inst, value_map, block_map,
                                      function)
            if on_clone is not None:
                on_clone(inst, clone)
            target.append(clone)
            value_map[id(inst)] = clone
    for block in blocks:
        target = block_map[id(block)]
        for inst, clone in zip(block.instructions, target.instructions):
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming():
                    clone.add_incoming(value_map.get(id(value), value),
                                       block_map.get(id(pred), pred))
    fix_forward_references(new_blocks, value_map)
    return new_blocks


def clone_region(blocks, function, suffix="clone"):
    """Clone a list of blocks into ``function``.

    Returns (value_map, block_map) where maps key by id() of originals.
    """
    value_map = {}
    block_map = {}
    clone_blocks_into(
        blocks, function, value_map, block_map,
        make_block=lambda b: function.append_block(f"{b.name}.{suffix}"))
    return value_map, block_map


def clone_module(module):
    """A faithful deep copy of a module.

    Unlike region cloning, names are preserved exactly (block names,
    local value names, per-function name counters), so the clone prints
    identically to — and fingerprints equal to — the original.  Used by
    the workload registry to hand out fresh modules from a compiled
    template without re-running the frontend.
    """
    from repro.ir.function import Function, Module
    from repro.ir.values import GlobalVariable

    clone = Module(module.name)
    value_map = {}
    for gv in module.globals.values():
        initializer = gv.initializer
        if isinstance(initializer, list):
            initializer = list(initializer)
        new_gv = GlobalVariable(gv.name, gv.value_type, initializer,
                                gv.is_constant_global)
        clone.add_global(new_gv)
        value_map[id(gv)] = new_gv
    # Function shells first: call operands remap across functions.
    for function in module.functions.values():
        shell = Function(function.name, function.ftype)
        shell.is_pure = function.is_pure
        shell.accesses_memory = function.accesses_memory
        shell.attributes = set(function.attributes)
        for old_arg, new_arg in zip(function.args, shell.args):
            new_arg.name = old_arg.name
        clone.add_function(shell)
        value_map[id(function)] = shell
        for old_arg, new_arg in zip(function.args, shell.args):
            value_map[id(old_arg)] = new_arg
    for function in module.functions.values():
        shell = clone.functions[function.name]
        if function.is_declaration():
            continue

        def on_clone(inst, new_inst):
            new_inst.name = inst.name
            if isinstance(new_inst, CallInst) and \
                    not new_inst.is_intrinsic():
                new_inst.callee = value_map.get(id(new_inst.callee),
                                                new_inst.callee)

        clone_blocks_into(function.blocks, shell, value_map, {},
                          make_block=lambda b: shell.append_block(b.name),
                          on_clone=on_clone)
        # clone_instruction burns name-counter values before on_clone
        # restores the original names; reset so later passes name new
        # values exactly as they would on a freshly compiled module.
        shell._name_counter = function._name_counter
    return clone
