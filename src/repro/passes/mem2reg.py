"""mem2reg: promote scalar allocas to SSA registers.

Classic SSA construction: phi placement on the iterated dominance frontier
followed by a dominator-tree renaming walk.  This is the phase that unlocks
most scalar optimizations, which is exactly why phase ordering matters in
the paper's setting.
"""

from repro.ir import (
    AllocaInst,
    LoadInst,
    PhiInst,
    StoreInst,
    UndefValue,
)
from repro.ir.cfg import reachable_blocks
from repro.passes.analysis import PRESERVE_CFG, domtree_of
from repro.passes.base import FunctionPass, register_pass


def promotable_allocas(function):
    """Scalar allocas whose address is only used by loads and stores."""
    result = []
    for inst in function.entry.instructions:
        if not isinstance(inst, AllocaInst):
            continue
        if not inst.allocated_type.is_scalar():
            continue
        ok = True
        for user, index in inst.uses:
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst) and index == 1:
                continue  # used as the address, not the stored value
            ok = False
            break
        if ok:
            result.append(inst)
    return result


@register_pass("mem2reg")
class Mem2Reg(FunctionPass):
    # SSA construction never touches the CFG: phis are inserted and
    # loads/stores/allocas erased within existing blocks.
    preserved_analyses = PRESERVE_CFG

    def run_on_function(self, function, am=None):
        allocas = promotable_allocas(function)
        if not allocas:
            return False
        dom = domtree_of(function, am)
        frontiers = dom.dominance_frontiers()
        reachable = reachable_blocks(function)

        # 1. Place phis at the iterated dominance frontier of each alloca's
        #    defining (store) blocks.  Def blocks follow use-list order and
        #    frontier sets are walked position-sorted: phi creation order
        #    (and with it %m2r numbering) is a pure function of the input,
        #    not of object addresses.
        positions = function.block_positions()
        phi_owner = {}  # PhiInst -> AllocaInst
        for alloca in allocas:
            def_blocks, seen = [], set()
            for user, _ in alloca.uses:
                if isinstance(user, StoreInst) and \
                        user.parent is not None and \
                        id(user.parent) not in seen:
                    seen.add(id(user.parent))
                    def_blocks.append(user.parent)
            worklist = [b for b in def_blocks if b in reachable]
            placed = set()
            while worklist:
                block = worklist.pop()
                for frontier_block in sorted(
                        frontiers.get(block, ()),
                        key=lambda b: positions[id(b)]):
                    if frontier_block in placed:
                        continue
                    placed.add(frontier_block)
                    phi = PhiInst(alloca.allocated_type,
                                  function.next_name("m2r"))
                    frontier_block.insert(0, phi)
                    phi_owner[phi] = alloca
                    worklist.append(frontier_block)

        # 2. Rename via a DFS over the dominator tree.
        undef = {a: UndefValue(a.allocated_type) for a in allocas}
        alloca_set = set(map(id, allocas))

        def rename(block, incoming):
            values = dict(incoming)
            for inst in list(block.instructions):
                if isinstance(inst, PhiInst) and inst in phi_owner:
                    values[id(phi_owner[inst])] = inst
                elif isinstance(inst, LoadInst) and \
                        id(inst.pointer) in alloca_set:
                    alloca = inst.pointer
                    value = values.get(id(alloca), undef[alloca])
                    inst.replace_all_uses_with(value)
                    inst.erase_from_parent()
                elif isinstance(inst, StoreInst) and \
                        id(inst.pointer) in alloca_set:
                    values[id(inst.pointer)] = inst.value
                    inst.erase_from_parent()
            for succ in block.successors():
                for phi in succ.phis():
                    alloca = phi_owner.get(phi)
                    if alloca is not None:
                        value = values.get(id(alloca), undef[alloca])
                        phi.add_incoming(value, block)
            for child in dom.children.get(block, ()):
                rename(child, values)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            rename(function.entry, {})
        finally:
            sys.setrecursionlimit(old_limit)

        # 2b. Edges from unreachable predecessors (e.g. frontend 'dead'
        #     blocks after break/return) are never renamed; give their phi
        #     entries an undef value so the phi covers every CFG edge.
        #     (``predecessors()`` reads the maintained links: O(preds).)
        for phi, alloca in phi_owner.items():
            if phi.parent is None:
                continue
            covered = set(map(id, phi.incoming_blocks))
            for pred in phi.parent.predecessors():
                if id(pred) not in covered:
                    phi.add_incoming(undef[alloca], pred)

        # 3. Remove uses of the allocas in unreachable blocks, then the
        #    allocas themselves.
        for alloca in allocas:
            for user, _ in list(alloca.uses):
                if isinstance(user, LoadInst):
                    user.replace_all_uses_with(undef[alloca])
                user.erase_from_parent()
            alloca.erase_from_parent()

        # 4. Prune phis that only see undef (from uninitialized paths).
        self._cleanup_trivial_phis(function)
        return True

    @staticmethod
    def _cleanup_trivial_phis(function):
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for phi in list(block.phis()):
                    distinct = {id(v) for v in phi.operands if v is not phi}
                    incoming = [v for v in phi.operands if v is not phi]
                    if len(distinct) == 1:
                        phi.replace_all_uses_with(incoming[0])
                        phi.erase_from_parent()
                        progress = True
