"""licm: loop-invariant code motion.

Hoists pure loop-invariant instructions into the preheader.  Loads of
loop-invariant addresses are hoisted when no instruction in the loop may
write the loaded cell and the load executes on every iteration (its block
dominates every latch) — hoisting a conditional load could introduce a trap
or read an uninitialized cell, so those stay put.
"""

from repro.ir import DominatorTree, LoadInst, LoopInfo
from repro.passes.base import FunctionPass, register_pass
from repro.passes.loop_utils import (
    ensure_preheader,
    invariant_operands,
    is_loop_invariant,
)
from repro.passes.utils import instruction_may_write, is_pure


@register_pass("licm")
class LICM(FunctionPass):
    def run_on_function(self, function):
        changed = False
        info = LoopInfo(function)
        # Process inner loops first so invariants bubble outward.
        for loop in sorted(info.loops, key=lambda lp: -lp.depth):
            changed |= self._run_on_loop(function, loop)
        return changed

    def _run_on_loop(self, function, loop):
        preheader = ensure_preheader(function, loop)
        if preheader is None:
            return False
        dom = DominatorTree(function)
        latches = loop.latches()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if not invariant_operands(inst, loop):
                        continue
                    if is_pure(inst) and not isinstance(inst, LoadInst):
                        # Speculatively hoistable: pure and cannot trap.
                        self._hoist(inst, preheader)
                        progress = changed = True
                        continue
                    if isinstance(inst, LoadInst) and \
                            self._can_hoist_load(inst, loop, dom, latches):
                        self._hoist(inst, preheader)
                        progress = changed = True
        return changed

    @staticmethod
    def _hoist(inst, preheader):
        inst.parent.instructions.remove(inst)
        preheader.insert_before_terminator(inst)

    @staticmethod
    def _can_hoist_load(load, loop, dom, latches):
        if not is_loop_invariant(load.pointer, loop):
            return False
        # Must execute every iteration: its block dominates all latches.
        if not all(dom.dominates(load.parent, latch) for latch in latches):
            return False
        # And dominate the header's exit edges... dominating latches is the
        # standard guaranteed-to-execute criterion for this CFG family.
        for block in loop.blocks:
            for inst in block.instructions:
                if instruction_may_write(inst, load.pointer):
                    return False
        return True
