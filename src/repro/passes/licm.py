"""licm: loop-invariant code motion.

Hoists pure loop-invariant instructions into the preheader.  Loads of
loop-invariant addresses are hoisted when no instruction in the loop may
write the loaded cell and the load executes on every iteration (its block
dominates every latch) — hoisting a conditional load could introduce a trap
or read an uninitialized cell, so those stay put.

Analyses come from the analysis manager: the loop nest is fetched once,
and the dominator tree is only rebuilt after a preheader insertion
changed the CFG (dominance between in-loop blocks is invariant under
that edge subdivision, so per-loop rebuilds are unnecessary).
"""

from repro.ir import LoadInst
from repro.passes.analysis import (
    PRESERVE_CFG,
    PRESERVE_NONE,
    domtree_of,
)
from repro.passes.base import FunctionPass, register_pass
from repro.passes.loop_utils import (
    ensure_preheader_tracked,
    invariant_operands,
    is_loop_invariant,
    loops_of,
)
from repro.passes.utils import instruction_may_write, is_pure


@register_pass("licm")
class LICM(FunctionPass):
    # Dynamic preservation: pure hoisting leaves the CFG untouched, so
    # dominator/loop analyses survive.  The moment a preheader is
    # created nothing is preserved — an inner loop's preheader becomes a
    # body block of every ENCLOSING loop, so even loop membership goes
    # stale.  (``loopivs`` is never preserved: hoisting can make a value
    # loop-invariant, turning a cached "no induction variable" verdict
    # stale-pessimistic.)
    preserved_analyses = PRESERVE_NONE

    def __init__(self):
        self._created_preheader = False

    def run_on_function(self, function, am=None):
        changed = False
        self._created_preheader = False
        info = loops_of(function, am)
        # Process inner loops first so invariants bubble outward.
        for loop in sorted(info.loops, key=lambda lp: -lp.depth):
            loop_changed, created = self._run_on_loop(function, loop, am)
            changed |= loop_changed or created
        return changed

    def preserved_for(self, function):
        if self._created_preheader:
            return PRESERVE_NONE
        return PRESERVE_CFG

    def _run_on_loop(self, function, loop, am):
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        if created:
            self._created_preheader = True
            if am is not None:
                # Stale mid-run analyses would change hoisting
                # decisions vs the legacy per-loop rebuilds.
                am.invalidate(function, PRESERVE_NONE)
        dom = domtree_of(function, am)
        latches = loop.latches()
        changed = False
        progress = True
        while progress:
            progress = False
            for block in loop.ordered_blocks():
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if not invariant_operands(inst, loop):
                        continue
                    if is_pure(inst) and not isinstance(inst, LoadInst):
                        # Speculatively hoistable: pure and cannot trap.
                        self._hoist(inst, preheader)
                        progress = changed = True
                        continue
                    if isinstance(inst, LoadInst) and \
                            self._can_hoist_load(inst, loop, dom, latches):
                        self._hoist(inst, preheader)
                        progress = changed = True
        return changed, created

    @staticmethod
    def _hoist(inst, preheader):
        inst.parent.instructions.remove(inst)
        preheader.insert_before_terminator(inst)

    @staticmethod
    def _can_hoist_load(load, loop, dom, latches):
        if not is_loop_invariant(load.pointer, loop):
            return False
        # Must execute every iteration: its block dominates all latches.
        if not all(dom.dominates(load.parent, latch) for latch in latches):
            return False
        # And dominate the header's exit edges... dominating latches is the
        # standard guaranteed-to-execute criterion for this CFG family.
        for block in loop.blocks:
            for inst in block.instructions:
                if instruction_may_write(inst, load.pointer):
                    return False
        return True
