"""licm: loop-invariant code motion.

Hoists pure loop-invariant instructions into the preheader.  Loads of
loop-invariant addresses are hoisted when no instruction in the loop may
write the loaded cell and the load executes on every iteration (its block
dominates every latch) — hoisting a conditional load could introduce a trap
or read an uninitialized cell, so those stay put.  Hoisting is
exit-shape-independent, so multi-exit loops get the full treatment.

Analyses come from the analysis manager: the loop nest is fetched once,
and the dominator tree is only rebuilt after a preheader insertion
changed the CFG (dominance between in-loop blocks is invariant under
that edge subdivision, so per-loop rebuilds are unnecessary).

The fixpoint body is worklist-driven (PR-3 infrastructure): instead of
rescanning the whole loop until quiescence, each hoist re-examines only
the users it may have enabled — scheduled by original program position
so the hoist *sequence* (and therefore the preheader layout) is
bit-identical to the seed's rescan engine, which is preserved under
``analysis_cache=False`` as the measured legacy baseline.
"""

import heapq

from repro.ir import LoadInst
from repro.passes.analysis import (
    PRESERVE_CFG,
    PRESERVE_NONE,
    domtree_of,
)
from repro.passes.base import FunctionPass, register_pass
from repro.passes.loop_utils import (
    ensure_preheader_tracked,
    invariant_operands,
    is_loop_invariant,
    loops_of,
)
from repro.passes.utils import instruction_may_write, is_pure
from repro.passes.worklist import use_worklist


@register_pass("licm")
class LICM(FunctionPass):
    # Dynamic preservation: pure hoisting leaves the CFG untouched, so
    # dominator/loop analyses survive.  The moment a preheader is
    # created nothing is preserved — an inner loop's preheader becomes a
    # body block of every ENCLOSING loop, so even loop membership goes
    # stale.  (``loopivs`` is never preserved: hoisting can make a value
    # loop-invariant, turning a cached "no induction variable" verdict
    # stale-pessimistic.)
    preserved_analyses = PRESERVE_NONE

    def __init__(self):
        self._created_preheader = False

    def run_on_function(self, function, am=None):
        changed = False
        self._created_preheader = False
        info = loops_of(function, am)
        # Process inner loops first so invariants bubble outward.
        for loop in sorted(info.loops, key=lambda lp: -lp.depth):
            loop_changed, created = self._run_on_loop(function, loop, am)
            changed |= loop_changed or created
        return changed

    def preserved_for(self, function):
        if self._created_preheader:
            return PRESERVE_NONE
        # Hoisting out of a loop cannot break simplified/LCSSA form
        # (exit phis keep reading the now-invariant value), so the
        # canonical-form verdicts survive pure-hoist runs.
        return PRESERVE_CFG | frozenset({"loopcanon"})

    def _run_on_loop(self, function, loop, am):
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        if created:
            self._created_preheader = True
            if am is not None:
                # Stale mid-run analyses would change hoisting
                # decisions vs the legacy per-loop rebuilds.
                am.invalidate(function, PRESERVE_NONE)
        dom = domtree_of(function, am)
        latches = loop.latches()
        if use_worklist(am):
            return self._hoist_worklist(loop, preheader, dom,
                                        latches), created
        # Legacy engine (the seed's rescan fixpoint), kept as the
        # benchmark baseline under ``analysis_cache=False``.
        changed = False
        progress = True
        while progress:
            progress = False
            for block in loop.ordered_blocks():
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if not invariant_operands(inst, loop):
                        continue
                    if is_pure(inst) and not isinstance(inst, LoadInst):
                        # Speculatively hoistable: pure and cannot trap.
                        self._hoist(inst, preheader)
                        progress = changed = True
                        continue
                    if isinstance(inst, LoadInst) and \
                            self._can_hoist_load(inst, loop, dom, latches):
                        self._hoist(inst, preheader)
                        progress = changed = True
        return changed, created

    def _hoist_worklist(self, loop, preheader, dom, latches):
        """Position-scheduled hoisting, bit-identical to the rescan
        engine: eligibility is monotone (a hoist can only *enable*
        users), so processing candidates in program order — re-queueing
        a hoist's in-loop users ahead of the cursor into the current
        sweep and the rest into the next one — replays the exact hoist
        sequence the rescan rounds produce, without the quadratic
        full-loop rescans."""
        candidates = [inst for block in loop.ordered_blocks()
                      for inst in block.instructions]
        position = {id(inst): i for i, inst in enumerate(candidates)}
        heap = list(range(len(candidates)))
        queued = set(heap)
        deferred = set()
        changed = False
        while heap or deferred:
            if not heap:
                # Sweep exhausted: deferred enablees (users at positions
                # the cursor already passed) form the next sweep, in
                # program order — exactly the rescan engine's next round.
                heap = sorted(deferred)
                queued = set(heap)
                deferred = set()
            index = heapq.heappop(heap)
            queued.discard(index)
            inst = candidates[index]
            if inst.parent is None or inst.parent not in loop.blocks:
                continue
            if not invariant_operands(inst, loop):
                continue
            if is_pure(inst) and not isinstance(inst, LoadInst):
                pass  # speculatively hoistable: pure and cannot trap
            elif isinstance(inst, LoadInst) and \
                    self._can_hoist_load(inst, loop, dom, latches):
                pass
            else:
                continue
            self._hoist(inst, preheader)
            changed = True
            for user, _ in inst.uses:
                user_index = position.get(id(user))
                if user_index is None or user_index in queued:
                    continue
                if user.parent is None or \
                        user.parent not in loop.blocks:
                    continue
                if user_index > index:
                    heapq.heappush(heap, user_index)
                    queued.add(user_index)
                else:
                    deferred.add(user_index)
        return changed

    @staticmethod
    def _hoist(inst, preheader):
        inst.parent.remove_instruction(inst)
        preheader.insert_before_terminator(inst)

    @staticmethod
    def _can_hoist_load(load, loop, dom, latches):
        if not is_loop_invariant(load.pointer, loop):
            return False
        # Must execute every iteration: its block dominates all latches.
        if not all(dom.dominates(load.parent, latch) for latch in latches):
            return False
        # In a multi-exit loop an early exit can fire before the load's
        # block on the very first iteration, so dominating the latches
        # is not "guaranteed to execute" there: the load must also
        # dominate every exiting block (any exit taken then proves the
        # load already ran).  Single-exiting loops keep the latch-only
        # criterion (the seed's behaviour for this CFG family).
        exiting = loop.exiting_blocks()
        if len(exiting) > 1 and not all(
                dom.dominates(load.parent, block) for block in exiting):
            return False
        for block in loop.ordered_blocks():
            for inst in block.instructions:
                if instruction_may_write(inst, load.pointer):
                    return False
        return True
