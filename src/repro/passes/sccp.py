"""sccp / ipsccp: sparse conditional constant propagation.

Standard three-level lattice (top/constant/bottom) propagated over SSA
edges and CFG edges simultaneously; branches on constants mark only the
taken edge executable.  ``ipsccp`` extends the lattice across call edges:
argument lattices meet over all call sites and constant return values
propagate back to callers.
"""

from repro.ir import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    ConstantInt,
    FCmpInst,
    ICmpInst,
    Instruction,
    PhiInst,
    RetInst,
    SelectInst,
    UndefValue,
)
from repro.ir.values import Constant
from repro.passes.analysis import PRESERVE_CFG, PRESERVE_NONE
from repro.passes.base import Pass, FunctionPass, register_pass
from repro.passes.utils import (
    constant_fold_terminator,
    delete_dead_instructions,
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
    replace_and_erase,
)
from repro.passes.worklist import delete_dead_worklist, use_worklist

_TOP = "top"        # undefined / not yet known
_BOTTOM = "bottom"  # overdefined


class _Lattice:
    """Per-value lattice map with meet over (top < constant < bottom)."""

    def __init__(self):
        self.values = {}

    def get(self, value):
        if isinstance(value, Constant):
            if isinstance(value, UndefValue):
                return _TOP
            return value
        return self.values.get(id(value), _TOP)

    def meet_into(self, value, state):
        """Merge ``state`` into value's cell; returns True on change."""
        old = self.values.get(id(value), _TOP)
        new = self._meet(old, state)
        if new != old or (new is not old and not self._same(new, old)):
            self.values[id(value)] = new
            return not self._same(new, old)
        return False

    @staticmethod
    def _same(a, b):
        if isinstance(a, str) or isinstance(b, str):
            return a == b
        from repro.passes.sccp import _const_equal
        return _const_equal(a, b)

    @staticmethod
    def _meet(a, b):
        if a == _BOTTOM or b == _BOTTOM:
            return _BOTTOM
        if a == _TOP:
            return b
        if b == _TOP:
            return a
        return a if _const_equal(a, b) else _BOTTOM


def _const_equal(a, b):
    from repro.ir import ConstantFloat
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.value == b.value and a.type == b.type
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return a.value == b.value
    return a is b


class _SCCPSolver:
    """Solves the SCCP data-flow problem for one function.

    ``arg_states`` optionally seeds argument lattice cells (used by ipsccp);
    unseeded arguments start at bottom.
    """

    def __init__(self, function, arg_states=None, call_oracle=None):
        self.function = function
        self.lattice = _Lattice()
        self.executable_edges = set()
        self.executable_blocks = set()
        self.ssa_worklist = []
        self.cfg_worklist = []
        self.call_oracle = call_oracle
        for arg in function.args:
            state = _BOTTOM
            if arg_states is not None:
                state = arg_states.get(arg.index, _BOTTOM)
            self.lattice.values[id(arg)] = state

    def solve(self):
        entry = self.function.entry
        self.cfg_worklist.append((None, entry))
        while self.cfg_worklist or self.ssa_worklist:
            while self.cfg_worklist:
                pred, block = self.cfg_worklist.pop()
                edge = (id(pred), id(block))
                first_visit = block not in self.executable_blocks
                if edge in self.executable_edges:
                    continue
                self.executable_edges.add(edge)
                self.executable_blocks.add(block)
                for phi in block.phis():
                    self._visit(phi)
                if first_visit:
                    for inst in block.instructions:
                        if not isinstance(inst, PhiInst):
                            self._visit(inst)
            while self.ssa_worklist:
                inst = self.ssa_worklist.pop()
                if inst.parent in self.executable_blocks:
                    self._visit(inst)
        return self.lattice

    def _mark_users(self, value):
        for user in value.users:
            if isinstance(user, Instruction):
                self.ssa_worklist.append(user)

    def _update(self, inst, state):
        if self.lattice.meet_into(inst, state):
            self._mark_users(inst)

    def _visit(self, inst):
        cls = inst.__class__
        if cls is PhiInst:
            state = _TOP
            for value, pred in inst.incoming():
                if (id(pred), id(inst.parent)) in self.executable_edges:
                    state = self.lattice._meet(state,
                                               self.lattice.get(value))
            self._update(inst, state)
            return
        if cls is CondBranchInst:
            cond = self.lattice.get(inst.condition)
            if cond == _BOTTOM:
                self.cfg_worklist.append((inst.parent, inst.true_target))
                self.cfg_worklist.append((inst.parent, inst.false_target))
            elif isinstance(cond, ConstantInt):
                target = inst.true_target if cond.value else inst.false_target
                self.cfg_worklist.append((inst.parent, target))
            return
        if cls is BranchInst:
            self.cfg_worklist.append((inst.parent, inst.target))
            return
        if cls is BinaryInst or cls is ICmpInst or cls is FCmpInst \
                or cls is CastInst or cls is SelectInst:
            self._update(inst, self._evaluate(inst))
            return
        if cls is CallInst:
            state = _BOTTOM
            if self.call_oracle is not None and not inst.is_intrinsic():
                state = self.call_oracle(inst, self.lattice)
            if not inst.type.is_void():
                self._update(inst, state)
            return
        # Any other value-producing instruction (loads, allocas, geps)
        # reads state SCCP does not model: it must be overdefined, NOT
        # top — a top cell would make derived values fold as if undef.
        if not inst.type.is_void():
            self._update(inst, _BOTTOM)

    def _evaluate(self, inst):
        get = self.lattice.get
        states = [get(op) for op in inst._operands]
        cls = inst.__class__
        if _BOTTOM in states:
            # Select with known condition can still be constant.
            if cls is SelectInst:
                cond = states[0]
                if isinstance(cond, ConstantInt):
                    return states[1] if cond.value else states[2]
            return _BOTTOM
        if _TOP in states:
            return _TOP
        if cls is BinaryInst:
            result = fold_binary(inst.opcode, states[0], states[1],
                                 inst.type)
            return result if result is not None else _BOTTOM
        if cls is ICmpInst:
            result = fold_icmp(inst.predicate, states[0], states[1])
            return result if result is not None else _BOTTOM
        if cls is FCmpInst:
            result = fold_fcmp(inst.predicate, states[0], states[1])
            return result if result is not None else _BOTTOM
        if cls is CastInst:
            result = fold_cast(inst.opcode, states[0], inst.value.type,
                               inst.type)
            return result if result is not None else _BOTTOM
        if cls is SelectInst:
            cond = states[0]
            if isinstance(cond, ConstantInt):
                return states[1] if cond.value else states[2]
            return _BOTTOM
        return _BOTTOM


def _apply_lattice(function, lattice, executable_blocks, worklist=True):
    """Rewrite the function according to solved lattice values.

    Returns ``(changed, cfg_changed)`` — ``cfg_changed`` is True when a
    branch folded (an edge disappeared), which is the only rewrite here
    that invalidates dominator/loop analyses.  The trailing dead-code
    cleanup runs the worklist engine unless the caller runs the legacy
    (rescan) cost model.
    """
    from repro.ir.values import Constant

    changed = False
    cfg_changed = False
    for block in function.blocks:
        if block not in executable_blocks:
            continue
        for inst in list(block.instructions):
            if inst.type.is_void() or isinstance(inst, Constant):
                continue
            state = lattice.values.get(id(inst))
            if state is not None and not isinstance(state, str):
                if inst.has_side_effects():
                    # Keep the instruction (it may trap or print) but let
                    # its users see the constant.
                    if inst.is_used():
                        inst.replace_all_uses_with(state)
                        changed = True
                else:
                    replace_and_erase(inst, state)
                    changed = True
    # Fold branches whose condition became constant.
    for block in function.blocks:
        if constant_fold_terminator(block):
            changed = cfg_changed = True
    if worklist:
        changed |= delete_dead_worklist(function)
    else:
        changed |= delete_dead_instructions(function)
    return changed, cfg_changed


@register_pass("sccp")
class SCCP(FunctionPass):
    # Constant propagation preserves the CFG unless a branch folds;
    # preserved_for reports which case this run was.
    preserved_analyses = PRESERVE_CFG

    def __init__(self):
        self._cfg_changed = False

    def run_on_function(self, function, am=None):
        solver = _SCCPSolver(function)
        lattice = solver.solve()
        changed, self._cfg_changed = _apply_lattice(
            function, lattice, solver.executable_blocks,
            worklist=use_worklist(am))
        return changed

    def preserved_for(self, function):
        return PRESERVE_NONE if self._cfg_changed else PRESERVE_CFG


@register_pass("ipsccp")
class IPSCCP(Pass):
    """Interprocedural SCCP.

    Iterates function-local SCCP with argument lattices seeded from all
    call sites and return lattices fed back to callers, until a fixed
    point (bounded by a small round count).
    """

    # Unlike function-local SCCP there is no per-function "did a branch
    # fold" tracking at module granularity; claim nothing.
    preserved_analyses = PRESERVE_NONE
    module_memo = True

    def run_on_module(self, module, am):
        functions = module.defined_functions()
        # Fast path: with no call edges between defined functions the
        # argument/return lattices cannot change across rounds (the
        # oracle answers bottom for declarations either way), so the
        # fixpoint iteration collapses to one solve+apply per function —
        # identical results, half the solver work.  Most single-kernel
        # workloads take this path.
        defined = {id(f) for f in functions}
        has_interprocedural_calls = any(
            isinstance(inst, CallInst) and not inst.is_intrinsic()
            and id(inst.callee) in defined
            for function in functions
            for block in function.blocks
            for inst in block.instructions)
        if not has_interprocedural_calls:
            changed = False
            for function in functions:
                default = _BOTTOM if function.name == "main" else _TOP
                seeds = {arg.index: default for arg in function.args}
                solver = _SCCPSolver(
                    function, seeds,
                    call_oracle=lambda call, lattice: _BOTTOM)
                lattice = solver.solve()
                function_changed, _ = _apply_lattice(
                    function, lattice, solver.executable_blocks,
                    worklist=use_worklist(am))
                changed |= function_changed
            return changed
        arg_states = {f.name: {} for f in functions}
        return_states = {}
        # Seed: externally callable functions (main) get bottom arguments.
        for function in functions:
            for arg in function.args:
                default = _BOTTOM if function.name == "main" else _TOP
                arg_states[function.name][arg.index] = default

        for _ in range(4):
            progressed = False
            return_states_new = {}

            def oracle(call, lattice):
                # Feed argument states into callee and read back its
                # return state from the previous round.
                callee = call.callee
                if callee.name not in arg_states:
                    return _BOTTOM
                for index, arg in enumerate(call.args):
                    state = lattice.get(arg)
                    cell = arg_states[callee.name]
                    old = cell.get(index, _TOP)
                    cell[index] = _Lattice._meet(old, state)
                return return_states.get(callee.name, _TOP)

            for function in functions:
                solver = _SCCPSolver(function,
                                     arg_states[function.name],
                                     call_oracle=oracle)
                lattice = solver.solve()
                # Compute the function's return state.
                ret_state = _TOP
                for block in function.blocks:
                    if block not in solver.executable_blocks:
                        continue
                    term = block.terminator()
                    if isinstance(term, RetInst) and term.value is not None:
                        ret_state = _Lattice._meet(
                            ret_state, lattice.get(term.value))
                return_states_new[function.name] = ret_state
            if return_states_new != return_states:
                unequal = False
                for name, state in return_states_new.items():
                    old = return_states.get(name, _TOP)
                    if not _const_equal(state, old):
                        unequal = True
                if not unequal:
                    break
                progressed = True
            return_states = return_states_new
            if not progressed:
                break

        changed = False
        for function in functions:
            def final_oracle(call, lattice, _rs=return_states):
                return _rs.get(call.callee.name, _BOTTOM)

            solver = _SCCPSolver(function, arg_states[function.name],
                                 call_oracle=final_oracle)
            lattice = solver.solve()
            function_changed, _ = _apply_lattice(
                function, lattice, solver.executable_blocks,
                worklist=use_worklist(am))
            changed |= function_changed
        return changed
