"""loop-unroll: full unrolling of small constant-trip-count loops.

Full unrolling replaces a counted loop with ``trip_count`` copies of its
body laid out sequentially.  Partial unrolling is intentionally handled by
``loop-vectorize`` (interleaved unroll); this phase performs the classic
"small loop disappears" transformation, which interacts strongly with
sccp/instcombine (everything becomes straight-line constant math).

Multi-exit loops unroll too, on canonical form (LoopSimplify + LCSSA):

- when *every* exit condition is an IV-vs-constant compare, the exact
  per-iteration branch decisions are simulated up front
  (``loop_canon.simulate_exits``) and every exit test straightens — the
  early-exit trip count can be far below the counted bound
  (``for (i = 0; i < 1000; i++) { if (i == 5) break; ... }`` unrolls to
  six iterations);
- otherwise the *counted* exit alone bounds the iteration space and the
  data-dependent early exits stay live in every copy, with the exit
  phis extended per copy.
"""

from repro.ir import (
    BranchInst,
    CondBranchInst,
    Instruction,
    PhiInst,
)
from repro.passes.analysis import PRESERVE_NONE, domtree_of, loopivs_of
from repro.passes.base import FunctionPass, register_pass
from repro.passes.cloning import clone_region
from repro.passes.loop_canon import (
    ensure_canonical_loop,
    loop_is_lcssa,
    loop_is_simplified,
)
from repro.passes.loop_utils import ensure_preheader_tracked, loops_of
from repro.passes.utils import remove_block_from_phis


@register_pass("loop-unroll")
class LoopUnroll(FunctionPass):
    preserved_analyses = PRESERVE_NONE
    MAX_TRIP_COUNT = 16
    MAX_BODY_INSTRUCTIONS = 40

    def run_on_function(self, function, am=None):
        changed = False
        # One unroll per run: loop structures go stale after a transform.
        # Innermost loops first; rerunning the phase peels outward.
        info = loops_of(function, am)
        for loop in info.innermost_loops():
            unrolled, created = self._unroll(function, loop, am)
            changed |= created
            if unrolled:
                changed = True
                break
        return changed

    def _unroll(self, function, loop, am=None):
        preheader, created = ensure_preheader_tracked(function, loop)
        if preheader is None:
            return False, False
        if len(loop.exiting_blocks()) != 1 or \
                len(loop.exit_blocks()) != 1:
            return self._unroll_multi_exit(function, loop, am, created)
        trip_count, iv = loopivs_of(function, am).trip_count(
            loop, preheader, self.MAX_TRIP_COUNT)
        if trip_count is None or trip_count == 0:
            return False, created
        body_size = sum(len(b.instructions) for b in loop.blocks)
        if body_size > self.MAX_BODY_INSTRUCTIONS:
            return False, created
        latches = loop.latches()
        if len(latches) != 1:
            return False, created
        latch = latches[0]
        exiting = loop.exiting_blocks()
        if len(exiting) != 1:
            return False, created
        if exiting[0] is not loop.header and exiting[0] is not latch:
            return False, created
        exit_blocks = loop.exit_blocks()
        if len(exit_blocks) != 1:
            return False, created
        exit_block = exit_blocks[0]
        header = loop.header
        header_phis = header.phis()
        # Genuine top-tested: the exit decision happens at a header whose
        # body (IV update) has not yet run in that iteration.  Rotated
        # single-block shapes with the update in the exiting header are
        # bottom-tested and resolve like latch-exits (this mirrors
        # constant_trip_count's classification).
        exit_from_header = (exiting[0] is header
                            and header is not latch
                            and iv.update.parent is not header)

        # For top-tested loops, a value defined in the header (other
        # than a phi) observed after the loop would need one extra partial
        # evaluation of the header; bail out in that rare case.
        if exit_from_header:
            for inst in header.instructions:
                if isinstance(inst, PhiInst) or inst.is_terminator():
                    continue
                for user in inst.users:
                    if user.parent not in loop.blocks:
                        return False, created

        blocks = [b for b in function.blocks if b in loop.blocks]
        copies = []
        for iteration in range(1, trip_count):
            copies.append(clone_region(blocks, function, f"it{iteration}"))

        def latch_value(phi, vmap):
            original = phi.incoming_value_for(latch)
            return vmap.get(id(original), original)

        # Wire iterations together: iteration k's header phis become the
        # (k-1)-th iteration's latch values; (k-1)-th latch jumps to k's
        # header copy.
        for iteration, (value_map, block_map) in enumerate(copies, start=1):
            cloned_header = block_map[id(header)]
            prev_map = {} if iteration == 1 else copies[iteration - 2][0]
            for phi in header_phis:
                cloned_phi = value_map[id(phi)]
                incoming = latch_value(phi, prev_map)
                cloned_phi.replace_all_uses_with(incoming)
                cloned_phi.erase_from_parent()
                value_map[id(phi)] = incoming
            prev_latch = latch if iteration == 1 else \
                copies[iteration - 2][1][id(latch)]
            # Exit-phi entries for the original latch are remapped (not
            # removed) after wiring, so they keep carrying the edge value.
            prev_latch.set_terminator(BranchInst(cloned_header))

        final_map = copies[-1][0] if trip_count > 1 else {}
        final_latch = latch if trip_count == 1 else copies[-1][1][id(latch)]

        def final_phi_value(phi):
            if trip_count == 1:
                return phi.incoming_value_for(preheader)
            return final_map[id(phi)]

        def resolve_exit_value(value):
            """Value observed on the (unique) exit edge after unrolling."""
            if isinstance(value, PhiInst) and value in header_phis:
                if exit_from_header:
                    return latch_value(value, final_map)
                return final_phi_value(value)
            if isinstance(value, Instruction) and \
                    value.parent in loop.blocks:
                return final_map.get(id(value), value)
            return value

        # Exit phis: entries from the loop now arrive via final_latch.
        for phi in exit_block.phis():
            for pred in list(phi.incoming_blocks):
                if pred in loop.blocks:
                    index = phi.incoming_blocks.index(pred)
                    value = phi.operands[index]
                    phi.set_operand(index, resolve_exit_value(value))
                    phi.replace_incoming_block(pred, final_latch)

        # Direct out-of-loop uses (exit dominated by the loop).
        for block in blocks:
            for inst in block.instructions:
                for user, index in list(inst.uses):
                    if user.parent is None:
                        continue
                    if user.parent not in loop.blocks and \
                            not self._is_clone_user(user, copies):
                        if isinstance(user, PhiInst) and \
                                user.parent is exit_block:
                            continue  # handled above
                        user.set_operand(index, resolve_exit_value(inst))

        # Original header phis collapse to their initial values for
        # iteration 0.
        for phi in header_phis:
            initial = phi.incoming_value_for(preheader)
            phi.replace_all_uses_with(initial)
            phi.erase_from_parent()

        # Final latch leaves the loop unconditionally.
        final_latch.set_terminator(BranchInst(exit_block))

        # Straighten every remaining per-iteration exit test (they are all
        # known taken: the trip count is exact).
        self._straighten_exits(loop, copies, exit_block, trip_count)
        return True, created

    def _unroll_multi_exit(self, function, loop, am, created):
        """Full unrolling of early-exit loops on canonical form.

        Returns ``(unrolled, changed)``; ``changed`` covers the
        canonicalization edits even when unrolling then bails.
        """
        changed = created
        changed |= ensure_canonical_loop(function, loop, am, lcssa=True)
        if not (loop_is_simplified(loop) and loop_is_lcssa(loop)):
            return False, changed
        preheader = loop.preheader()
        if preheader is None:
            return False, changed
        ivs = loopivs_of(function, am)
        dom = domtree_of(function, am)
        plan = ivs.exit_plan(loop, preheader, dom,
                             max_iterations=self.MAX_TRIP_COUNT)
        counted_block = None
        if plan is not None:
            n_copies = plan.n_entered
        else:
            # Data-dependent early exits: the counted exit alone bounds
            # the iteration space; the early exits stay live per copy.
            bound = ivs.counted_bound(loop, preheader, dom,
                                      max_iterations=self.MAX_TRIP_COUNT)
            if bound is None:
                return False, changed
            n_copies, _iv, counted_block = bound
        if n_copies > self.MAX_TRIP_COUNT:
            return False, changed
        body_size = sum(len(b.instructions) for b in loop.blocks)
        if body_size > self.MAX_BODY_INSTRUCTIONS:
            return False, changed

        header = loop.header
        latch = loop.latches()[0]
        header_phis = header.phis()
        exit_blocks = loop.exit_blocks()
        # Per-exit-block original in-loop phi entries, captured before
        # any rewiring (the rebuild below re-derives every entry from
        # these plus the per-copy value maps).
        original_entries = {}
        for exit_block in exit_blocks:
            original_entries[id(exit_block)] = [
                (phi, list(phi.incoming())) for phi in exit_block.phis()]

        blocks = loop.ordered_blocks()
        copies = []
        for iteration in range(1, n_copies):
            copies.append(clone_region(blocks, function, f"it{iteration}"))

        def latch_value(phi, vmap):
            original = phi.incoming_value_for(latch)
            return vmap.get(id(original), original)

        # Wire iterations together: iteration k's header phis become the
        # (k-1)-th iteration's latch values; the (k-1)-th latch's
        # *backedge* is redirected to k's header copy.  Unlike the
        # single-exit path the terminator is redirected, not replaced —
        # a conditionally-exiting latch keeps its live early exit.
        for iteration, (value_map, block_map) in enumerate(copies,
                                                           start=1):
            cloned_header = block_map[id(header)]
            prev_map = {} if iteration == 1 else copies[iteration - 2][0]
            for phi in header_phis:
                cloned_phi = value_map[id(phi)]
                incoming = latch_value(phi, prev_map)
                cloned_phi.replace_all_uses_with(incoming)
                cloned_phi.erase_from_parent()
                value_map[id(phi)] = incoming
            if iteration == 1:
                prev_latch, prev_header = latch, header
            else:
                prev_latch = copies[iteration - 2][1][id(latch)]
                prev_header = copies[iteration - 2][1][id(header)]
            prev_latch.terminator().replace_successor(prev_header,
                                                      cloned_header)

        def copy_block(block, iteration):
            if iteration == 0:
                return block
            return copies[iteration - 1][1][id(block)]

        def copy_value(value, iteration):
            if iteration == 0:
                return value  # header phis resolve via the final RAUW
            return copies[iteration - 1][0].get(id(value), value)

        # Straighten the decided exit tests.  In a copy, the in-loop
        # successor is a clone block, so membership is tested against
        # the (stable) exit-block set.
        exit_ids = {id(b) for b in exit_blocks}

        def straighten(block, fired):
            term = block.terminator()
            if not isinstance(term, CondBranchInst):
                return  # rewired to the next copy already
            targets = [s for s in term.successors()
                       if (id(s) in exit_ids) == fired]
            if len(targets) != 1:
                return
            block.set_terminator(BranchInst(targets[0]))

        if plan is not None:
            for iteration, record in enumerate(plan.iterations):
                for exiting, fired in record:
                    straighten(copy_block(exiting, iteration), fired)
        else:
            for iteration in range(n_copies):
                straighten(copy_block(counted_block, iteration),
                           iteration == n_copies - 1)

        # Rebuild every exit block's phis from the surviving edges:
        # for each original in-loop entry (value, pred), each copy of
        # ``pred`` that still targets the exit contributes the copy's
        # value.  LCSSA guarantees downstream uses read only these phis.
        for exit_block in exit_blocks:
            for phi, entries in original_entries[id(exit_block)]:
                phi.drop_all_references()
                phi.incoming_blocks = []
                for value, pred in entries:
                    if pred not in loop.blocks:
                        phi.add_incoming(value, pred)
                        continue
                    for iteration in range(n_copies):
                        source = copy_block(pred, iteration)
                        if exit_block in source.successors():
                            phi.add_incoming(
                                copy_value(value, iteration), source)

        # Original header phis collapse to their initial values for
        # iteration 0 (this also resolves the iteration-0 exit-phi
        # entries added above).
        for phi in header_phis:
            initial = phi.incoming_value_for(preheader)
            phi.replace_all_uses_with(initial)
            phi.erase_from_parent()
        return True, True

    @staticmethod
    def _is_clone_user(user, copies):
        for value_map, block_map in copies:
            if id(user.parent) in {id(b) for b in block_map.values()}:
                return True
        return False

    @staticmethod
    def _straighten_exits(loop, copies, exit_block, trip_count):
        exiting_origs = loop.exiting_blocks()
        for iteration in range(trip_count):
            block_map = None if iteration == 0 else copies[iteration - 1][1]
            for orig in exiting_origs:
                block = orig if block_map is None else block_map[id(orig)]
                term = block.terminator()
                if not isinstance(term, CondBranchInst):
                    continue
                internal = [s for s in term.successors()
                            if s is not exit_block]
                if len(internal) == 1:
                    block.set_terminator(BranchInst(internal[0]))
                    remove_block_from_phis(block, exit_block)
