"""Typed, SSA-capable intermediate representation.

Public surface: the type constructors, value/instruction classes,
:class:`IRBuilder`, CFG analyses, the verifier, the textual printer, and
the reference interpreter.
"""

from repro.ir import arith
from repro.ir.types import (
    ArrayType,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    VOID,
    VoidType,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.cfg import (
    DominatorTree,
    Loop,
    LoopInfo,
    reverse_postorder,
    split_edge,
)
from repro.ir.verifier import (
    check_lcssa,
    verify_function,
    verify_function_bookkeeping,
    verify_module,
)
from repro.ir.printer import (
    function_to_text,
    module_fingerprint,
    module_to_text,
)
from repro.ir.interpreter import ExecutionResult, Interpreter, run_module

__all__ = [
    "arith",
    "Type", "VoidType", "IntType", "FloatType", "PointerType", "ArrayType",
    "FunctionType", "VOID", "I1", "I8", "I32", "I64", "F64",
    "Value", "Constant", "ConstantInt", "ConstantFloat", "UndefValue",
    "Argument", "GlobalVariable",
    "Instruction", "BinaryInst", "ICmpInst", "FCmpInst", "AllocaInst",
    "LoadInst", "StoreInst", "GEPInst", "PhiInst", "BranchInst",
    "CondBranchInst", "RetInst", "UnreachableInst", "CallInst",
    "SelectInst", "CastInst",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "DominatorTree", "LoopInfo", "Loop", "reverse_postorder",
    "split_edge",
    "check_lcssa", "verify_function", "verify_function_bookkeeping",
    "verify_module",
    "function_to_text", "module_to_text", "module_fingerprint",
    "Interpreter", "ExecutionResult", "run_module",
]
