"""Structural function fingerprinting.

The canonical per-function fingerprint used to be computed by renaming
locals, printing the function to LLVM-flavoured text, and hashing the
text (``ir/printer.function_text_fingerprint``).  That materializes a
multi-kilobyte string per function per phase — the single largest
fixed cost of fingerprint-driven activity detection in the
compile→profile loop.

This module computes the same *distinctions* by hashing the structure
directly: one pre-pass assigns every instruction a dense index (its
definition order, which is exactly what canonical local renaming
encodes), then a single traversal appends fixed-width integer records —
opcode, predicate, type and operand codes — to a machine-level array
that is hashed in one BLAKE2b call, without ever building the text.
Strings (argument/global/callee names, type spellings) are interned
into a per-function table that is appended to the digest input, keeping
the encoding injective.  Local value names never enter the hash, so
renaming no-ops stay invisible — the property the PSS's inactive-phase
detection relies on (paper §III-D) — and, unlike the text path, the
function is never mutated (no ``rename_locals`` side effect).

Collision contract: two functions get equal structural fingerprints
iff their canonical printed texts are equal (enforced collision-wise
against the legacy text fingerprint by
``tests/ir/test_structhash.py``).  Function attributes and purity
flags are part of the digest, as before.
"""

import hashlib
import struct
from array import array

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)

# Stable small codes for opcode/predicate spellings.  New entries may be
# appended; existing codes must never be renumbered (fingerprints are
# content addresses in on-disk caches).
_OPCODES = (
    "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl",
    "ashr", "lshr", "fadd", "fsub", "fmul", "fdiv",
    "icmp", "fcmp", "alloca", "load", "store", "gep", "phi", "br",
    "condbr", "ret", "unreachable", "call", "select",
    "sext", "zext", "trunc", "sitofp", "fptosi",
    "eq", "ne", "slt", "sle", "sgt", "sge",
    "oeq", "one", "olt", "ole", "ogt", "oge",
)
_CODE = {name: code for code, name in enumerate(_OPCODES)}

# Operand-kind tags (see _emit_function's ref()).
_K_INST, _K_CINT, _K_CFLOAT, _K_UNDEF, _K_ARG, _K_GLOBAL, _K_FUNC, \
    _K_OTHER = range(8)

_PACK_DOUBLE = struct.Struct("<d").pack


def _emit_function(function, out, names):
    """Append ``function``'s structural records to ``out`` (an
    ``array('q')``); interned strings collect into ``names``."""
    from repro.ir.function import Function

    append = out.append
    name_code = {}

    def intern(text):
        code = name_code.get(text)
        if code is None:
            code = len(names)
            name_code[text] = code
            names.append(text)
        return code

    types = {}

    def type_code(t):
        key = id(t)
        hit = types.get(key)
        if hit is None:
            hit = intern(str(t))
            types[key] = hit
        return hit

    append(intern(function.name))
    append(type_code(function.ftype.ret))
    if function.is_declaration():
        append(-1)
        return
    for arg in function.args:
        append(type_code(arg.type))
        append(intern(arg.name))

    # Pre-pass: dense definition indices (== canonical local names).
    inst_index = {}
    block_index = {}
    counter = 0
    for bi, block in enumerate(function.blocks):
        block_index[id(block)] = bi
        for inst in block.instructions:
            inst_index[id(inst)] = counter
            counter += 1

    refs = {}

    def ref(value):
        """One operand reference — the distinctions of the printed
        ``<type> %name`` form, with local names replaced by def indices.
        The leading kind tag determines each record's arity, keeping the
        concatenated stream uniquely parseable.  Instruction refs omit
        the type: every instruction's result type is derivable from its
        own emitted record (binary ops inherit their grounded operand
        types; phi/cast/alloca/load chains ground out at records that do
        carry types), so the type adds no distinction.  The slow path of
        the per-value memo; the emit loop inlines the hit path."""
        vid = inst_index.get(id(value))
        if vid is not None:
            hit = (_K_INST, vid)
        elif type(value) is ConstantInt:
            hit = (_K_CINT, type_code(value.type), value.value)
        elif type(value) is ConstantFloat:
            bits = int.from_bytes(_PACK_DOUBLE(value.value),
                                  "little", signed=True)
            hit = (_K_CFLOAT, type_code(value.type), bits)
        elif type(value) is UndefValue:
            hit = (_K_UNDEF, type_code(value.type), 0)
        elif isinstance(value, Argument):
            hit = (_K_ARG, type_code(value.type), intern(value.name))
        elif isinstance(value, GlobalVariable):
            hit = (_K_GLOBAL, type_code(value.type), intern(value.name))
        elif isinstance(value, Function):
            hit = (_K_FUNC, 0, intern(value.name))
        else:
            hit = (_K_OTHER, type_code(value.type), intern(value.name))
        refs[id(value)] = hit
        return hit

    rget = refs.get
    extend = out.extend

    code = _CODE
    for block in function.blocks:
        append(-2)
        append(block_index[id(block)])
        for inst in block.instructions:
            cls = type(inst)
            if cls is BinaryInst:
                append(code[inst.opcode])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
            elif cls is ICmpInst:
                append(code["icmp"])
                append(code[inst.predicate])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
            elif cls is LoadInst:
                append(code["load"])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
            elif cls is StoreInst:
                append(code["store"])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
            elif cls is GEPInst:
                append(code["gep"])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
            elif cls is PhiInst:
                append(code["phi"])
                append(type_code(inst.type))
                append(len(inst._operands))
                for value, pred in zip(inst._operands,
                                       inst.incoming_blocks):
                    extend(rget(id(value)) or ref(value))
                    pi = block_index.get(id(pred))
                    append(pi if pi is not None
                           else -3 - intern(pred.name))
            elif cls is BranchInst:
                append(code["br"])
                pi = block_index.get(id(inst.target))
                append(pi if pi is not None
                       else -3 - intern(inst.target.name))
            elif cls is CondBranchInst:
                append(code["condbr"])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                for target in (inst.true_target, inst.false_target):
                    pi = block_index.get(id(target))
                    append(pi if pi is not None
                           else -3 - intern(target.name))
            elif cls is RetInst:
                append(code["ret"])
                if inst._operands:
                    extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                else:
                    append(-1)
            elif cls is CallInst:
                append(code["call"])
                callee = inst.callee
                append(intern(callee if isinstance(callee, str)
                              else callee.name))
                append(len(inst._operands))
                for arg in inst._operands:
                    extend(rget(id(arg)) or ref(arg))
            elif cls is SelectInst:
                append(code["select"])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
                extend(rget(id(inst._operands[2])) or ref(inst._operands[2]))
            elif cls is CastInst:
                append(code[inst.opcode])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                append(type_code(inst.type))
            elif cls is AllocaInst:
                append(code["alloca"])
                append(type_code(inst.allocated_type))
            elif cls is FCmpInst:
                append(code["fcmp"])
                append(code[inst.predicate])
                extend(rget(id(inst._operands[0])) or ref(inst._operands[0]))
                extend(rget(id(inst._operands[1])) or ref(inst._operands[1]))
            elif cls is UnreachableInst:
                append(code["unreachable"])
            else:
                raise TypeError(f"cannot hash {cls.__name__}")
    if function.attributes:
        append(-4)
        for attr in sorted(function.attributes):
            append(intern(attr))


def structural_fingerprint(function):
    """A stable hex digest of one function's structure.

    Deterministic across processes (the evaluation cache's disk tier and
    process-pool evaluation depend on that), independent of local value
    names, and computed without materializing the printed text.
    """
    out = array("q")
    names = []
    _emit_function(function, out, names)
    hasher = hashlib.blake2b(digest_size=32)
    hasher.update(out.tobytes())
    hasher.update("\x1f".join(names).encode("utf-8"))
    return hasher.hexdigest()
