"""IRBuilder: convenience layer used by the frontend and by passes that
synthesize new instructions."""

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.types import F64, I64
from repro.ir.values import ConstantFloat, ConstantInt


class IRBuilder:
    """Appends instructions at a movable insertion point."""

    def __init__(self, block=None):
        self.block = block
        self.index = None  # None means append at end

    def set_insert_point(self, block, index=None):
        self.block = block
        self.index = index

    def _insert(self, inst):
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion block")
        if not inst.name and not inst.type.is_void():
            inst.name = self.block.parent.next_name()
        if self.index is None:
            self.block.append(inst)
        else:
            self.block.insert(self.index, inst)
            self.index += 1
        return inst

    # -- constants ---------------------------------------------------------
    def const_int(self, value, type_=I64):
        return ConstantInt(type_, value)

    def const_float(self, value):
        return ConstantFloat(F64, value)

    # -- arithmetic ----------------------------------------------------------
    def binop(self, opcode, lhs, rhs, name=""):
        return self._insert(BinaryInst(opcode, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    def icmp(self, predicate, lhs, rhs, name=""):
        return self._insert(ICmpInst(predicate, lhs, rhs, name))

    def fcmp(self, predicate, lhs, rhs, name=""):
        return self._insert(FCmpInst(predicate, lhs, rhs, name))

    # -- memory ----------------------------------------------------------------
    def alloca(self, allocated_type, name=""):
        return self._insert(AllocaInst(allocated_type, name))

    def load(self, pointer, name=""):
        return self._insert(LoadInst(pointer, name))

    def store(self, value, pointer):
        return self._insert(StoreInst(value, pointer))

    def gep(self, base, index, name=""):
        return self._insert(GEPInst(base, index, name))

    # -- control flow ------------------------------------------------------------
    def br(self, target):
        return self._insert(BranchInst(target))

    def cond_br(self, condition, true_target, false_target):
        return self._insert(CondBranchInst(condition, true_target,
                                           false_target))

    def ret(self, value=None):
        return self._insert(RetInst(value))

    def unreachable(self):
        return self._insert(UnreachableInst())

    def phi(self, type_, name=""):
        return self._insert(PhiInst(type_, name))

    # -- misc -----------------------------------------------------------------
    def call(self, callee, args, name=""):
        return self._insert(CallInst(callee, args, name))

    def select(self, condition, true_value, false_value, name=""):
        return self._insert(SelectInst(condition, true_value, false_value,
                                       name))

    def cast(self, opcode, value, target_type, name=""):
        return self._insert(CastInst(opcode, value, target_type, name))

    def sitofp(self, value, name=""):
        return self.cast("sitofp", value, F64, name)

    def fptosi(self, value, type_=I64, name=""):
        return self.cast("fptosi", value, type_, name)
