"""Type system for the IR.

A deliberately small, LLVM-flavoured type lattice: integers of a fixed
bit-width, one float type, void, pointers, fixed-size arrays, and function
types.  Types are immutable and compared structurally.
"""


class Type:
    """Base class of all IR types."""

    def is_int(self):
        return isinstance(self, IntType)

    def is_float(self):
        return isinstance(self, FloatType)

    def is_void(self):
        return isinstance(self, VoidType)

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_array(self):
        return isinstance(self, ArrayType)

    def is_function(self):
        return isinstance(self, FunctionType)

    def is_scalar(self):
        return self.is_int() or self.is_float()

    def size_cells(self):
        """Size of a value of this type in memory cells.

        The simulator's memory is cell-addressed: every scalar occupies one
        cell.  Arrays occupy ``count * element`` cells.
        """
        raise TypeError(f"type {self} has no in-memory size")

    def __ne__(self, other):
        return not self.__eq__(other)


class VoidType(Type):
    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")

    def __repr__(self):
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer type."""

    def __init__(self, bits):
        if bits not in (1, 8, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size_cells(self):
        return 1

    def min_value(self):
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    def max_value(self):
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value):
        """Wrap a Python int to this width (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __eq__(self, other):
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self):
        return hash(("int", self.bits))

    def __repr__(self):
        return f"i{self.bits}"


class FloatType(Type):
    """IEEE-754 double precision (the only float type in the IR)."""

    def size_cells(self):
        return 1

    def __eq__(self, other):
        return isinstance(other, FloatType)

    def __hash__(self):
        return hash("f64")

    def __repr__(self):
        return "f64"


class PointerType(Type):
    def __init__(self, pointee):
        self.pointee = pointee

    def size_cells(self):
        return 1

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __repr__(self):
        return f"{self.pointee}*"


class ArrayType(Type):
    def __init__(self, element, count):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def size_cells(self):
        return self.element.size_cells() * self.count

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self):
        return hash(("array", self.element, self.count))

    def __repr__(self):
        return f"[{self.count} x {self.element}]"


class FunctionType(Type):
    def __init__(self, ret, params):
        self.ret = ret
        self.params = tuple(params)

    def __eq__(self, other):
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
        )

    def __hash__(self):
        return hash(("fn", self.ret, self.params))

    def __repr__(self):
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()
