"""Basic blocks and their CFG neighbourhood queries."""

from repro.ir.instructions import PhiInst


class BasicBlock:
    def __init__(self, name, parent=None):
        self.name = name
        self.parent = parent  # Function
        self.instructions = []

    # -- structure ---------------------------------------------------------
    def append(self, instruction):
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index, instruction):
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def insert_before_terminator(self, instruction):
        term = self.terminator()
        if term is None:
            return self.append(instruction)
        return self.insert(self.instructions.index(term), instruction)

    def terminator(self):
        instructions = self.instructions
        if instructions:
            last = instructions[-1]
            if last._terminator:
                return last
        return None

    def phis(self):
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self):
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    # -- CFG -----------------------------------------------------------------
    def successors(self):
        term = self.terminator()
        return [] if term is None else term.successors()

    def predecessors(self):
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def remove_from_parent(self):
        """Detach the block, dropping all instruction operands."""
        for inst in list(self.instructions):
            inst.drop_all_references()
            inst.parent = None
        self.instructions = []
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
