"""Basic blocks and their CFG neighbourhood queries.

The CFG is **maintained by the IR layer**: every block carries an
edge-count-aware predecessor map (``_preds``) that is updated by the
terminator mutation hooks (the ``BranchInst``/``CondBranchInst`` target
setters and ``replace_successor``) and by the attach/detach API below
(``append``/``insert``/``set_terminator``/``remove_instruction``/
``remove_from_parent``/``Function.remove_block``).  ``predecessors()``
therefore costs O(preds) instead of the historical O(|function.blocks|)
scan per query, and the answer is identical: predecessors are reported
in function block order, a ``condbr`` with both arms on one target
counted once.

Contract for pass authors: never splice ``block.instructions`` or
``function.blocks`` around a terminator by hand — route the mutation
through this API so the maintained reverse edges and the block-position
index stay true.  The verifier cross-checks both against a from-scratch
recompute (``repro.ir.verifier._check_cfg_links``), so a bypassed edit
fails verification immediately instead of miscompiling later.
"""

from repro.ir.instructions import PhiInst


class BasicBlock:
    def __init__(self, name, parent=None):
        self.name = name
        self.parent = parent  # Function
        self.instructions = []
        # Maintained reverse CFG edges: {pred BasicBlock: edge count}.
        # An edge is one terminator successor slot, so a condbr with
        # both arms on this block contributes a count of 2.
        self._preds = {}

    # -- structure ---------------------------------------------------------
    def append(self, instruction):
        instruction.parent = self
        self.instructions.append(instruction)
        if instruction._terminator:
            self._connect_terminator(instruction)
        return instruction

    def insert(self, index, instruction):
        instruction.parent = self
        self.instructions.insert(index, instruction)
        if instruction._terminator:
            self._connect_terminator(instruction)
        return instruction

    def insert_before_terminator(self, instruction):
        term = self.terminator()
        if term is None:
            return self.append(instruction)
        return self.insert(self.instructions.index(term), instruction)

    def set_terminator(self, instruction):
        """Replace (or install) the block terminator.

        The old terminator (if any) is erased and the new one appended
        in one step, so the maintained predecessor links of the old and
        new successors can never be observed half-updated.
        """
        old = self.terminator()
        if old is not None:
            old.erase_from_parent()
        return self.append(instruction)

    def remove_instruction(self, instruction):
        """Detach ``instruction`` from this block (operand references
        are kept — use :meth:`Instruction.erase_from_parent` to drop
        them too).  Terminator removal disconnects the maintained
        predecessor links of its successors."""
        if instruction._terminator:
            self._disconnect_terminator(instruction)
        self.instructions.remove(instruction)
        instruction.parent = None

    def take_instructions_from(self, source, start=0):
        """Move ``source.instructions[start:]`` (terminator included)
        to the end of this block in one splice — O(moved), where the
        per-instruction ``remove_instruction``/``append`` dance would
        be O(moved^2) list churn.  The moved terminator's maintained
        edges switch from ``source`` to this block in the same step."""
        moved = source.instructions[start:]
        del source.instructions[start:]
        for inst in moved:
            if inst._terminator:
                source._disconnect_terminator(inst)
            inst.parent = self
        self.instructions.extend(moved)
        for inst in moved:
            if inst._terminator:
                self._connect_terminator(inst)

    def clear_instructions(self):
        """Detach every instruction, dropping operand references and
        disconnecting terminator edges (block teardown)."""
        for inst in self.instructions:
            if inst._terminator:
                self._disconnect_terminator(inst)
            inst.drop_all_references()
            inst.parent = None
        self.instructions = []

    def terminator(self):
        instructions = self.instructions
        if instructions:
            last = instructions[-1]
            if last._terminator:
                return last
        return None

    def phis(self):
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self):
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    # -- block placement ---------------------------------------------------
    def insert_after(self, other):
        """Place this block immediately after ``other`` in ``other``'s
        function block order (moving it when already placed)."""
        self._place(other, 1)

    def insert_before(self, other):
        """Place this block immediately before ``other`` in ``other``'s
        function block order (moving it when already placed)."""
        self._place(other, 0)

    def _place(self, other, offset):
        function = other.parent
        if self.parent is not None and self.parent is not function:
            raise ValueError("cannot move a block between functions")
        blocks = function.blocks
        if self.parent is function:
            blocks.remove(self)
        self.parent = function
        blocks.insert(blocks.index(other) + offset, self)
        function._invalidate_positions()

    def remove_from_parent(self):
        """Detach the block, dropping all instruction operands,
        disconnecting its outgoing maintained edges, and scrubbing its
        entries from former successors' phis
        (see :meth:`Function.remove_block`)."""
        if self.parent is not None:
            self.parent.remove_block(self)
        else:
            self.clear_instructions()

    # -- CFG ---------------------------------------------------------------
    def successors(self):
        term = self.terminator()
        return [] if term is None else term.successors()

    def predecessors(self):
        """Predecessor blocks in function block order, each reported
        once (a condbr with two identical arms counts as one
        predecessor) — O(preds) from the maintained links."""
        parent = self.parent
        preds = self._preds
        if parent is None or not preds:
            return []
        positions = parent.block_positions()
        result = [p for p in preds if id(p) in positions]
        if len(result) > 1:
            result.sort(key=lambda p: positions[id(p)])
        return result

    def pred_edge_count(self, pred):
        """Number of distinct CFG edges ``pred -> self`` (0, 1, or 2)."""
        return self._preds.get(pred, 0)

    # -- maintained-edge plumbing ------------------------------------------
    def _connect_terminator(self, instruction):
        for succ in instruction.successors():
            succ._add_pred(self)

    def _disconnect_terminator(self, instruction):
        for succ in instruction.successors():
            succ._remove_pred(self)

    def _add_pred(self, pred):
        preds = self._preds
        preds[pred] = preds.get(pred, 0) + 1

    def _remove_pred(self, pred):
        preds = self._preds
        count = preds.get(pred)
        if count is None:
            raise ValueError(
                f"CFG edge bookkeeping: {pred.name} -> {self.name} is "
                f"not a maintained edge (terminator mutated outside the "
                f"IR mutation API?)")
        if count == 1:
            del preds[pred]
        else:
            preds[pred] = count - 1

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
