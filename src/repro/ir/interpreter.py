"""Reference interpreter for IR modules.

The interpreter defines the *semantics* of the IR.  Every optimization pass
must preserve behaviour under this interpreter — the property-based tests
in ``tests/passes`` run random pass pipelines and compare program output
against the unoptimized module.

Memory is cell-addressed: each scalar value occupies one cell, arrays
occupy ``count`` consecutive cells.  Pointers are plain integer addresses.
"""

from repro.errors import SimulationError
from repro.ir import arith
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.intrinsics import evaluate_float_intrinsic
from repro.ir.types import I64, IntType
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)

_I64 = I64


class ExecutionResult:
    """Outcome of interpreting a program."""

    def __init__(self, return_value, output, steps):
        self.return_value = return_value
        self.output = tuple(output)
        self.steps = steps

    def observable(self):
        """The externally observable behaviour (used by differential tests)."""
        return (self.return_value, self.output)

    def __repr__(self):
        return (f"<ExecutionResult ret={self.return_value} "
                f"|output|={len(self.output)} steps={self.steps}>")


class Interpreter:
    def __init__(self, module, fuel=5_000_000):
        self.module = module
        self.fuel = fuel
        self.memory = {}
        self.output = []
        self.steps = 0
        self._next_address = 16  # 0 is reserved as a null-ish sentinel
        self._global_addresses = {}
        self._allocate_globals()

    # -- memory -------------------------------------------------------------
    def _allocate(self, cells):
        address = self._next_address
        self._next_address += cells
        return address

    def _allocate_globals(self):
        for gv in self.module.globals.values():
            cells = gv.value_type.size_cells()
            address = self._allocate(cells)
            self._global_addresses[gv.name] = address
            init = gv.initializer
            if init is None:
                values = [0] * cells
            elif isinstance(init, (list, tuple)):
                values = list(init) + [0] * (cells - len(init))
            else:
                values = [init]
            for offset, value in enumerate(values):
                self.memory[address + offset] = value

    def load_cell(self, address):
        if address <= 0:
            raise SimulationError(f"load from invalid address {address}")
        return self.memory.get(address, 0)

    def store_cell(self, address, value):
        if address <= 0:
            raise SimulationError(f"store to invalid address {address}")
        self.memory[address] = value

    # -- entry point -----------------------------------------------------------
    def run(self, function_name="main", args=()):
        function = self.module.get_function(function_name)
        value = self._call(function, list(args))
        return ExecutionResult(value, self.output, self.steps)

    # -- evaluation ------------------------------------------------------------
    def _call(self, function, arg_values):
        if function.is_declaration():
            raise SimulationError(f"call to declaration @{function.name}")
        env = {}
        for arg, value in zip(function.args, arg_values):
            env[arg] = value
        block = function.entry
        prev_block = None
        while True:
            # Phi nodes evaluate in parallel against the incoming edge.
            phis = block.phis()
            if phis:
                values = [self._eval(env, p.incoming_value_for(prev_block))
                          for p in phis]
                for phi, value in zip(phis, values):
                    env[phi] = value
            for inst in block.instructions[len(phis):]:
                self.steps += 1
                if self.steps > self.fuel:
                    raise SimulationError("interpreter fuel exhausted")
                kind = type(inst)
                if kind is BranchInst:
                    prev_block, block = block, inst.target
                    break
                if kind is CondBranchInst:
                    cond = self._eval(env, inst.condition)
                    target = inst.true_target if cond else inst.false_target
                    prev_block, block = block, target
                    break
                if kind is RetInst:
                    if inst.value is None:
                        return None
                    return self._eval(env, inst.value)
                if kind is UnreachableInst:
                    raise SimulationError("executed unreachable")
                env[inst] = self._execute(env, inst)
            else:
                raise SimulationError(
                    f"fell off the end of block {block.name}")

    def _eval(self, env, value):
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, UndefValue):
            return 0.0 if value.type.is_float() else 0
        if isinstance(value, GlobalVariable):
            return self._global_addresses[value.name]
        if isinstance(value, (Argument,)):
            return env[value]
        return env[value]

    def _execute(self, env, inst):
        if isinstance(inst, BinaryInst):
            return self._binop(inst.opcode, self._eval(env, inst.lhs),
                               self._eval(env, inst.rhs), inst.type)
        if isinstance(inst, ICmpInst):
            return int(self._icmp(inst.predicate,
                                  self._eval(env, inst.operands[0]),
                                  self._eval(env, inst.operands[1])))
        if isinstance(inst, FCmpInst):
            return int(self._fcmp(inst.predicate,
                                  self._eval(env, inst.operands[0]),
                                  self._eval(env, inst.operands[1])))
        if isinstance(inst, AllocaInst):
            return self._allocate(inst.allocated_type.size_cells())
        if isinstance(inst, LoadInst):
            return self.load_cell(self._eval(env, inst.pointer))
        if isinstance(inst, StoreInst):
            self.store_cell(self._eval(env, inst.pointer),
                            self._eval(env, inst.value))
            return None
        if isinstance(inst, GEPInst):
            base = self._eval(env, inst.base)
            index = self._eval(env, inst.index)
            element = inst.type.pointee
            return base + index * element.size_cells()
        if isinstance(inst, SelectInst):
            cond = self._eval(env, inst.condition)
            return self._eval(env,
                              inst.true_value if cond else inst.false_value)
        if isinstance(inst, CastInst):
            return self._cast(inst, self._eval(env, inst.value))
        if isinstance(inst, CallInst):
            args = [self._eval(env, a) for a in inst.args]
            if inst.is_intrinsic():
                return self._intrinsic(inst.callee, args)
            return self._call(inst.callee, args)
        raise SimulationError(f"cannot interpret {inst!r}")

    # -- operators -----------------------------------------------------------
    # All value semantics live in repro.ir.arith (exact 64-bit integer
    # division included) so the interpreter, simulators, and constant
    # folding cannot drift apart.
    _binop = staticmethod(arith.eval_binop)
    _icmp = staticmethod(arith.icmp)
    _fcmp = staticmethod(arith.fcmp)

    @staticmethod
    def _cast(inst, value):
        opcode = inst.opcode
        if opcode in ("sext", "zext"):
            if opcode == "zext":
                source_bits = inst.value.type.bits
                value &= (1 << source_bits) - 1
            return inst.type.wrap(value)
        if opcode == "trunc":
            return inst.type.wrap(value)
        if opcode == "sitofp":
            return float(value)
        if opcode == "fptosi":
            return arith.fptosi(value, inst.type)
        raise SimulationError(f"unknown cast {opcode}")

    def _intrinsic(self, name, args):
        if name == "print_int":
            self.output.append(("i", IntType(64).wrap(int(args[0]))))
            return None
        if name == "print_float":
            self.output.append(("f", arith.round_float_output(args[0])))
            return None
        if name == "imin":
            return min(args[0], args[1])
        if name == "imax":
            return max(args[0], args[1])
        if name == "iabs":
            return _I64.wrap(abs(args[0]))
        if name == "memset":
            dest, value, count = args
            for i in range(int(count)):
                self.store_cell(dest + i, value)
            self.steps += max(0, int(count) - 1)
            return None
        if name == "memcpy":
            dest, src, count = args
            values = [self.load_cell(src + i) for i in range(int(count))]
            for i, v in enumerate(values):
                self.store_cell(dest + i, v)
            self.steps += max(0, int(count) - 1)
            return None
        return evaluate_float_intrinsic(name, args)


def run_module(module, function_name="main", args=(), fuel=5_000_000):
    """Convenience wrapper: interpret ``function_name`` and return the result."""
    return Interpreter(module, fuel=fuel).run(function_name, args)
