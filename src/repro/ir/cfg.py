"""CFG analyses: orderings, dominators, dominance frontiers, natural loops.

The dominator computation is the Cooper–Harvey–Kennedy iterative algorithm,
which is simple and fast enough for the function sizes this compiler sees.
"""


def successors_map(function):
    return {block: block.successors() for block in function.blocks}


def predecessors_map(function):
    """{block: per-edge predecessor list} read from the IR-maintained
    reverse links: entries come in function block order, a predecessor
    reaching the block through both arms of one ``condbr`` appearing
    once per edge — bit-identical to the historical from-scratch
    successor scan (kept as :func:`recompute_predecessors_map` for the
    verifier's cross-check), at O(V + E) without touching terminators.
    """
    positions = function.block_positions()
    preds = {}
    for block in function.blocks:
        entry = []
        maintained = block._preds
        if maintained:
            ordered = sorted(
                (positions[id(pred)], pred, count)
                for pred, count in maintained.items()
                if id(pred) in positions)
            for _position, pred, count in ordered:
                entry.extend([pred] * count)
        preds[block] = entry
    return preds


def recompute_predecessors_map(function):
    """The from-scratch successor scan (one per-edge entry, function
    block order).  Only the verifier's cross-check and the differential
    tests should use this — everything else reads the maintained links
    through :func:`predecessors_map`."""
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def unique_predecessors_map(function):
    """{block: ordered deduped predecessor list} for every block —
    entry-equal to ``block.predecessors()`` (which reports a ``condbr``
    with two identical targets once), read from the maintained links.
    """
    positions = function.block_positions()
    preds = {}
    for block in function.blocks:
        entry = [p for p in block._preds if id(p) in positions]
        if len(entry) > 1:
            entry.sort(key=lambda p: positions[id(p)])
        preds[block] = entry
    return preds


def split_edge(pred, succ, name=None):
    """Insert a fresh block on the CFG edge ``pred -> succ``.

    The new block is placed right after ``pred`` in the function's
    block order, ends in an unconditional branch to ``succ``, and
    ``succ``'s phis are retargeted to it.  When ``pred`` reaches
    ``succ`` through both arms of a ``condbr`` the two edges are
    subdivided together (phis report such a predecessor once, so a
    single landing block keeps their incoming lists consistent).
    Returns the new block.
    """
    from repro.ir.basicblock import BasicBlock
    from repro.ir.instructions import BranchInst

    function = pred.parent
    block = BasicBlock(name or function.next_name("split"))
    block.insert_after(pred)
    pred.terminator().replace_successor(succ, block)
    block.append(BranchInst(succ))
    for phi in succ.phis():
        phi.replace_incoming_block(pred, block)
    return block


def reverse_postorder(function):
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    entry = function.entry
    if entry is None:
        return []
    visited = set()
    order = []

    # Iterative DFS to avoid recursion limits on long CFG chains.
    stack = [(entry, iter(entry.successors()))]
    visited.add(entry)
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def reachable_blocks(function):
    return set(reverse_postorder(function))


class DominatorTree:
    """Immediate-dominator tree for the reachable part of a function."""

    def __init__(self, function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._index = {b: i for i, b in enumerate(self.rpo)}
        self.idom = {}
        self._compute()
        self.children = {b: [] for b in self.rpo}
        for block, dom in self.idom.items():
            if dom is not None and dom is not block:
                self.children[dom].append(block)

    def _compute(self):
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = predecessors_map(self.function)
        idom = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                candidates = [p for p in preds[block]
                              if p in idom and p in self._index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(idom, pred, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: (None if b is entry else idom.get(b))
                     for b in self.rpo}
        self.idom[entry] = None

    def _intersect(self, idom, a, b):
        while a is not b:
            while self._index[a] > self._index[b]:
                a = idom[a]
            while self._index[b] > self._index[a]:
                b = idom[b]
        return a

    def dominates(self, a, b):
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        while b is not None:
            if a is b:
                return True
            b = self.idom.get(b)
        return False

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def instruction_dominates(self, inst, other, positions=None):
        """True if the definition ``inst`` dominates the use site
        ``other``.

        Same-block queries are a single pass over the block (the
        historical double ``list.index`` walked it twice); pass an
        :class:`InstructionPositions` memo to make repeated same-block
        queries O(1) amortized (verifier sweeps, gvn leader checks,
        LCSSA formation)."""
        if inst.parent is other.parent:
            if inst is other:
                return False
            if positions is not None:
                return positions.index_of(inst) < positions.index_of(other)
            for candidate in inst.parent.instructions:
                if candidate is inst:
                    return True
                if candidate is other:
                    return False
            raise ValueError("instructions missing from their block")
        return self.strictly_dominates(inst.parent, other.parent)

    def dominance_frontiers(self):
        preds = predecessors_map(self.function)
        frontiers = {b: set() for b in self.rpo}
        for block in self.rpo:
            block_preds = [p for p in preds[block] if p in self._index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not None and runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom.get(runner)
        return frontiers


class InstructionPositions:
    """Memoized per-block instruction positions for repeated same-block
    dominance queries (verifier operand sweeps, gvn leader checks,
    licm-style worklists).

    A block's memo is rebuilt whenever its instruction count changes;
    pure erasures between queries preserve relative order, so cached
    indices stay comparison-correct until the length check fires.
    Callers interleaving insertions *and* removals that cancel out must
    drop the memo themselves (no pass does today)."""

    __slots__ = ("_by_block",)

    def __init__(self):
        self._by_block = {}

    def index_of(self, inst):
        block = inst.parent
        memo = self._by_block.get(id(block))
        if memo is None or memo[0] is not block or \
                len(memo[1]) != len(block.instructions):
            table = {id(i): k for k, i in enumerate(block.instructions)}
            memo = (block, table)
            self._by_block[id(block)] = memo
        return memo[1][id(inst)]


class Loop:
    """A natural loop: header plus the body blocks of its back edges."""

    def __init__(self, header):
        self.header = header
        self.blocks = {header}
        self.parent = None
        self.children = []

    @property
    def depth(self):
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, block):
        return block in self.blocks

    def ordered_blocks(self):
        """The loop's blocks in the function's (deterministic) block
        order.  ``blocks`` is a set: iterating it directly follows
        object addresses, which vary run-to-run — transformation passes
        must use this accessor so their output is a pure function of the
        input program.

        Adaptive cost: a small loop in a big function position-sorts
        its members via the function-maintained block-position index
        (O(|loop| log |loop|), historically an O(|function.blocks|)
        scan per query); a loop covering a sizable fraction of the
        function keeps the scan, whose per-block constant is lower.
        Both paths produce the identical list."""
        blocks = self.blocks
        function_blocks = self.header.parent.blocks
        if len(blocks) * 4 >= len(function_blocks):
            return [b for b in function_blocks if b in blocks]
        positions = self.header.parent.block_positions()
        present = [b for b in blocks if id(b) in positions]
        present.sort(key=lambda b: positions[id(b)])
        return present

    def exit_blocks(self):
        """Blocks outside the loop targeted from inside.

        Deterministically ordered: exiting blocks are visited in the
        function's block order (``blocks`` is a set; iterating it
        directly would follow object addresses, which vary
        run-to-run — multi-exit fixups must be a pure function of the
        input program)."""
        exits = []
        for block in self.ordered_blocks():
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self):
        """In-loop blocks with an edge out of the loop, in the
        function's (deterministic) block order."""
        return [b for b in self.ordered_blocks()
                if any(s not in self.blocks for s in b.successors())]

    def exit_edges(self):
        """Ordered ``(exiting_block, exit_block)`` pairs, one per
        distinct CFG edge out of the loop."""
        edges = []
        for block in self.exiting_blocks():
            seen = set()
            for succ in block.successors():
                if succ not in self.blocks and id(succ) not in seen:
                    seen.add(id(succ))
                    edges.append((block, succ))
        return edges

    def has_dedicated_exits(self):
        """True when every exit block's predecessors are all inside the
        loop (the LoopSimplify invariant multi-exit fixups rely on)."""
        for exit_block in self.exit_blocks():
            for pred in exit_block.predecessors():
                if pred not in self.blocks:
                    return False
        return True

    def latches(self):
        return [p for p in self.header.predecessors() if p in self.blocks]

    def preheader(self):
        """The unique out-of-loop predecessor of the header, if any, and
        only if it unconditionally branches to the header."""
        outside = [p for p in self.header.predecessors()
                   if p not in self.blocks]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors() == [self.header]:
            return candidate
        return None

    def __repr__(self):
        return (f"<Loop header={self.header.name} "
                f"blocks={len(self.blocks)} depth={self.depth}>")


class LoopInfo:
    """Discovers the natural-loop nest of a function.

    ``domtree`` optionally reuses an already-computed (valid)
    :class:`DominatorTree` instead of rebuilding one — the analysis
    manager passes its cached tree here.
    """

    def __init__(self, function, domtree=None):
        self.function = function
        self.loops = []       # all loops, outermost first
        self.top_level = []
        self._block_loop = {}
        self._compute(domtree)

    def _compute(self, dom=None):
        if dom is None:
            dom = DominatorTree(self.function)
        headers = {}
        preds = predecessors_map(self.function)
        for block in dom.rpo:
            for succ in block.successors():
                if succ in dom._index and dom.dominates(succ, block):
                    loop = headers.setdefault(succ, Loop(succ))
                    self._collect(loop, block, preds)
        loops = list(headers.values())
        # Establish nesting: a loop is a child of the smallest loop strictly
        # containing its header (other than itself).
        loops.sort(key=lambda lp: len(lp.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if outer is not inner and inner.header in outer.blocks:
                    inner.parent = outer
                    outer.children.append(inner)
                    break
        self.loops = sorted(loops, key=lambda lp: lp.depth)
        self.top_level = [lp for lp in loops if lp.parent is None]
        for loop in sorted(loops, key=lambda lp: -len(lp.blocks)):
            for block in loop.blocks:
                self._block_loop[block] = loop

    def _collect(self, loop, latch, preds):
        worklist = [latch]
        while worklist:
            block = worklist.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            worklist.extend(preds.get(block, []))

    def loop_of(self, block):
        """Innermost loop containing ``block``, or None."""
        return self._block_loop.get(block)

    def depth_of(self, block):
        loop = self.loop_of(block)
        return 0 if loop is None else loop.depth

    def innermost_loops(self):
        return [lp for lp in self.loops if not lp.children]

    def max_depth(self):
        return max((lp.depth for lp in self.loops), default=0)
