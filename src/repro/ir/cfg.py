"""CFG analyses: orderings, dominators, dominance frontiers, natural loops.

The dominator computation is the Cooper–Harvey–Kennedy iterative algorithm,
which is simple and fast enough for the function sizes this compiler sees.
"""


def successors_map(function):
    return {block: block.successors() for block in function.blocks}


def predecessors_map(function):
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def unique_predecessors_map(function):
    """{block: ordered deduped predecessor list} for every block —
    entry-equal to ``block.predecessors()`` (which reports a ``condbr``
    with two identical targets once), at one CFG walk for the whole
    function instead of one per query."""
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        successors = block.successors()
        if len(successors) == 2 and successors[0] is successors[1]:
            successors = successors[:1]
        for succ in successors:
            entry = preds.get(succ)
            if entry is not None:
                entry.append(block)
    return preds


def split_edge(pred, succ, name=None):
    """Insert a fresh block on the CFG edge ``pred -> succ``.

    The new block is placed right after ``pred`` in the function's
    block order, ends in an unconditional branch to ``succ``, and
    ``succ``'s phis are retargeted to it.  When ``pred`` reaches
    ``succ`` through both arms of a ``condbr`` the two edges are
    subdivided together (phis report such a predecessor once, so a
    single landing block keeps their incoming lists consistent).
    Returns the new block.
    """
    from repro.ir.basicblock import BasicBlock
    from repro.ir.instructions import BranchInst

    function = pred.parent
    block = BasicBlock(name or function.next_name("split"), function)
    function.blocks.insert(function.blocks.index(pred) + 1, block)
    pred.terminator().replace_successor(succ, block)
    block.append(BranchInst(succ))
    for phi in succ.phis():
        phi.replace_incoming_block(pred, block)
    return block


def reverse_postorder(function):
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    entry = function.entry
    if entry is None:
        return []
    visited = set()
    order = []

    # Iterative DFS to avoid recursion limits on long CFG chains.
    stack = [(entry, iter(entry.successors()))]
    visited.add(entry)
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def reachable_blocks(function):
    return set(reverse_postorder(function))


class DominatorTree:
    """Immediate-dominator tree for the reachable part of a function."""

    def __init__(self, function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._index = {b: i for i, b in enumerate(self.rpo)}
        self.idom = {}
        self._compute()
        self.children = {b: [] for b in self.rpo}
        for block, dom in self.idom.items():
            if dom is not None and dom is not block:
                self.children[dom].append(block)

    def _compute(self):
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = predecessors_map(self.function)
        idom = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                candidates = [p for p in preds[block]
                              if p in idom and p in self._index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(idom, pred, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: (None if b is entry else idom.get(b))
                     for b in self.rpo}
        self.idom[entry] = None

    def _intersect(self, idom, a, b):
        while a is not b:
            while self._index[a] > self._index[b]:
                a = idom[a]
            while self._index[b] > self._index[a]:
                b = idom[b]
        return a

    def dominates(self, a, b):
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        while b is not None:
            if a is b:
                return True
            b = self.idom.get(b)
        return False

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def instruction_dominates(self, inst, other):
        """True if the definition ``inst`` dominates the use site ``other``."""
        if inst.parent is other.parent:
            block = inst.parent.instructions
            return block.index(inst) < block.index(other)
        return self.strictly_dominates(inst.parent, other.parent)

    def dominance_frontiers(self):
        preds = predecessors_map(self.function)
        frontiers = {b: set() for b in self.rpo}
        for block in self.rpo:
            block_preds = [p for p in preds[block] if p in self._index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not None and runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom.get(runner)
        return frontiers


class Loop:
    """A natural loop: header plus the body blocks of its back edges."""

    def __init__(self, header):
        self.header = header
        self.blocks = {header}
        self.parent = None
        self.children = []

    @property
    def depth(self):
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, block):
        return block in self.blocks

    def ordered_blocks(self):
        """The loop's blocks in the function's (deterministic) block
        order.  ``blocks`` is a set: iterating it directly follows
        object addresses, which vary run-to-run — transformation passes
        must use this accessor so their output is a pure function of the
        input program."""
        function = self.header.parent
        return [b for b in function.blocks if b in self.blocks]

    def exit_blocks(self):
        """Blocks outside the loop targeted from inside.

        Deterministically ordered: exiting blocks are visited in the
        function's block order (``blocks`` is a set; iterating it
        directly would follow object addresses, which vary
        run-to-run — multi-exit fixups must be a pure function of the
        input program)."""
        exits = []
        for block in self.ordered_blocks():
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self):
        """In-loop blocks with an edge out of the loop, in the
        function's (deterministic) block order."""
        return [b for b in self.ordered_blocks()
                if any(s not in self.blocks for s in b.successors())]

    def exit_edges(self):
        """Ordered ``(exiting_block, exit_block)`` pairs, one per
        distinct CFG edge out of the loop."""
        edges = []
        for block in self.exiting_blocks():
            seen = set()
            for succ in block.successors():
                if succ not in self.blocks and id(succ) not in seen:
                    seen.add(id(succ))
                    edges.append((block, succ))
        return edges

    def has_dedicated_exits(self):
        """True when every exit block's predecessors are all inside the
        loop (the LoopSimplify invariant multi-exit fixups rely on)."""
        for exit_block in self.exit_blocks():
            for pred in exit_block.predecessors():
                if pred not in self.blocks:
                    return False
        return True

    def latches(self):
        return [p for p in self.header.predecessors() if p in self.blocks]

    def preheader(self):
        """The unique out-of-loop predecessor of the header, if any, and
        only if it unconditionally branches to the header."""
        outside = [p for p in self.header.predecessors()
                   if p not in self.blocks]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors() == [self.header]:
            return candidate
        return None

    def __repr__(self):
        return (f"<Loop header={self.header.name} "
                f"blocks={len(self.blocks)} depth={self.depth}>")


class LoopInfo:
    """Discovers the natural-loop nest of a function.

    ``domtree`` optionally reuses an already-computed (valid)
    :class:`DominatorTree` instead of rebuilding one — the analysis
    manager passes its cached tree here.
    """

    def __init__(self, function, domtree=None):
        self.function = function
        self.loops = []       # all loops, outermost first
        self.top_level = []
        self._block_loop = {}
        self._compute(domtree)

    def _compute(self, dom=None):
        if dom is None:
            dom = DominatorTree(self.function)
        headers = {}
        preds = predecessors_map(self.function)
        for block in dom.rpo:
            for succ in block.successors():
                if succ in dom._index and dom.dominates(succ, block):
                    loop = headers.setdefault(succ, Loop(succ))
                    self._collect(loop, block, preds)
        loops = list(headers.values())
        # Establish nesting: a loop is a child of the smallest loop strictly
        # containing its header (other than itself).
        loops.sort(key=lambda lp: len(lp.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if outer is not inner and inner.header in outer.blocks:
                    inner.parent = outer
                    outer.children.append(inner)
                    break
        self.loops = sorted(loops, key=lambda lp: lp.depth)
        self.top_level = [lp for lp in loops if lp.parent is None]
        for loop in sorted(loops, key=lambda lp: -len(lp.blocks)):
            for block in loop.blocks:
                self._block_loop[block] = loop

    def _collect(self, loop, latch, preds):
        worklist = [latch]
        while worklist:
            block = worklist.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            worklist.extend(preds.get(block, []))

    def loop_of(self, block):
        """Innermost loop containing ``block``, or None."""
        return self._block_loop.get(block)

    def depth_of(self, block):
        loop = self.loop_of(block)
        return 0 if loop is None else loop.depth

    def innermost_loops(self):
        return [lp for lp in self.loops if not lp.children]

    def max_depth(self):
        return max((lp.depth for lp in self.loops), default=0)
