"""Intrinsic function signatures shared by the frontend, interpreter,
backend lowering, and the simulator's cost model."""

import math

from repro.ir.types import F64, I64, VOID

# name -> (param types or None for variadic-by-shape, return type)
_FLOAT_UNARY = ("sqrt", "exp", "log", "sin", "cos", "fabs")


def intrinsic_return_type(name, args):
    if name in _FLOAT_UNARY or name == "pow":
        return F64
    if name in ("imin", "imax"):
        return I64
    if name == "iabs":
        return I64
    if name in ("print_int", "print_float", "memset", "memcpy"):
        return VOID
    raise ValueError(f"unknown intrinsic {name!r}")


def intrinsic_param_types(name):
    if name in _FLOAT_UNARY:
        return (F64,)
    if name == "pow":
        return (F64, F64)
    if name in ("imin", "imax"):
        return (I64, I64)
    if name == "iabs":
        return (I64,)
    if name == "print_int":
        return (I64,)
    if name == "print_float":
        return (F64,)
    if name == "memset":
        # (dest pointer, value, count) — pointer type checked structurally.
        return None
    if name == "memcpy":
        return None
    raise ValueError(f"unknown intrinsic {name!r}")


def evaluate_float_intrinsic(name, args):
    """Reference semantics used by both the interpreter and the simulator."""
    if name == "sqrt":
        return math.sqrt(args[0]) if args[0] >= 0.0 else float("nan")
    if name == "exp":
        try:
            return math.exp(args[0])
        except OverflowError:
            return float("inf")
    if name == "log":
        if args[0] > 0.0:
            return math.log(args[0])
        return float("-inf") if args[0] == 0.0 else float("nan")
    if name == "sin":
        return math.sin(args[0])
    if name == "cos":
        return math.cos(args[0])
    if name == "fabs":
        return abs(args[0])
    if name == "pow":
        try:
            result = math.pow(args[0], args[1])
        except (OverflowError, ValueError):
            result = float("nan")
        return result
    raise ValueError(f"not a float intrinsic: {name!r}")
