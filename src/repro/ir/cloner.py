"""Whole-module cloning.

Used by analyses that want to normalize a module (e.g. run mem2reg to
expose induction variables) without mutating the module under
measurement.
"""

from repro.ir.function import Function, Module
from repro.ir.instructions import CallInst, PhiInst
from repro.ir.values import GlobalVariable


def clone_module(module):
    """Deep-copy ``module`` (functions, blocks, instructions, globals)."""
    from repro.passes.cloning import clone_instruction

    copy = Module(module.name)
    # Globals first (operands of instructions).
    global_map = {}
    for gv in module.globals.values():
        initializer = gv.initializer
        if isinstance(initializer, (list, tuple)):
            initializer = list(initializer)
        clone = GlobalVariable(gv.name, gv.value_type, initializer,
                               gv.is_constant_global)
        copy.add_global(clone)
        global_map[id(gv)] = clone
    # Function shells (call targets).
    function_map = {}
    for function in module.functions.values():
        shell = Function(function.name, function.ftype)
        shell.is_pure = function.is_pure
        shell.accesses_memory = function.accesses_memory
        shell.attributes = set(function.attributes)
        copy.add_function(shell)
        function_map[id(function)] = shell
    # Bodies.
    for function in module.functions.values():
        shell = function_map[id(function)]
        value_map = dict(global_map)
        for old_arg, new_arg in zip(function.args, shell.args):
            new_arg.name = old_arg.name
            value_map[id(old_arg)] = new_arg
        block_map = {}
        for block in function.blocks:
            block_map[id(block)] = shell.append_block(block.name)
        for block in function.blocks:
            target = block_map[id(block)]
            for inst in block.instructions:
                clone = clone_instruction(inst, value_map, block_map,
                                          shell)
                if isinstance(clone, CallInst) and \
                        not clone.is_intrinsic():
                    # Retarget to the cloned callee.
                    clone.callee = function_map[id(clone.callee)]
                target.append(clone)
                value_map[id(inst)] = clone
        # Phi incoming lists (second pass: all blocks/values exist).
        for block in function.blocks:
            target = block_map[id(block)]
            for inst, clone in zip(block.instructions,
                                   target.instructions):
                if isinstance(inst, PhiInst):
                    for value, pred in inst.incoming():
                        clone.add_incoming(
                            value_map.get(id(value), value),
                            block_map.get(id(pred), pred))
    return copy
