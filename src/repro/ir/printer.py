"""Textual IR printer (LLVM-flavoured).

The text form is used in error messages, golden tests, and as the input to
program hashing (the PSS uses the hash to detect inactive phases).
"""

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)
from repro.ir.function import Function


def value_ref(value):
    """Render a value as an operand reference."""
    if isinstance(value, ConstantInt):
        return f"{value.type} {value.value}"
    if isinstance(value, ConstantFloat):
        return f"{value.type} {value.value!r}"
    if isinstance(value, UndefValue):
        return f"{value.type} undef"
    if isinstance(value, GlobalVariable):
        return f"{value.type} @{value.name}"
    if isinstance(value, Function):
        return f"@{value.name}"
    if isinstance(value, Argument):
        return f"{value.type} %{value.name}"
    return f"{value.type} %{value.name}"


def _short(value):
    text = value_ref(value)
    return text


def instruction_to_text(inst):
    name = f"%{inst.name} = " if not inst.type.is_void() else ""
    if isinstance(inst, BinaryInst):
        return (f"{name}{inst.opcode} {_short(inst.lhs)}, "
                f"{_short(inst.rhs)}")
    if isinstance(inst, ICmpInst):
        return (f"{name}icmp {inst.predicate} {_short(inst.operands[0])}, "
                f"{_short(inst.operands[1])}")
    if isinstance(inst, FCmpInst):
        return (f"{name}fcmp {inst.predicate} {_short(inst.operands[0])}, "
                f"{_short(inst.operands[1])}")
    if isinstance(inst, AllocaInst):
        return f"{name}alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return f"{name}load {_short(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_short(inst.value)}, {_short(inst.pointer)}"
    if isinstance(inst, GEPInst):
        return f"{name}gep {_short(inst.base)}, {_short(inst.index)}"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(f"[ {_short(v)}, %{b.name} ]"
                          for v, b in inst.incoming())
        return f"{name}phi {inst.type} {pairs}"
    if isinstance(inst, BranchInst):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranchInst):
        return (f"condbr {_short(inst.condition)}, "
                f"label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}")
    if isinstance(inst, RetInst):
        return f"ret {_short(inst.value)}" if inst.value else "ret void"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, CallInst):
        args = ", ".join(_short(a) for a in inst.args)
        return f"{name}call @{inst.callee_name()}({args})"
    if isinstance(inst, SelectInst):
        return (f"{name}select {_short(inst.condition)}, "
                f"{_short(inst.true_value)}, {_short(inst.false_value)}")
    if isinstance(inst, CastInst):
        return f"{name}{inst.opcode} {_short(inst.value)} to {inst.type}"
    raise TypeError(f"cannot print instruction of type {type(inst)}")


def function_to_text(function):
    if function.is_declaration():
        return f"declare {function.ftype.ret} @{function.name}\n"
    args = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    lines = [f"define {function.ftype.ret} @{function.name}({args}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {instruction_to_text(inst)}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def module_to_text(module):
    parts = []
    header = _globals_text(module)
    if header:
        parts.append(header)
        parts.append("")
    for function in module.functions.values():
        parts.append(function_to_text(function))
    return "\n".join(parts)


def _globals_text(module):
    parts = []
    for gv in module.globals.values():
        kind = "constant" if gv.is_constant_global else "global"
        parts.append(f"@{gv.name} = {kind} {gv.value_type} "
                     f"{gv.initializer!r}")
    return "\n".join(parts)


def function_fingerprint(function):
    """A stable hash of one function's structure.

    Local value names do not enter the digest, so transformation no-ops
    that merely rename values do not register as changes (the PSS relies
    on this to detect inactive phases, paper §III-D).  Function
    attributes (e.g. the SLP-enable marker) are part of the digest: they
    change generated code, so two functions differing only in attributes
    must not share a fingerprint.

    Computed structurally (:mod:`repro.ir.structhash`) — no text is
    materialized and the function is not mutated.  The legacy
    print-then-hash form survives as :func:`function_text_fingerprint`;
    the two agree collision-wise (tests/ir/test_structhash.py).
    """
    from repro.ir.structhash import structural_fingerprint
    return structural_fingerprint(function)


def function_text_fingerprint(function):
    """Legacy fingerprint: canonical-rename, print, hash the text.

    Kept as the seed cost model's fingerprint (the benchmark baseline in
    ``benchmarks/test_passmanager.py``) and as the reference that the
    structural hash is property-tested against.  Note the side effect:
    locals are renamed to their canonical names.
    """
    import hashlib

    if not function.is_declaration():
        function.rename_locals()
    text = function_to_text(function)
    if function.attributes:
        text += "attrs " + ",".join(sorted(function.attributes)) + "\n"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_fingerprint(module, am=None):
    """A stable hash of the module's structure, composed from
    per-function fingerprints plus the globals header.

    With an :class:`repro.passes.analysis.AnalysisManager` the
    per-function digests are served from its cache — re-fingerprinting
    a module after a phase only pays for the functions the phase
    actually changed — and the composed digest itself is memoized until
    the next invalidation, so activity probing after an inactive phase
    is a dict hit.
    """
    import hashlib

    if am is not None and am.enabled:
        cached = am.cached_module_fingerprint(module)
        if cached is not None:
            return cached
    parts = [_globals_text(module)]
    for function in module.functions.values():
        if am is not None:
            parts.append(am.fingerprint(function))
        else:
            parts.append(function_fingerprint(function))
    digest = hashlib.sha256(
        "\x1f".join(parts).encode("utf-8")).hexdigest()
    if am is not None and am.enabled:
        am.store_module_fingerprint(module, digest)
    return digest


def module_text_fingerprint(module):
    """Legacy module hash composed from per-function text fingerprints
    (the seed cost model; see :func:`function_text_fingerprint`)."""
    import hashlib

    parts = [_globals_text(module)]
    for function in module.functions.values():
        parts.append(function_text_fingerprint(function))
    return hashlib.sha256(
        "\x1f".join(parts).encode("utf-8")).hexdigest()
