"""Exact 64-bit arithmetic — the IR's evaluation semantics, defined once.

Every engine that evaluates IR-level values (the reference interpreter,
the seed machine simulator, the tape-compiled simulator, constant
folding in ``passes/utils.py``, and the frontend's constant-expression
evaluator) imports its integer and float semantics from this module,
LLVM-APInt-style.  There is deliberately no second definition anywhere:
a semantics bug fixed here is fixed in every engine at once, and the
differential tests compare engines that can no longer share a wrong
shortcut.

The semantics:

- Integers are fixed-width two's complement; every arithmetic result
  wraps (``add``/``sub``/``mul``/shifts).
- ``sdiv``/``srem`` are C-style: the quotient truncates toward zero and
  the remainder takes the dividend's sign, computed with *exact integer
  ops* (floor division plus a sign correction) — never through a Python
  float, which silently rounds any magnitude above 2**53.
  ``INT64_MIN sdiv -1`` wraps back to ``INT64_MIN`` (and the matching
  ``srem`` is 0), as LLVM's APInt does.
- Division/remainder by zero traps (:class:`SimulationError`).
- ``fdiv`` by zero follows IEEE-ish rules (0/0 and NaN/0 are NaN,
  otherwise a signed infinity); all ``fcmp`` predicates are *ordered*
  and return false when either operand is NaN.
"""

import math
import operator

from repro.errors import SimulationError
from repro.ir.types import I64

MASK64 = (1 << 64) - 1
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1
_TWO63 = 1 << 63
_TWO64 = 1 << 64


def wrap64(value):
    """Wrap an arbitrary Python int to two's-complement i64."""
    value &= MASK64
    return value - _TWO64 if value >= _TWO63 else value


# -- integer division (the fixed miscompile class) ---------------------------

def sdiv_trunc(a, b):
    """Exact C-style quotient: truncated toward zero, unwrapped.

    Floor division with a sign correction — ``a // b`` floors, so when
    the signs differ and the division is inexact the quotient is one
    below the truncated result.
    """
    if b == 0:
        raise SimulationError("integer division by zero")
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


def srem_trunc(a, b):
    """Exact C-style remainder: sign follows the dividend, unwrapped."""
    if b == 0:
        raise SimulationError("integer remainder by zero")
    r = a % b
    if r != 0 and (a < 0) != (b < 0):
        r -= b
    return r


def sdiv64(a, b):
    """i64 sdiv: truncating, wrapping (``INT64_MIN sdiv -1 == INT64_MIN``)."""
    return wrap64(sdiv_trunc(a, b))


def srem64(a, b):
    """i64 srem: dividend-signed remainder (``INT64_MIN srem -1 == 0``)."""
    return wrap64(srem_trunc(a, b))


# -- floats ------------------------------------------------------------------

def fdiv(a, b):
    """f64 division with the IR's divide-by-zero rules."""
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        return math.copysign(float("inf"), a) * math.copysign(1.0, b)
    return a / b


def fptosi(value, int_type=I64):
    """``fptosi``: truncate toward zero; NaN and infinities go to 0."""
    if math.isnan(value) or math.isinf(value):
        return 0
    return int_type.wrap(int(value))


def round_float_output(value):
    """The ``print_float`` observable: 6 significant digits, so
    value-preserving float reassociations don't flip differential tests."""
    return float(f"{value:.6g}")


# -- comparison predicates ---------------------------------------------------

ICMP_PREDICATES = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
}

FCMP_PREDICATES = {
    "oeq": operator.eq, "one": operator.ne,
    "olt": operator.lt, "ole": operator.le,
    "ogt": operator.gt, "oge": operator.ge,
}


def icmp(predicate, a, b):
    return ICMP_PREDICATES[predicate](a, b)


def fcmp(predicate, a, b):
    """Ordered float comparison: false when either operand is NaN."""
    if math.isnan(a) or math.isnan(b):
        return False
    return FCMP_PREDICATES[predicate](a, b)


# -- full binary-op evaluation (interpreter / folding entry point) -----------

def eval_int_binop(opcode, a, b, int_type=I64):
    """Evaluate an integer binary opcode at ``int_type``'s width."""
    if opcode == "add":
        return int_type.wrap(a + b)
    if opcode == "sub":
        return int_type.wrap(a - b)
    if opcode == "mul":
        return int_type.wrap(a * b)
    if opcode == "sdiv":
        return int_type.wrap(sdiv_trunc(a, b))
    if opcode == "srem":
        return int_type.wrap(srem_trunc(a, b))
    if opcode == "and":
        return int_type.wrap(a & b)
    if opcode == "or":
        return int_type.wrap(a | b)
    if opcode == "xor":
        return int_type.wrap(a ^ b)
    if opcode == "shl":
        return int_type.wrap(a << (b & 63))
    if opcode == "ashr":
        return int_type.wrap(a >> (b & 63))
    if opcode == "lshr":
        mask = (1 << int_type.bits) - 1
        return int_type.wrap((a & mask) >> (b & 63))
    raise SimulationError(f"unknown integer binop {opcode}")


def eval_float_binop(opcode, a, b):
    if opcode == "fadd":
        return a + b
    if opcode == "fsub":
        return a - b
    if opcode == "fmul":
        return a * b
    if opcode == "fdiv":
        return fdiv(a, b)
    raise SimulationError(f"unknown float binop {opcode}")


def eval_binop(opcode, a, b, type_):
    """Evaluate any IR binary opcode (integer ops wrap at ``type_``)."""
    if type_.is_float():
        return eval_float_binop(opcode, a, b)
    return eval_int_binop(opcode, a, b, type_)
