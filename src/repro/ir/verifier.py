"""Structural verifier for IR modules.

Passes are run under differential testing in the test suite; the verifier
catches structural corruption early so failures point at the offending pass
rather than at the interpreter or backend.

``verify_function`` optionally takes an
:class:`repro.passes.analysis.AnalysisManager`.  The dominance check
always recomputes its dominator tree — the verifier polices the
preservation contract, so it must not trust a preserved (possibly
stale) tree — and seeds the fresh tree into the manager so the next
pass reuses it.
"""

from repro.errors import VerificationError
from repro.ir.cfg import (
    DominatorTree,
    InstructionPositions,
    LoopInfo,
    predecessors_map,
    reachable_blocks,
)
from repro.ir.instructions import Instruction, PhiInst
from repro.ir.values import Argument, Constant, GlobalVariable
from repro.ir.function import Function


def verify_module(module, am=None, lcssa=False):
    for function in module.functions.values():
        if not function.is_declaration():
            verify_function(function, am, lcssa=lcssa)


def verify_function(function, am=None, lcssa=False):
    if not function.blocks:
        return
    _check_terminators(function)
    _check_parent_links(function)
    _check_cfg_links(function)
    preds = predecessors_map(function)
    _check_operand_scope(function)
    _check_phis(function, preds)
    _check_use_lists(function)
    dom = DominatorTree(function)
    if am is not None:
        am.put("domtree", function, dom)
    _check_dominance(function, dom)
    if lcssa:
        check_lcssa(function, dom)


def verify_function_bookkeeping(function):
    """Only the checks that are NOT a function of printed content:
    def-use registration, parent links, and the maintained CFG state.
    A function whose canonical fingerprint already verified
    (``passes.base.VERIFIED_CONTENTS``) skips the content-determined
    checks but must still prove its bookkeeping — a
    fingerprint-identical body can carry a stale use list, parent
    pointer, or predecessor link, and the worklist engines, DCE, and
    every CFG query trust them."""
    if not function.blocks:
        return
    _check_parent_links(function)
    _check_cfg_links(function)
    _check_use_lists(function)


def _fail(function, message):
    raise VerificationError(f"in @{function.name}: {message}")


def _check_terminators(function):
    for block in function.blocks:
        term = block.terminator()
        if term is None:
            _fail(function, f"block {block.name} has no terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                _fail(function,
                      f"terminator in the middle of block {block.name}")
        for succ in term.successors():
            if succ not in function.blocks:
                _fail(function,
                      f"block {block.name} branches to a detached block")


def _check_cfg_links(function):
    """Cross-check the IR-maintained CFG state against a from-scratch
    recompute: every block's maintained predecessor links (with edge
    counts) must equal the successor-derived edges, and a served
    block-position index must match the actual block order.  This turns
    the silent-stale-link bug class (the PR-2 exit-phi corruption, the
    PR-4 stale loop membership) into an immediate verification error
    naming the diverging block."""
    recomputed = {id(b): {} for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            entry = recomputed.get(id(succ))
            if entry is None:
                continue  # detached target: _check_terminators reports it
            entry[id(block)] = entry.get(id(block), 0) + 1
    for block in function.blocks:
        maintained = {}
        for pred, count in block._preds.items():
            if pred.parent is not function:
                _fail(function,
                      f"block {block.name} keeps a maintained "
                      f"predecessor link from detached block {pred.name}")
            if count <= 0:
                _fail(function,
                      f"non-positive maintained edge count "
                      f"{pred.name} -> {block.name}")
            maintained[id(pred)] = count
        expected = recomputed[id(block)]
        if maintained != expected:
            names = {id(b): b.name for b in function.blocks}
            def _render(counts, names=names):
                return sorted((names.get(key, "<detached>"), count)
                              for key, count in counts.items())
            _fail(function,
                  f"maintained predecessor links of {block.name} diverge "
                  f"from the CFG: maintained={_render(maintained)} "
                  f"recomputed={_render(expected)}")
    cached = function._positions
    if cached is not None and len(cached) == len(function.blocks):
        for index, block in enumerate(function.blocks):
            if cached.get(id(block)) != index:
                _fail(function,
                      f"stale block-position index at {block.name} "
                      f"(cached {cached.get(id(block))}, actual {index})")


def _check_parent_links(function):
    for block in function.blocks:
        if block.parent is not function:
            _fail(function, f"block {block.name} has a stale parent link")
        for inst in block.instructions:
            if inst.parent is not block:
                _fail(function, f"instruction in {block.name} has a stale "
                                f"parent link: {inst!r}")


def _check_operand_scope(function):
    for block in function.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if op.parent is None or op.parent.parent is not function:
                        _fail(function,
                              f"operand {op!r} of {inst!r} is detached")
                elif isinstance(op, Argument):
                    if op.function is not function:
                        _fail(function,
                              f"foreign argument used by {inst!r}")
                elif not isinstance(op, (Constant, GlobalVariable, Function)):
                    _fail(function, f"invalid operand kind: {op!r}")


def _check_phis(function, preds):
    reachable = reachable_blocks(function)
    for block in function.blocks:
        if block not in reachable:
            # Unreachable code may hold stale phi entries until a CFG
            # cleanup pass runs; it can never execute, so tolerate it.
            continue
        block_preds = preds.get(block, [])
        for phi in block.phis():
            if len(phi.incoming_blocks) != len(phi.operands):
                _fail(function, "phi incoming/operand length mismatch")
            incoming = set(id(b) for b in phi.incoming_blocks)
            if incoming != set(id(p) for p in block_preds):
                _fail(function,
                      f"phi in {block.name} does not match predecessors "
                      f"({[b.name for b in phi.incoming_blocks]} vs "
                      f"{[p.name for p in block_preds]})")
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    _fail(function,
                          f"phi after non-phi in block {block.name}")
            else:
                seen_non_phi = True


def _check_use_lists(function):
    for block in function.blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                if (inst, index) not in op.uses:
                    _fail(function,
                          f"use list of {op!r} missing ({inst!r}, {index})")


def check_lcssa(function, dom=None, loops=None):
    """LCSSA check mode: every value defined inside a loop and used
    outside it must flow through a phi in one of the loop's (dedicated)
    exit blocks.

    Run by the canonicalization tests (not by default verification —
    most pipeline states legitimately leave LCSSA form; the loop-pass
    family re-establishes it on demand).
    """
    if not function.blocks:
        return
    if dom is None:
        dom = DominatorTree(function)
    if loops is None:
        loops = LoopInfo(function, domtree=dom)
    reachable = reachable_blocks(function)
    for loop in loops.loops:
        exit_blocks = set(map(id, loop.exit_blocks()))
        for block in loop.ordered_blocks():
            if block not in reachable:
                continue
            for inst in block.instructions:
                for user, _ in inst.uses:
                    parent = user.parent
                    if parent is None or parent in loop.blocks:
                        continue
                    if isinstance(user, PhiInst) and \
                            id(parent) in exit_blocks:
                        continue
                    if parent not in reachable:
                        continue
                    _fail(function,
                          f"loop value {inst!r} (header "
                          f"{loop.header.name}) used outside the loop "
                          f"by {user!r} without an exit phi")


def _check_dominance(function, dom):
    reachable = reachable_blocks(function)
    # The operand sweep issues many same-block dominance queries per
    # block; memoized instruction positions make each O(1) (the blocks
    # do not mutate during verification).
    positions = InstructionPositions()
    for block in function.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming():
                    if isinstance(value, Instruction):
                        if pred not in reachable:
                            continue
                        if value.parent not in reachable:
                            _fail(function,
                                  "phi incoming from unreachable def: "
                                  f"{inst!r}")
                        term = pred.terminator()
                        if not dom.instruction_dominates(
                                value, term, positions) and \
                                value is not inst:
                            _fail(function,
                                  f"phi incoming {value!r} does not "
                                  f"dominate edge {pred.name}->{block.name}")
                continue
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if op.parent not in reachable:
                        continue
                    if not dom.instruction_dominates(op, inst, positions):
                        _fail(function,
                              f"{op!r} does not dominate its use {inst!r}")
