"""Instruction set of the IR.

The opcode vocabulary mirrors LLVM's scalar subset: integer and float
arithmetic, comparisons, memory (alloca/load/store/gep), control flow
(br/condbr/ret/unreachable), phi, select, call, and casts.  Vector forms are
handled late in the backend (see DESIGN.md) so the IR stays scalar.
"""

from repro.ir.types import I1, PointerType, VOID
from repro.ir.values import Value

# Integer binary opcodes.
INT_BINOPS = (
    "add", "sub", "mul", "sdiv", "srem",
    "and", "or", "xor", "shl", "ashr", "lshr",
)
# Float binary opcodes.
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
BINOPS = INT_BINOPS + FLOAT_BINOPS

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

# Predicate negation / swap tables used by instcombine and friends.
ICMP_NEGATE = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
               "sgt": "sle", "sle": "sgt"}
ICMP_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sgt": "slt",
             "sle": "sge", "sge": "sle"}
FCMP_NEGATE = {"oeq": "one", "one": "oeq", "olt": "oge", "oge": "olt",
               "ogt": "ole", "ole": "ogt"}

CAST_OPS = ("sext", "zext", "trunc", "sitofp", "fptosi")

# Math intrinsics understood by the interpreter and both backends.
INTRINSICS = frozenset({
    "sqrt", "exp", "log", "sin", "cos", "pow", "fabs",
    "imin", "imax", "iabs",
    "print_int", "print_float",
    "memset", "memcpy",
})


class Instruction(Value):
    """An SSA instruction.  Operands are tracked with def-use bookkeeping."""

    opcode = "<abstract>"
    #: Class-level terminator flag (set by the four terminator classes);
    #: ``is_terminator`` is on several hot paths where an isinstance
    #: chain is measurable.
    _terminator = False

    def __init__(self, type_, operands, name=""):
        super().__init__(type_, name)
        self.parent = None  # BasicBlock
        self._operands = []
        for op in operands:
            self._append_operand(op)

    # -- operand plumbing -------------------------------------------------
    def _append_operand(self, value):
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    @property
    def operands(self):
        return tuple(self._operands)

    def set_operand(self, index, new_value):
        old = self._operands[index]
        if old is new_value:
            return
        old.remove_use(self, index)
        self._operands[index] = new_value
        new_value.add_use(self, index)

    def drop_all_references(self):
        """Detach from operands (used when erasing the instruction)."""
        for index, op in enumerate(self._operands):
            op.remove_use(self, index)
        self._operands = []

    def erase_from_parent(self):
        """Remove this instruction from its block and drop its operands."""
        self.drop_all_references()
        if self.parent is not None:
            self.parent.remove_instruction(self)

    # -- classification ----------------------------------------------------
    def is_terminator(self):
        return self._terminator

    def has_side_effects(self):
        """True if this instruction cannot be deleted even when unused."""
        if isinstance(self, (StoreInst, RetInst, BranchInst, CondBranchInst,
                             UnreachableInst)):
            return True
        if isinstance(self, CallInst):
            return not self.is_pure_call()
        # Division traps on divide-by-zero; treat as side-effecting unless
        # the divisor is a non-zero constant.
        if isinstance(self, BinaryInst) and self.opcode in ("sdiv", "srem"):
            divisor = self.operands[1]
            from repro.ir.values import ConstantInt
            return not (isinstance(divisor, ConstantInt) and divisor.value != 0)
        return False

    def reads_memory(self):
        if isinstance(self, LoadInst):
            return True
        if isinstance(self, CallInst):
            return self.callee_may_access_memory()
        return False

    def writes_memory(self):
        if isinstance(self, StoreInst):
            return True
        if isinstance(self, CallInst):
            return self.callee_may_access_memory()
        return False

    def function(self):
        return None if self.parent is None else self.parent.parent

    def __repr__(self):
        from repro.ir.printer import instruction_to_text
        try:
            return instruction_to_text(self)
        except Exception:  # printing must never mask a structural bug
            return f"<{self.opcode}>"


class BinaryInst(Instruction):
    def __init__(self, opcode, lhs, rhs, name=""):
        if opcode not in BINOPS:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"binary operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]

    def is_commutative(self):
        return self.opcode in COMMUTATIVE_OPS


class ICmpInst(Instruction):
    opcode = "icmp"

    def __init__(self, predicate, lhs, rhs, name=""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError("icmp operand type mismatch")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate


class FCmpInst(Instruction):
    opcode = "fcmp"

    def __init__(self, predicate, lhs, rhs, name=""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate


class AllocaInst(Instruction):
    opcode = "alloca"

    def __init__(self, allocated_type, name=""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class LoadInst(Instruction):
    opcode = "load"

    def __init__(self, pointer, name=""):
        if not pointer.type.is_pointer():
            raise TypeError("load requires a pointer operand")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self):
        return self.operands[0]


class StoreInst(Instruction):
    opcode = "store"

    def __init__(self, value, pointer):
        if not pointer.type.is_pointer():
            raise TypeError("store requires a pointer operand")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self):
        return self.operands[0]

    @property
    def pointer(self):
        return self.operands[1]


class GEPInst(Instruction):
    """Pointer arithmetic: ``&base[index]``.

    ``base`` is a pointer to an array or to a scalar element type; the
    result points at the indexed element.  Only the single-index form is
    supported — the frontend flattens multi-dimensional accesses.
    """

    opcode = "gep"

    def __init__(self, base, index, name=""):
        if not base.type.is_pointer():
            raise TypeError("gep requires a pointer base")
        pointee = base.type.pointee
        element = pointee.element if pointee.is_array() else pointee
        super().__init__(PointerType(element), [base, index], name)

    @property
    def base(self):
        return self.operands[0]

    @property
    def index(self):
        return self.operands[1]


class PhiInst(Instruction):
    """SSA phi node.  Incoming blocks are parallel to the operand list."""

    opcode = "phi"

    def __init__(self, type_, name=""):
        super().__init__(type_, [], name)
        self.incoming_blocks = []

    def add_incoming(self, value, block):
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self):
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_value_for(self, block):
        for value, blk in self.incoming():
            if blk is block:
                return value
        raise KeyError(f"no incoming value for block {block.name}")

    def remove_incoming(self, block):
        """Drop every incoming entry for ``block``."""
        while block in self.incoming_blocks:
            index = self.incoming_blocks.index(block)
            # Rebuild operand list without this entry.
            values = [v for i, v in enumerate(self._operands) if i != index]
            blocks = [b for i, b in enumerate(self.incoming_blocks)
                      if i != index]
            self.drop_all_references()
            self.incoming_blocks = []
            for value, blk in zip(values, blocks):
                self.add_incoming(value, blk)

    def replace_incoming_block(self, old, new):
        self.incoming_blocks = [new if b is old else b
                                for b in self.incoming_blocks]


def _retarget(inst, old, new):
    """Swap one terminator successor slot, maintaining the targets'
    predecessor links when the terminator sits in a block."""
    block = inst.parent
    if block is not None and old is not new:
        old._remove_pred(block)
        new._add_pred(block)


class BranchInst(Instruction):
    _terminator = True
    opcode = "br"

    def __init__(self, target):
        super().__init__(VOID, [])
        self._target = target

    @property
    def target(self):
        return self._target

    @target.setter
    def target(self, new):
        _retarget(self, self._target, new)
        self._target = new

    def successors(self):
        return [self._target]

    def replace_successor(self, old, new):
        if self._target is old:
            self.target = new


class CondBranchInst(Instruction):
    _terminator = True
    opcode = "condbr"

    def __init__(self, condition, true_target, false_target):
        if condition.type != I1:
            raise TypeError("condbr condition must be i1")
        super().__init__(VOID, [condition])
        self._true_target = true_target
        self._false_target = false_target

    @property
    def condition(self):
        return self.operands[0]

    @property
    def true_target(self):
        return self._true_target

    @true_target.setter
    def true_target(self, new):
        _retarget(self, self._true_target, new)
        self._true_target = new

    @property
    def false_target(self):
        return self._false_target

    @false_target.setter
    def false_target(self, new):
        _retarget(self, self._false_target, new)
        self._false_target = new

    def successors(self):
        return [self._true_target, self._false_target]

    def replace_successor(self, old, new):
        if self._true_target is old:
            self.true_target = new
        if self._false_target is old:
            self.false_target = new


class RetInst(Instruction):
    _terminator = True
    opcode = "ret"

    def __init__(self, value=None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self):
        return self.operands[0] if self.operands else None

    def successors(self):
        return []


class UnreachableInst(Instruction):
    _terminator = True
    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, [])

    def successors(self):
        return []


class CallInst(Instruction):
    """A direct call to a function or to a named intrinsic."""

    opcode = "call"

    def __init__(self, callee, args, name=""):
        # ``callee`` is a Function or an intrinsic name string.
        if isinstance(callee, str):
            if callee not in INTRINSICS:
                raise ValueError(f"unknown intrinsic {callee!r}")
            from repro.ir.intrinsics import intrinsic_return_type
            ret = intrinsic_return_type(callee, args)
        else:
            ret = callee.ftype.ret
        super().__init__(ret, list(args), name)
        self.callee = callee

    @property
    def args(self):
        return self.operands

    def is_intrinsic(self):
        return isinstance(self.callee, str)

    def callee_name(self):
        return self.callee if self.is_intrinsic() else self.callee.name

    def is_pure_call(self):
        """True when the call may be removed if its result is unused."""
        if self.is_intrinsic():
            return self.callee not in ("print_int", "print_float",
                                       "memset", "memcpy")
        return getattr(self.callee, "is_pure", False)

    def callee_may_access_memory(self):
        if self.is_intrinsic():
            return self.callee in ("memset", "memcpy")
        return getattr(self.callee, "accesses_memory", True)


class SelectInst(Instruction):
    opcode = "select"

    def __init__(self, condition, true_value, false_value, name=""):
        if condition.type != I1:
            raise TypeError("select condition must be i1")
        if true_value.type != false_value.type:
            raise TypeError("select arm type mismatch")
        super().__init__(true_value.type, [condition, true_value,
                                           false_value], name)

    @property
    def condition(self):
        return self.operands[0]

    @property
    def true_value(self):
        return self.operands[1]

    @property
    def false_value(self):
        return self.operands[2]


class CastInst(Instruction):
    def __init__(self, opcode, value, target_type, name=""):
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(target_type, [value], name)
        self.opcode = opcode

    @property
    def value(self):
        return self.operands[0]
