"""Core value hierarchy of the IR.

Every SSA value derives from :class:`Value`.  Def-use chains are maintained
eagerly: instructions register themselves as users of their operands, which
makes ``replace_all_uses_with`` and dead-code queries cheap — the facility
almost every optimization pass in :mod:`repro.passes` is built on.
"""

from repro.ir.types import FloatType, IntType, PointerType


class Value:
    """Base class for everything that can be an operand."""

    def __init__(self, type_, name=""):
        self.type = type_
        self.name = name
        # List of (user_instruction, operand_index) pairs.  A user may
        # appear several times if it references this value more than once.
        self.uses = []

    # -- use management -------------------------------------------------
    def add_use(self, user, index):
        self.uses.append((user, index))

    def remove_use(self, user, index):
        self.uses.remove((user, index))

    @property
    def users(self):
        """Distinct instructions using this value."""
        seen = []
        for user, _ in self.uses:
            if user not in seen:
                seen.append(user)
        return seen

    def is_used(self):
        return bool(self.uses)

    def replace_all_uses_with(self, new_value):
        """Rewrite every use of ``self`` to use ``new_value`` instead."""
        if new_value is self:
            return
        for user, index in list(self.uses):
            user.set_operand(index, new_value)

    # -- convenience predicates ------------------------------------------
    def is_constant(self):
        return isinstance(self, Constant)

    def short_name(self):
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self):
        return f"<{type(self).__name__} {self.short_name()}: {self.type}>"


class Constant(Value):
    """Base class of constants.  Constants have no defining instruction."""


class ConstantInt(Constant):
    def __init__(self, type_, value):
        if not isinstance(type_, IntType):
            raise TypeError("ConstantInt requires an integer type")
        super().__init__(type_)
        self.value = type_.wrap(int(value))

    def short_name(self):
        return str(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    def __init__(self, type_, value):
        if not isinstance(type_, FloatType):
            raise TypeError("ConstantFloat requires a float type")
        super().__init__(type_)
        self.value = float(value)

    def short_name(self):
        return repr(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("cfloat", self.value))


class UndefValue(Constant):
    """The undefined value of a given type (result of uninitialized reads)."""

    def short_name(self):
        return "undef"

    def __eq__(self, other):
        return isinstance(other, UndefValue) and other.type == self.type

    def __hash__(self):
        return hash(("undef", self.type))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_, name, function=None, index=0):
        super().__init__(type_, name)
        self.function = function
        self.index = index


class GlobalVariable(Value):
    """A module-level variable.

    ``initializer`` is a Python scalar for scalar globals or a list of
    scalars for array globals.  The value itself has pointer type, as in
    LLVM: loads/stores go through it.
    """

    def __init__(self, name, value_type, initializer=None, constant=False):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant_global = constant
        self.module = None

    def short_name(self):
        return f"@{self.name}"
