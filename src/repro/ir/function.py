"""Functions and modules."""

from repro.ir.basicblock import BasicBlock
from repro.ir.values import Argument, Value


class Function(Value):
    def __init__(self, name, ftype, module=None):
        super().__init__(ftype, name)
        self.ftype = ftype
        self.module = module
        self.blocks = []
        self.args = []
        for i, ptype in enumerate(ftype.params):
            self.args.append(Argument(ptype, f"arg{i}", self, i))
        self._name_counter = 0
        # Lazily rebuilt {id(block): index} for the current block
        # order; every structural mutation below invalidates it.
        self._positions = None
        # Attributes discovered by analyses/passes.
        self.is_pure = False          # no memory access, no IO
        self.accesses_memory = True   # may read or write memory
        self.attributes = set()

    # -- structure ---------------------------------------------------------
    @property
    def entry(self):
        return self.blocks[0] if self.blocks else None

    def is_declaration(self):
        return not self.blocks

    def append_block(self, name=""):
        block = BasicBlock(name or self.next_name("bb"), self)
        self.blocks.append(block)
        if self._positions is not None:
            self._positions[id(block)] = len(self.blocks) - 1
        return block

    def block_positions(self):
        """{id(block): index} for the current block order.

        Rebuilt lazily (O(V)) after a structural mutation and shared by
        every positional query until the next one, so query-heavy
        phases (``Loop.ordered_blocks``, ``Block.predecessors``) pay
        O(queried blocks) instead of O(V) per query."""
        positions = self._positions
        if positions is None or len(positions) != len(self.blocks):
            positions = {id(b): i for i, b in enumerate(self.blocks)}
            self._positions = positions
        return positions

    def _invalidate_positions(self):
        self._positions = None

    def remove_block(self, block):
        """Detach ``block`` from the function.

        The single exit point for block removal: drops the block's
        instruction operand references, disconnects its outgoing
        maintained CFG edges, scrubs its entries from former
        successors' phi incoming lists, and unregisters it from the
        block-position index — so reverse edges and phi incoming lists
        can never diverge."""
        if block.parent is not self:
            raise ValueError(f"{block!r} is not attached to @{self.name}")
        term = block.terminator()
        successors = []
        if term is not None:
            for succ in term.successors():
                if succ not in successors:
                    successors.append(succ)
        block.clear_instructions()
        for succ in successors:
            for phi in succ.phis():
                phi.remove_incoming(block)
        self.blocks.remove(block)
        block.parent = None
        self._invalidate_positions()

    def set_blocks(self, new_blocks):
        """Replace the whole body (transform-cache materialization):
        every old block is detached with its operand references and
        maintained edges dropped, then ``new_blocks`` is installed."""
        for block in self.blocks:
            block.clear_instructions()
            block.parent = None
        self.blocks = list(new_blocks)
        for block in self.blocks:
            block.parent = self
        self._invalidate_positions()

    def clear_body(self):
        """Drop every block (function deletion / globaldce)."""
        self.set_blocks([])

    def next_name(self, prefix="v"):
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self):
        return sum(len(b.instructions) for b in self.blocks)

    def rename_locals(self):
        """Give every block and instruction a fresh sequential name."""
        self._name_counter = 0
        for i, block in enumerate(self.blocks):
            block.name = "entry" if i == 0 else f"bb{i}"
        counter = 0
        for inst in self.instructions():
            if not inst.type.is_void():
                inst.name = f"t{counter}"
                counter += 1

    def __repr__(self):
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"


class Module:
    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.globals = {}

    def add_function(self, function):
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        function.module = self
        self.functions[function.name] = function
        return function

    def add_global(self, global_var):
        if global_var.name in self.globals:
            raise ValueError(f"duplicate global {global_var.name!r}")
        global_var.module = self
        self.globals[global_var.name] = global_var
        return global_var

    def remove_function(self, name):
        fn = self.functions.pop(name)
        fn.module = None
        return fn

    def remove_global(self, name):
        gv = self.globals.pop(name)
        gv.module = None
        return gv

    def get_function(self, name):
        return self.functions[name]

    def defined_functions(self):
        return [f for f in self.functions.values() if not f.is_declaration()]

    def instruction_count(self):
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self):
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
