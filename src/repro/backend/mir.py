"""Machine IR: the target-level program representation.

Instruction selection lowers IR functions into ``MachineFunction``s of
``MachineInstr``s over virtual registers; register allocation rewrites them
to physical registers and stack slots; the ISA encoders assign byte sizes;
the simulator executes them directly.
"""


class VirtReg:
    """A virtual register (int or float class)."""

    __slots__ = ("vid", "cls")

    def __init__(self, vid, cls):
        self.vid = vid
        self.cls = cls  # 'int' | 'float'

    def __repr__(self):
        prefix = "v" if self.cls == "int" else "w"
        return f"%{prefix}{self.vid}"


class PhysReg:
    __slots__ = ("name", "cls", "index")

    def __init__(self, name, cls, index):
        self.name = name
        self.cls = cls
        self.index = index

    def __repr__(self):
        return self.name


class Imm:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = int(value)

    def __repr__(self):
        return f"#{self.value}"


class FImm:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = float(value)

    def __repr__(self):
        return f"#{self.value!r}"


class StackSlot:
    """A spill / local slot, indexed from the frame base (in cells)."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    def __repr__(self):
        return f"[sp+{self.index}]"


class GlobalRef:
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"@{self.name}"


class Label:
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f".{self.name}"


# Opcode vocabulary.  Operand shapes are documented per opcode:
#   li    dst, Imm            load integer immediate
#   lfi   dst, FImm           load float immediate
#   mv    dst, src            register copy (int or float)
#   lea   dst, base, index, scale      address arithmetic (1 instr on x86)
#   <bin> dst, a, b           add sub mul div rem and or xor shl sar shr
#   <fbin> dst, a, b          fadd fsub fmul fdiv
#   fun   dst, a              fsqrt fexp flog fsin fcos fabs cvtsi2sd
#                             cvtsd2si fneg
#   fpow  dst, a, b
#   setcc pred, dst, a, b     dst = (a pred b) as 0/1
#   fsetcc pred, dst, a, b
#   bcc   pred, a, b, Label   conditional branch
#   fbcc  pred, a, b, Label
#   cmov  dst, cond, a, b     dst = cond ? a : b
#   ld    dst, base, off      load cell at base+off (off Imm or reg)
#   st    val, base, off      store
#   jmp   Label
#   call  function_name       (args pre-placed in ABI registers)
#   ret
#   print kind, src           kind in {'i','f'}
#   memset dst, val, n        block fill (n cells)
#   memcpy dst, src, n        block copy
#   vop   sub_opcode, [(dst,a,b), ...]   SLP-fused float lanes (x86)
#   frame_alloc dst, size     dst = address of a fresh stack area (alloca)

TERMINATORS = frozenset({"jmp", "bcc", "fbcc", "ret"})


class MachineInstr:
    __slots__ = ("opcode", "operands", "pred", "lanes", "address", "size")

    def __init__(self, opcode, operands=(), pred=None, lanes=None):
        self.opcode = opcode
        self.operands = list(operands)
        self.pred = pred        # predicate for setcc/bcc families
        self.lanes = lanes      # for vop
        self.address = 0        # byte address after layout
        self.size = 0           # encoded size in bytes

    def is_terminator(self):
        return self.opcode in TERMINATORS

    def __repr__(self):
        pred = f".{self.pred}" if self.pred else ""
        ops = ", ".join(repr(o) for o in self.operands)
        if self.lanes is not None:
            ops = f"{self.operands[0]} x{len(self.lanes)}"
        return f"{self.opcode}{pred} {ops}".strip()


class MachineBlock:
    def __init__(self, label):
        self.label = label
        self.instructions = []

    def append(self, instr):
        self.instructions.append(instr)
        return instr

    def __repr__(self):
        return f"<MachineBlock {self.label} ({len(self.instructions)})>"


class MachineFunction:
    def __init__(self, name):
        self.name = name
        self.blocks = []
        self.frame_slots = 0      # locals + spills, in cells
        self._next_vreg = 0
        self.slp_enabled = False

    def new_block(self, label):
        block = MachineBlock(label)
        self.blocks.append(block)
        return block

    def new_vreg(self, cls):
        self._next_vreg += 1
        return VirtReg(self._next_vreg, cls)

    def new_slot(self):
        slot = StackSlot(self.frame_slots)
        self.frame_slots += 1
        return slot

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self):
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self):
        return f"<MachineFunction @{self.name} ({len(self.blocks)} blocks)>"


class MachineProgram:
    """A fully lowered module: functions plus global data layout."""

    def __init__(self, name, target_name):
        self.name = name
        self.target_name = target_name
        self.functions = {}
        self.global_layout = {}   # name -> (address, cells)
        self.global_init = {}     # address -> initial value
        self.data_cells = 0
        self.code_size = 0        # bytes, set by the encoder

    def add_function(self, mfunc):
        self.functions[mfunc.name] = mfunc

    def instruction_histogram(self):
        """Static opcode counts (the paper's platform-specific features)."""
        histogram = {}
        for mfunc in self.functions.values():
            for instr in mfunc.instructions():
                histogram[instr.opcode] = histogram.get(instr.opcode, 0) + 1
        return histogram

    def __repr__(self):
        return (f"<MachineProgram {self.name} [{self.target_name}] "
                f"{len(self.functions)} funcs, {self.code_size}B>")
