"""Code generation driver: IR module → MachineProgram.

Steps: instruction selection per function, register allocation, post-RA
SLP fusion (x86 with the ``slp-enabled`` attribute), global data layout,
and code layout/encoding (assigning every instruction an address and a
byte size — the paper's "code size" metric).
"""

from repro.backend.isa import get_isa
from repro.backend.isel import select_function
from repro.backend.mir import MachineInstr, MachineProgram, PhysReg
from repro.backend.regalloc import allocate_registers

_GLOBAL_BASE = 0x1000
_SLP_OPCODES = ("fadd", "fsub", "fmul")


def compile_module(module, target):
    """Lower an IR module for ``target`` ('x86' or 'riscv')."""
    isa = get_isa(target) if isinstance(target, str) else target
    program = MachineProgram(module.name, isa.name)
    _layout_globals(module, program)
    for function in module.defined_functions():
        mfunc = select_function(function, isa, program)
        allocate_registers(mfunc, isa)
        if isa.has_vector and mfunc.slp_enabled:
            _slp_fuse(mfunc, isa)
        program.add_function(mfunc)
    _layout_code(program, isa)
    return program


def _layout_globals(module, program):
    address = _GLOBAL_BASE
    for gv in module.globals.values():
        cells = gv.value_type.size_cells()
        program.global_layout[gv.name] = (address, cells)
        init = gv.initializer
        if init is None:
            values = [0] * cells
        elif isinstance(init, (list, tuple)):
            values = list(init) + [0] * (cells - len(init))
        else:
            values = [init]
        for offset, value in enumerate(values):
            program.global_init[address + offset] = value
        address += cells
    program.data_cells = address - _GLOBAL_BASE


def _slp_fuse(mfunc, isa):
    """Pack runs of ``vector_lanes`` consecutive, independent, same-opcode
    float ops into one ``vop`` (post-RA superword-level parallelism)."""
    lanes = isa.vector_lanes
    for block in mfunc.blocks:
        instructions = block.instructions
        result = []
        index = 0
        while index < len(instructions):
            group = instructions[index:index + lanes]
            if len(group) == lanes and _fusable_group(group):
                vop = MachineInstr("vop", [group[0].opcode])
                vop.lanes = [tuple(i.operands[:3]) for i in group]
                result.append(vop)
                index += lanes
            else:
                result.append(instructions[index])
                index += 1
        # MIR blocks carry no maintained CFG; wholesale replacement is
        # the supported idiom here.
        block.instructions = result  # replint: disable=R001


def _fusable_group(group):
    opcode = group[0].opcode
    if opcode not in _SLP_OPCODES:
        return False
    if any(i.opcode != opcode for i in group):
        return False
    written = set()
    for instr in group:
        dst, a, b = instr.operands[:3]
        if not all(isinstance(r, PhysReg) for r in (dst, a, b)):
            return False
        # Lanes must be independent: no lane reads a prior lane's result.
        if a.name in written or b.name in written:
            return False
        written.add(dst.name)
    return True


def _layout_code(program, isa):
    address = 0
    for mfunc in program.functions.values():
        for block in mfunc.blocks:
            for instr in block.instructions:
                instr.address = address
                instr.size = isa.encode_size(instr)
                address += instr.size
    program.code_size = address


def code_size(module, target):
    """Convenience: compile and return the encoded code size in bytes."""
    return compile_module(module, target).code_size
