"""Linear-scan register allocation over MachineFunctions.

Pipeline per function:

1. linearize instructions and compute per-block liveness (backward
   dataflow over virtual registers);
2. build conservative live intervals [start, end];
3. intervals that are live across a ``call`` are assigned stack slots
   up front (the ABI is all-caller-saved);
4. classic linear scan assigns the rest to physical registers, spilling
   the interval with the furthest end on pressure;
5. rewrite: spilled operands are loaded into reserved scratch registers
   before each use and stored after each def.
"""

from repro.backend.mir import (
    Imm,
    MachineInstr,
    StackSlot,
    VirtReg,
)

_SCRATCH_PER_CLASS = 3


def _instr_vregs(instr):
    """(defs, uses) virtual registers of an instruction."""
    defs, uses = [], []
    opcode = instr.opcode
    ops = instr.operands
    if opcode in ("li", "lfi", "frame_alloc"):
        defs.append(ops[0])
    elif opcode in ("mv", "fneg", "cvtsi2sd", "cvtsd2si",
                    "fsqrt", "fexp", "flog", "fsin", "fcos", "fabs"):
        defs.append(ops[0])
        uses.append(ops[1])
    elif opcode in ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
                    "shl", "sar", "shr", "fadd", "fsub", "fmul", "fdiv",
                    "fpow"):
        defs.append(ops[0])
        uses.extend(ops[1:3])
    elif opcode == "lea":
        defs.append(ops[0])
        uses.extend(ops[1:3])
    elif opcode in ("setcc", "fsetcc"):
        defs.append(ops[0])
        uses.extend(ops[1:3])
    elif opcode in ("bcc", "fbcc"):
        uses.extend(ops[0:2])
    elif opcode == "cmov":
        defs.append(ops[0])
        uses.extend(ops[1:4])
    elif opcode == "ld":
        defs.append(ops[0])
        uses.append(ops[1])
    elif opcode == "st":
        uses.extend(ops[0:2])
    elif opcode == "print":
        uses.append(ops[1])
    elif opcode in ("memset", "memcpy"):
        uses.extend(ops[0:3])
    elif opcode in ("jmp", "call", "ret"):
        pass
    else:
        raise TypeError(f"regalloc: unknown opcode {opcode!r}")
    defs = [d for d in defs if isinstance(d, VirtReg)]
    uses = [u for u in uses if isinstance(u, VirtReg)]
    return defs, uses


class Allocator:
    def __init__(self, mfunc, isa):
        self.mfunc = mfunc
        self.isa = isa
        # Reserve scratch registers per class from the allocatable pools.
        self.scratch = {
            "int": isa.alloc_int[-_SCRATCH_PER_CLASS:],
            "float": isa.alloc_float[-_SCRATCH_PER_CLASS:],
        }
        self.pools = {
            "int": isa.alloc_int[:-_SCRATCH_PER_CLASS],
            "float": isa.alloc_float[:-_SCRATCH_PER_CLASS],
        }

    def run(self):
        order, positions, block_ranges = self._linearize()
        live_in, live_out = self._liveness()
        intervals = self._intervals(order, block_ranges, live_in, live_out)
        call_positions = [i for i, instr in enumerate(order)
                          if instr.opcode == "call"]
        assignment, spills = self._allocate(intervals, call_positions)
        self._rewrite(assignment, spills)
        return assignment, spills

    # -- step 1/2: order + liveness ---------------------------------------
    def _linearize(self):
        order = []
        block_ranges = {}
        for block in self.mfunc.blocks:
            start = len(order)
            order.extend(block.instructions)
            block_ranges[id(block)] = (start, len(order) - 1)
        positions = {id(instr): i for i, instr in enumerate(order)}
        return order, positions, block_ranges

    def _block_successors(self, block):
        result = []
        labels = {b.label: b for b in self.mfunc.blocks}
        for instr in block.instructions:
            if instr.opcode in ("jmp", "bcc", "fbcc"):
                label = instr.operands[-1]
                result.append(labels[label.name])
        return result

    def _liveness(self):
        gen = {}
        kill = {}
        for block in self.mfunc.blocks:
            g, k = set(), set()
            for instr in block.instructions:
                defs, uses = _instr_vregs(instr)
                for use in uses:
                    if use.vid not in k:
                        g.add(use.vid)
                for define in defs:
                    k.add(define.vid)
            gen[id(block)] = g
            kill[id(block)] = k
        live_in = {id(b): set() for b in self.mfunc.blocks}
        live_out = {id(b): set() for b in self.mfunc.blocks}
        changed = True
        succs = {id(b): self._block_successors(b)
                 for b in self.mfunc.blocks}
        while changed:
            changed = False
            for block in reversed(self.mfunc.blocks):
                bid = id(block)
                out = set()
                for succ in succs[bid]:
                    out |= live_in[id(succ)]
                new_in = gen[bid] | (out - kill[bid])
                if out != live_out[bid] or new_in != live_in[bid]:
                    live_out[bid] = out
                    live_in[bid] = new_in
                    changed = True
        return live_in, live_out

    # -- step 3: intervals ---------------------------------------------------
    def _intervals(self, order, block_ranges, live_in, live_out):
        intervals = {}  # vid -> [start, end, cls]

        def extend(vreg, pos):
            entry = intervals.get(vreg.vid)
            if entry is None:
                intervals[vreg.vid] = [pos, pos, vreg.cls]
            else:
                entry[0] = min(entry[0], pos)
                entry[1] = max(entry[1], pos)

        for pos, instr in enumerate(order):
            defs, uses = _instr_vregs(instr)
            for vreg in defs + uses:
                extend(vreg, pos)
        vreg_by_id = {}
        for instr in order:
            defs, uses = _instr_vregs(instr)
            for vreg in defs + uses:
                vreg_by_id[vreg.vid] = vreg
        for block in self.mfunc.blocks:
            start, end = block_ranges[id(block)]
            for vid in live_in[id(block)]:
                extend(vreg_by_id[vid], start)
            for vid in live_out[id(block)]:
                extend(vreg_by_id[vid], end)
        return intervals

    # -- step 4: linear scan ------------------------------------------------
    def _allocate(self, intervals, call_positions):
        assignment = {}
        spills = {}
        items = sorted(intervals.items(), key=lambda kv: kv[1][0])

        def crosses_call(start, end):
            return any(start <= c < end for c in call_positions)

        active = {"int": [], "float": []}
        free = {cls: list(self.pools[cls]) for cls in ("int", "float")}

        for vid, (start, end, cls) in items:
            if crosses_call(start, end):
                spills[vid] = self.mfunc.new_slot()
                continue
            # Expire old intervals.
            still_active = []
            for other_end, other_vid, reg in active[cls]:
                if other_end < start:
                    free[cls].append(reg)
                else:
                    still_active.append((other_end, other_vid, reg))
            active[cls] = still_active
            if free[cls]:
                reg = free[cls].pop()
                assignment[vid] = reg
                active[cls].append((end, vid, reg))
            else:
                # Spill the active interval with the furthest end if it
                # ends after this one; otherwise spill this interval.
                active[cls].sort()
                furthest = active[cls][-1]
                if furthest[0] > end:
                    spills[furthest[1]] = self.mfunc.new_slot()
                    reg = furthest[2]
                    del assignment[furthest[1]]
                    active[cls] = active[cls][:-1]
                    assignment[vid] = reg
                    active[cls].append((end, vid, reg))
                else:
                    spills[vid] = self.mfunc.new_slot()
        return assignment, spills

    # -- step 5: rewrite ----------------------------------------------------
    def _rewrite(self, assignment, spills):
        frame = self.mfunc
        for block in frame.blocks:
            rewritten = []
            for instr in block.instructions:
                defs, uses = _instr_vregs(instr)
                scratch_index = {"int": 0, "float": 0}
                mapping = {}
                loads = []
                stores = []
                for use in uses:
                    if use.vid in mapping:
                        continue
                    if use.vid in spills:
                        scratch = self._take_scratch(use.cls, scratch_index)
                        mapping[use.vid] = scratch
                        loads.append(MachineInstr(
                            "ld", [scratch, StackSlot(
                                spills[use.vid].index), Imm(0)]))
                    else:
                        mapping[use.vid] = assignment[use.vid]
                for define in defs:
                    if define.vid in spills:
                        if define.vid in mapping:
                            scratch = mapping[define.vid]
                        elif scratch_index[define.cls] >= \
                                len(self.scratch[define.cls]):
                            # All scratch registers feed uses; the def may
                            # alias the last one — operands are read before
                            # the destination is written.
                            scratch = self.scratch[define.cls][-1]
                            mapping[define.vid] = scratch
                        else:
                            scratch = self._take_scratch(define.cls,
                                                         scratch_index)
                            mapping[define.vid] = scratch
                        stores.append(MachineInstr(
                            "st", [scratch, StackSlot(
                                spills[define.vid].index), Imm(0)]))
                    elif define.vid not in mapping:
                        mapping[define.vid] = assignment[define.vid]
                instr.operands = [
                    mapping[op.vid] if isinstance(op, VirtReg) else op
                    for op in instr.operands
                ]
                rewritten.extend(loads)
                rewritten.append(instr)
                rewritten.extend(stores)
            # MIR blocks carry no maintained CFG; wholesale replacement
            # is the supported idiom here.
            block.instructions = rewritten  # replint: disable=R001

    def _take_scratch(self, cls, scratch_index):
        index = scratch_index[cls]
        if index >= len(self.scratch[cls]):
            raise RuntimeError("out of scratch registers")
        scratch_index[cls] += 1
        return self.scratch[cls][index]


def allocate_registers(mfunc, isa):
    """Run register allocation in place; returns (assignment, spills)."""
    return Allocator(mfunc, isa).run()
