"""Instruction selection: IR functions → MachineFunctions (virtual regs).

Selection is a straightforward tree-less lowering with a few target hooks:
``lea`` address folding and ``cmov`` on targets that have them, fused
compare-and-branch when an icmp's only user is the branch, and ABI
argument/return register copies around calls.  Phi nodes are resolved with
parallel copies on (split) edges.
"""

from repro.ir import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    ConstantFloat,
    ConstantInt,
    FCmpInst,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UndefValue,
    UnreachableInst,
)
from repro.backend.mir import (
    FImm,
    GlobalRef,
    Imm,
    Label,
    MachineFunction,
    MachineInstr,
)

_BINOP_MAP = {
    "add": "add", "sub": "sub", "mul": "mul", "sdiv": "div", "srem": "rem",
    "and": "and", "or": "or", "xor": "xor",
    "shl": "shl", "ashr": "sar", "lshr": "shr",
    "fadd": "fadd", "fsub": "fsub", "fmul": "fmul", "fdiv": "fdiv",
}

_FLOAT_UNARY = {"sqrt": "fsqrt", "exp": "fexp", "log": "flog",
                "sin": "fsin", "cos": "fcos", "fabs": "fabs"}


class FunctionSelector:
    def __init__(self, function, isa, program):
        self.function = function
        self.isa = isa
        self.program = program
        self.mfunc = MachineFunction(function.name)
        self.mfunc.slp_enabled = "slp-enabled" in function.attributes
        self.value_map = {}
        self.block_map = {}
        self.current = None
        self._label_counter = 0

    # -- helpers --------------------------------------------------------------
    def emit(self, opcode, operands=(), pred=None):
        return self.current.append(MachineInstr(opcode, operands, pred))

    def _cls(self, value):
        return "float" if value.type.is_float() else "int"

    def vreg_for(self, value):
        """Operand for an IR value, materializing constants."""
        if isinstance(value, ConstantInt):
            dst = self.mfunc.new_vreg("int")
            self.emit("li", [dst, Imm(value.value)])
            return dst
        if isinstance(value, ConstantFloat):
            dst = self.mfunc.new_vreg("float")
            self.emit("lfi", [dst, FImm(value.value)])
            return dst
        if isinstance(value, UndefValue):
            dst = self.mfunc.new_vreg(self._cls(value))
            if value.type.is_float():
                self.emit("lfi", [dst, FImm(0.0)])
            else:
                self.emit("li", [dst, Imm(0)])
            return dst
        if isinstance(value, GlobalVariable):
            dst = self.mfunc.new_vreg("int")
            self.emit("li", [dst, GlobalRef(value.name)])
            return dst
        return self.value_map[id(value)]

    def label_of(self, ir_block):
        return Label(self.block_map[id(ir_block)].label)

    # -- driver -----------------------------------------------------------------
    def run(self):
        function = self.function
        for index, block in enumerate(function.blocks):
            label = f"{function.name}__{index}_{block.name}"
            self.block_map[id(block)] = self.mfunc.new_block(label)
        # Pre-create vregs for phis and for every instruction result used
        # across blocks (so forward references resolve).
        for block in function.blocks:
            for inst in block.instructions:
                if not inst.type.is_void():
                    self.value_map[id(inst)] = \
                        self.mfunc.new_vreg(self._cls(inst))
        # Entry: copy ABI argument registers into parameter vregs.
        self.current = self.block_map[id(function.entry)]
        int_args = iter(self.isa.arg_int)
        float_args = iter(self.isa.arg_float)
        for arg in function.args:
            vreg = self.mfunc.new_vreg(self._cls(arg))
            self.value_map[id(arg)] = vreg
            source = next(float_args if arg.type.is_float() else int_args)
            self.emit("mv", [vreg, source])
        # Select instructions block by block.
        for block in function.blocks:
            self.current = self.block_map[id(block)]
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    continue  # resolved on edges below
                if inst.is_terminator():
                    self._emit_phi_copies(block)
                    self._select_terminator(block, inst)
                else:
                    self._select(inst)
        return self.mfunc

    # -- phi resolution ------------------------------------------------------------
    def _emit_phi_copies(self, pred_block):
        """Emit parallel copies for phis in every successor, splitting
        critical edges with fresh MIR blocks."""
        term = pred_block.terminator()
        successors = term.successors()
        multiple_succs = isinstance(term, CondBranchInst)
        # dict.fromkeys: dedupe while keeping successor order (a raw
        # set iterates in id-hash order, which made edge-block layout —
        # and therefore icache timing — vary run to run).
        for succ in dict.fromkeys(successors):
            phis = succ.phis()
            if not phis:
                continue
            copies = []
            for phi in phis:
                incoming = phi.incoming_value_for(pred_block)
                copies.append((self.value_map[id(phi)], incoming))
            if multiple_succs:
                # Copies on a conditional edge must not execute on the
                # other path (they would clobber phi registers that are
                # still live there) and must not run before the branch
                # compare reads its operands — so every such edge gets a
                # dedicated block.
                self._label_counter += 1
                edge = self.mfunc.new_block(
                    f"{self.mfunc.name}__edge{self._label_counter}")
                saved = self.current
                self.current = edge
                self._emit_parallel_copies(copies)
                self.emit("jmp", [Label(self.block_map[id(succ)].label)])
                self.current = saved
                self._edge_redirect(term, pred_block, succ, edge)
            else:
                self._emit_parallel_copies(copies)

    def _edge_redirect(self, term, pred_block, succ, edge_mblock):
        # Record the redirect so _select_terminator emits the edge label.
        redirects = getattr(self, "_redirects", {})
        redirects[(id(pred_block), id(succ))] = Label(edge_mblock.label)
        self._redirects = redirects

    def _target_label(self, pred_block, succ):
        redirects = getattr(self, "_redirects", {})
        label = redirects.get((id(pred_block), id(succ)))
        return label if label is not None else self.label_of(succ)

    def _emit_parallel_copies(self, copies):
        """dst_i <- src_i simultaneously: stage through temporaries."""
        staged = []
        for dst, incoming in copies:
            src = self.vreg_for(incoming)
            tmp = self.mfunc.new_vreg(dst.cls)
            self.emit("mv", [tmp, src])
            staged.append((dst, tmp))
        for dst, tmp in staged:
            self.emit("mv", [dst, tmp])

    # -- terminators --------------------------------------------------------------
    def _select_terminator(self, block, term):
        if isinstance(term, BranchInst):
            self.emit("jmp", [self._target_label(block, term.target)])
            return
        if isinstance(term, CondBranchInst):
            true_label = self._target_label(block, term.true_target)
            false_label = self._target_label(block, term.false_target)
            condition = term.condition
            fused = self._fusable_compare(condition, term)
            if fused is not None:
                opcode, pred, lhs, rhs = fused
                self.emit(opcode, [lhs, rhs, true_label], pred=pred)
            else:
                cond = self.vreg_for(condition)
                zero = self.mfunc.new_vreg("int")
                self.emit("li", [zero, Imm(0)])
                self.emit("bcc", [cond, zero, true_label], pred="ne")
            self.emit("jmp", [false_label])
            return
        if isinstance(term, RetInst):
            if term.value is not None:
                value = self.vreg_for(term.value)
                target = (self.isa.ret_float
                          if term.value.type.is_float()
                          else self.isa.ret_int)
                self.emit("mv", [target, value])
            self.emit("ret", [])
            return
        if isinstance(term, UnreachableInst):
            self.emit("ret", [])
            return
        raise TypeError(f"unknown terminator {term!r}")

    def _fusable_compare(self, condition, term):
        """(opcode, pred, lhs, rhs) when the compare can fuse into the
        branch: single user, same block."""
        if not isinstance(condition, (ICmpInst, FCmpInst)):
            return None
        if condition.parent is not term.parent:
            return None
        if len(condition.users) != 1:
            return None
        lhs = self.vreg_for(condition.operands[0])
        rhs = self.vreg_for(condition.operands[1])
        if isinstance(condition, ICmpInst):
            return ("bcc", condition.predicate, lhs, rhs)
        return ("fbcc", condition.predicate, lhs, rhs)

    # -- ordinary instructions -------------------------------------------------------
    def _select(self, inst):
        if isinstance(inst, AllocaInst):
            size = inst.allocated_type.size_cells()
            offset = self.mfunc.frame_slots
            self.mfunc.frame_slots += size
            self.emit("frame_alloc",
                      [self.value_map[id(inst)], Imm(offset), Imm(size)])
            return
        if isinstance(inst, BinaryInst):
            dst = self.value_map[id(inst)]
            lhs = self.vreg_for(inst.lhs)
            rhs = self.vreg_for(inst.rhs)
            self.emit(_BINOP_MAP[inst.opcode], [dst, lhs, rhs])
            return
        if isinstance(inst, (ICmpInst, FCmpInst)):
            users = inst.users
            term = inst.parent.terminator()
            if len(users) == 1 and users[0] is term and \
                    isinstance(term, CondBranchInst) and \
                    term.condition is inst:
                return  # fused into the branch
            dst = self.value_map[id(inst)]
            lhs = self.vreg_for(inst.operands[0])
            rhs = self.vreg_for(inst.operands[1])
            opcode = "setcc" if isinstance(inst, ICmpInst) else "fsetcc"
            self.emit(opcode, [dst, lhs, rhs], pred=inst.predicate)
            return
        if isinstance(inst, LoadInst):
            address = self.vreg_for(inst.pointer)
            self.emit("ld", [self.value_map[id(inst)], address, Imm(0)])
            return
        if isinstance(inst, StoreInst):
            address = self.vreg_for(inst.pointer)
            value = self.vreg_for(inst.value)
            self.emit("st", [value, address, Imm(0)])
            return
        if isinstance(inst, GEPInst):
            self._select_gep(inst)
            return
        if isinstance(inst, SelectInst):
            dst = self.value_map[id(inst)]
            cond = self.vreg_for(inst.condition)
            tval = self.vreg_for(inst.true_value)
            fval = self.vreg_for(inst.false_value)
            self.emit("cmov", [dst, cond, tval, fval])
            return
        if isinstance(inst, CastInst):
            self._select_cast(inst)
            return
        if isinstance(inst, CallInst):
            self._select_call(inst)
            return
        raise TypeError(f"cannot select {inst!r}")

    def _select_gep(self, inst):
        dst = self.value_map[id(inst)]
        base = self.vreg_for(inst.base)
        scale = inst.type.pointee.size_cells()
        if isinstance(inst.index, ConstantInt):
            offset = inst.index.value * scale
            tmp = self.mfunc.new_vreg("int")
            self.emit("li", [tmp, Imm(offset)])
            self.emit("add", [dst, base, tmp])
            return
        index = self.vreg_for(inst.index)
        if self.isa.has_lea and scale in (1, 2, 4, 8):
            self.emit("lea", [dst, base, index, Imm(scale)])
            return
        if scale == 1:
            self.emit("add", [dst, base, index])
            return
        scaled = self.mfunc.new_vreg("int")
        if scale & (scale - 1) == 0:
            shift = self.mfunc.new_vreg("int")
            self.emit("li", [shift, Imm(scale.bit_length() - 1)])
            self.emit("shl", [scaled, index, shift])
        else:
            factor = self.mfunc.new_vreg("int")
            self.emit("li", [factor, Imm(scale)])
            self.emit("mul", [scaled, index, factor])
        self.emit("add", [dst, base, scaled])

    def _select_cast(self, inst):
        dst = self.value_map[id(inst)]
        src = self.vreg_for(inst.value)
        if inst.opcode == "sitofp":
            self.emit("cvtsi2sd", [dst, src])
        elif inst.opcode == "fptosi":
            self.emit("cvtsd2si", [dst, src])
        elif inst.opcode == "trunc" and inst.type.bits == 1:
            one = self.mfunc.new_vreg("int")
            self.emit("li", [one, Imm(1)])
            self.emit("and", [dst, src, one])
        else:  # zext / sext / wide trunc: cells are 64-bit, plain move
            self.emit("mv", [dst, src])

    def _select_call(self, inst):
        if inst.is_intrinsic():
            self._select_intrinsic(inst)
            return
        int_args = iter(self.isa.arg_int)
        float_args = iter(self.isa.arg_float)
        moves = []
        for arg in inst.args:
            value = self.vreg_for(arg)
            target = next(float_args if arg.type.is_float() else int_args)
            moves.append((target, value))
        for target, value in moves:
            self.emit("mv", [target, value])
        self.emit("call", [inst.callee.name])
        if not inst.type.is_void():
            source = (self.isa.ret_float if inst.type.is_float()
                      else self.isa.ret_int)
            self.emit("mv", [self.value_map[id(inst)], source])

    def _select_intrinsic(self, inst):
        name = inst.callee
        if name in _FLOAT_UNARY:
            src = self.vreg_for(inst.args[0])
            self.emit(_FLOAT_UNARY[name], [self.value_map[id(inst)], src])
            return
        if name == "pow":
            a = self.vreg_for(inst.args[0])
            b = self.vreg_for(inst.args[1])
            self.emit("fpow", [self.value_map[id(inst)], a, b])
            return
        if name in ("imin", "imax"):
            a = self.vreg_for(inst.args[0])
            b = self.vreg_for(inst.args[1])
            dst = self.value_map[id(inst)]
            cond = self.mfunc.new_vreg("int")
            pred = "slt" if name == "imin" else "sgt"
            self.emit("setcc", [cond, a, b], pred=pred)
            self.emit("cmov", [dst, cond, a, b])
            return
        if name == "iabs":
            a = self.vreg_for(inst.args[0])
            dst = self.value_map[id(inst)]
            zero = self.mfunc.new_vreg("int")
            self.emit("li", [zero, Imm(0)])
            neg = self.mfunc.new_vreg("int")
            self.emit("sub", [neg, zero, a])
            cond = self.mfunc.new_vreg("int")
            self.emit("setcc", [cond, a, zero], pred="slt")
            self.emit("cmov", [dst, cond, neg, a])
            return
        if name == "print_int":
            self.emit("print", ["i", self.vreg_for(inst.args[0])])
            return
        if name == "print_float":
            self.emit("print", ["f", self.vreg_for(inst.args[0])])
            return
        if name == "memset":
            dest = self.vreg_for(inst.args[0])
            value = self.vreg_for(inst.args[1])
            count = self.vreg_for(inst.args[2])
            self.emit("memset", [dest, value, count])
            return
        if name == "memcpy":
            dest = self.vreg_for(inst.args[0])
            src = self.vreg_for(inst.args[1])
            count = self.vreg_for(inst.args[2])
            self.emit("memcpy", [dest, src, count])
            return
        raise TypeError(f"cannot select intrinsic {name!r}")


def select_function(function, isa, program):
    return FunctionSelector(function, isa, program).run()
