"""Back end: instruction selection, register allocation, ISAs, encoding."""

from repro.backend.isa import ISA, RiscV, TARGETS, X86, get_isa
from repro.backend.codegen import code_size, compile_module
from repro.backend.mir import (
    MachineBlock,
    MachineFunction,
    MachineInstr,
    MachineProgram,
)

__all__ = [
    "ISA", "X86", "RiscV", "TARGETS", "get_isa",
    "compile_module", "code_size",
    "MachineProgram", "MachineFunction", "MachineBlock", "MachineInstr",
]
