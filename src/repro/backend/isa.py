"""Target ISA descriptions: register files, encoding sizes, and the
per-opcode latency/energy tables the simulator consumes.

Two targets mirror the paper's platforms:

- ``x86``: CISC-flavoured — 14 allocatable integer and 14 float registers,
  variable-length encoding, ``lea`` address arithmetic, ``cmov``, SLP
  vector lanes, a wide out-of-order-approximated pipeline.
- ``riscv``: RISC-flavoured embedded core — 26 allocatable integer and 30
  float registers, fixed 4-byte encoding (2-byte compressed subset),
  no cmov (expands), scalar in-order pipeline.
"""

from repro.backend.mir import Imm, PhysReg


class ISA:
    name = "<abstract>"
    issue_width = 1
    has_lea = False
    has_cmov = False
    has_vector = False
    vector_lanes = 4
    # Cache geometry (cells per line, lines, ways) and penalties.
    dcache = {"line": 8, "sets": 64, "ways": 2,
              "hit": 2, "miss": 20}
    icache = {"line_bytes": 64, "lines": 128, "miss": 8}
    branch_mispredict = 8
    call_overhead = 2
    frequency_ghz = 1.0

    def __init__(self):
        self.int_regs = [PhysReg(n, "int", i)
                         for i, n in enumerate(self.int_reg_names)]
        self.float_regs = [PhysReg(n, "float", i)
                           for i, n in enumerate(self.float_reg_names)]
        self.arg_int = [r for r in self.int_regs
                        if r.name in self.arg_int_names]
        self.arg_float = [r for r in self.float_regs
                          if r.name in self.arg_float_names]
        self.ret_int = self.arg_int[0]
        self.ret_float = self.arg_float[0]
        # Registers the allocator may use freely (excludes arg registers,
        # which the simple ABI reserves for calls).
        reserved = set(self.arg_int_names) | set(self.arg_float_names)
        self.alloc_int = [r for r in self.int_regs
                          if r.name not in reserved]
        self.alloc_float = [r for r in self.float_regs
                            if r.name not in reserved]

    # -- encoding --------------------------------------------------------
    def encode_size(self, instr):
        raise NotImplementedError

    # -- timing/energy ------------------------------------------------------
    def latency(self, instr):
        return self.latency_table.get(instr.opcode, 1)

    def energy(self, instr):
        return self.energy_table.get(instr.opcode, self.base_energy)


class X86(ISA):
    """Intel-Core-i7-flavoured target (the paper's x86 platform)."""

    name = "x86"
    issue_width = 4
    has_lea = True
    has_cmov = True
    has_vector = True
    vector_lanes = 4
    dcache = {"line": 8, "sets": 64, "ways": 8, "hit": 1, "miss": 16}
    icache = {"line_bytes": 64, "lines": 512, "miss": 6}
    branch_mispredict = 14
    call_overhead = 2
    frequency_ghz = 3.0

    int_reg_names = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi",
                     "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]
    float_reg_names = [f"xmm{i}" for i in range(16)]
    arg_int_names = ["rdi", "rsi", "rdx", "rcx", "r8", "r9"]
    arg_float_names = ["xmm0", "xmm1", "xmm2", "xmm3",
                       "xmm4", "xmm5", "xmm6", "xmm7"]

    latency_table = {
        "mul": 3, "div": 22, "rem": 24,
        "fadd": 3, "fsub": 3, "fmul": 4, "fdiv": 14,
        "fsqrt": 15, "fexp": 40, "flog": 40, "fsin": 45, "fcos": 45,
        "fpow": 60, "cvtsi2sd": 4, "cvtsd2si": 4,
        "ld": 4, "vop": 4, "cmov": 2,
    }
    # Energy in picojoules per operation (McPAT-like orders of magnitude
    # for a desktop core).
    base_energy = 45.0
    energy_table = {
        "mul": 95.0, "div": 400.0, "rem": 420.0,
        "fadd": 110.0, "fsub": 110.0, "fmul": 140.0, "fdiv": 450.0,
        "fsqrt": 500.0, "fexp": 1400.0, "flog": 1400.0,
        "fsin": 1600.0, "fcos": 1600.0, "fpow": 2100.0,
        "ld": 140.0, "st": 160.0, "call": 180.0, "ret": 90.0,
        "vop": 260.0, "memset": 90.0, "memcpy": 120.0,
        "print": 600.0,
    }
    static_power_watts = 4.5

    def encode_size(self, instr):
        opcode = instr.opcode
        if opcode in ("jmp",):
            return 2
        if opcode in ("bcc", "fbcc"):
            return 5  # cmp (3) + jcc (2)
        if opcode in ("setcc", "fsetcc"):
            return 6  # cmp + setcc + movzx
        if opcode == "li":
            operand = instr.operands[1]
            if isinstance(operand, Imm):
                value = operand.value
                return 5 if -(1 << 31) <= value < (1 << 31) else 10
            return 7  # RIP-relative global address
        if opcode == "lfi":
            return 8
        if opcode in ("mv", "fneg"):
            return 3
        if opcode == "lea":
            return 4
        if opcode in ("ld", "st"):
            return 4
        if opcode in ("call",):
            return 5
        if opcode == "ret":
            return 1
        if opcode == "cmov":
            return 4
        if opcode == "vop":
            return 5
        if opcode in ("memset", "memcpy"):
            return 6  # rep stosq / rep movsq with setup
        if opcode == "print":
            return 5
        if opcode == "frame_alloc":
            return 4
        # ALU ops: reg/reg 3 bytes, reg/imm 4-7.
        if any(isinstance(op, Imm) for op in instr.operands):
            return 5
        return 3


class RiscV(ISA):
    """Embedded RISC-V-flavoured target (the paper's RISC-V platform,
    profiled via HIPERSIM+McPAT in the original)."""

    name = "riscv"
    issue_width = 1
    has_lea = False
    has_cmov = False
    has_vector = False
    dcache = {"line": 4, "sets": 32, "ways": 2, "hit": 1, "miss": 30}
    icache = {"line_bytes": 32, "lines": 64, "miss": 12}
    branch_mispredict = 3
    call_overhead = 1
    frequency_ghz = 0.1  # 100 MHz embedded part

    int_reg_names = ([f"x{i}" for i in range(5, 32)] +
                     [f"a{i}" for i in range(8)])
    float_reg_names = ([f"f{i}" for i in range(22)] +
                       [f"fa{i}" for i in range(8)])
    arg_int_names = [f"a{i}" for i in range(8)]
    arg_float_names = [f"fa{i}" for i in range(8)]

    latency_table = {
        "mul": 4, "div": 33, "rem": 34,
        "fadd": 4, "fsub": 4, "fmul": 5, "fdiv": 28,
        "fsqrt": 30, "fexp": 110, "flog": 110, "fsin": 130, "fcos": 130,
        "fpow": 180, "cvtsi2sd": 3, "cvtsd2si": 3,
        "ld": 2, "cmov": 3,
    }
    # Energy per op for a small in-order embedded core.
    base_energy = 6.0
    energy_table = {
        "mul": 14.0, "div": 60.0, "rem": 62.0,
        "fadd": 16.0, "fsub": 16.0, "fmul": 20.0, "fdiv": 70.0,
        "fsqrt": 80.0, "fexp": 210.0, "flog": 210.0,
        "fsin": 240.0, "fcos": 240.0, "fpow": 320.0,
        "ld": 18.0, "st": 20.0, "call": 20.0, "ret": 10.0,
        "memset": 12.0, "memcpy": 16.0, "print": 80.0,
    }
    static_power_watts = 0.035

    _COMPRESSED = frozenset({"mv", "jmp", "ret", "add", "li"})

    def encode_size(self, instr):
        opcode = instr.opcode
        if opcode == "li":
            operand = instr.operands[1]
            if not isinstance(operand, Imm):
                return 8  # lui+addi global address
            value = operand.value
            if -32 <= value < 32:
                return 2  # c.li
            if -(1 << 11) <= value < (1 << 11):
                return 4
            return 8  # lui+addi / constant pool
        if opcode == "lfi":
            return 8  # aupic+fld from constant pool
        if opcode in ("setcc", "fsetcc"):
            return 8  # slt + xori style pair
        if opcode == "cmov":
            return 12  # branch + moves
        if opcode in ("memset", "memcpy"):
            return 16  # tight runtime loop stub
        if opcode == "print":
            return 8
        if opcode in self._COMPRESSED:
            if opcode == "li":
                return 2
            return 2
        if opcode == "lea":
            return 8  # shift+add pair
        if opcode in ("bcc", "fbcc"):
            pred = instr.pred or "eq"
            return 4 if pred in ("eq", "ne", "slt", "sge") else 8
        return 4


TARGETS = {"x86": X86, "riscv": RiscV}


def get_isa(name):
    try:
        return TARGETS[name]()
    except KeyError:
        raise KeyError(f"unknown target {name!r}; "
                       f"available: {sorted(TARGETS)}") from None
