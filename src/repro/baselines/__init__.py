"""Baselines: the standard fixed -O pipelines the paper's Figs. 5/7
compare against, plus random-search and genetic phase-ordering baselines.
"""

from repro.baselines.standard import STANDARD_LEVELS, standard_pipeline
from repro.baselines.searchers import (
    GeneticSearch,
    RandomPhaseSearch,
    IterativeElimination,
)

__all__ = [
    "STANDARD_LEVELS", "standard_pipeline",
    "RandomPhaseSearch", "GeneticSearch", "IterativeElimination",
]
