"""Search-based phase-ordering baselines (the autotuning literature the
paper positions itself against: random search and genetic search, plus an
iterative-elimination pass pruner).

All searchers evaluate through an :class:`repro.engine.EvaluationEngine`
so repeated candidate sequences (identical children across generations,
re-tried eliminations) hit the evaluation cache instead of re-running
the compile->simulate loop.  Passing an ``estimator`` switches a
searcher to PE-guided mode: whole candidate sets are scored with one
batched matrix call (``engine.score_sequences``) and only the
highest-ranked candidates are validated with real profiling — the
paper's core "estimate instead of execute" trade applied to the
baselines themselves.
"""

import numpy as np

from repro.engine import EvaluationEngine
from repro.passes import available_phases


def _evaluate(workload, platform, sequence, objective, engine=None):
    engine = engine or EvaluationEngine(platform)
    result = engine.evaluate(workload, tuple(sequence))
    return objective(result), result


def _default_objective(measurement):
    return measurement.metrics()["exec_time_us"]


def _predicted_time(objectives):
    """Rank key for PE-predicted candidate objectives."""
    return objectives["time"]


class RandomPhaseSearch:
    """Sample random sequences; keep the best (lower objective wins).

    With an ``estimator``, all trials are scored in one batched PE call
    and only the top ``validate_top`` candidates are actually profiled.
    """

    def __init__(self, n_trials=30, max_length=12, seed=0,
                 objective=_default_objective, phases=None,
                 engine=None, estimator=None, validate_top=3):
        self.n_trials = n_trials
        self.max_length = max_length
        self.seed = seed
        self.objective = objective
        self.phases = list(phases or available_phases())
        self.engine = engine
        self.estimator = estimator
        self.validate_top = validate_top

    def _sequences(self, rng):
        sequences = []
        for _ in range(self.n_trials):
            length = int(rng.integers(1, self.max_length + 1))
            sequences.append(tuple(str(rng.choice(self.phases))
                                   for _ in range(length)))
        return sequences

    def search(self, workload, platform):
        rng = np.random.default_rng(self.seed)
        engine = self.engine or EvaluationEngine(platform)
        best_sequence = ()
        best_value, _ = _evaluate(workload, platform, (),
                                  self.objective, engine)
        candidates = self._sequences(rng)
        if self.estimator is not None:
            # One matrix call ranks every trial; profile only the top.
            # (Candidates whose pipeline failed score as None.)
            predicted = engine.score_sequences(workload, candidates,
                                               self.estimator)
            ranked = sorted(
                ((sequence, objectives) for sequence, objectives
                 in zip(candidates, predicted) if objectives is not None),
                key=lambda cp: _predicted_time(cp[1]))
            candidates = [sequence for sequence, _ in
                          ranked[:max(1, self.validate_top)]]
        for sequence in candidates:
            try:
                value, _ = _evaluate(workload, platform, sequence,
                                     self.objective, engine)
            except Exception:
                continue
            if value < best_value:
                best_value = value
                best_sequence = sequence
        return best_sequence, best_value


class GeneticSearch:
    """Small genetic algorithm over phase sequences.

    With an ``estimator``, each generation's fitness is one batched PE
    matrix call; the final winner is validated by real profiling.
    """

    def __init__(self, population=12, generations=6, max_length=14,
                 mutation_rate=0.25, seed=0,
                 objective=_default_objective, phases=None,
                 engine=None, estimator=None):
        self.population = population
        self.generations = generations
        self.max_length = max_length
        self.mutation_rate = mutation_rate
        self.seed = seed
        self.objective = objective
        self.phases = list(phases or available_phases())
        self.engine = engine
        self.estimator = estimator

    def search(self, workload, platform):
        rng = np.random.default_rng(self.seed)
        engine = self.engine or EvaluationEngine(platform)

        def random_sequence():
            length = int(rng.integers(2, self.max_length + 1))
            return tuple(str(rng.choice(self.phases))
                         for _ in range(length))

        def fitness_profiled(sequence):
            try:
                value, _ = _evaluate(workload, platform, sequence,
                                     self.objective, engine)
                return value
            except Exception:
                return float("inf")

        def score_population(sequences):
            if self.estimator is None:
                return [(fitness_profiled(s), s) for s in sequences]
            # Batched PE inference: one matrix call per generation;
            # failed candidates rank last, like the profiled path.
            predicted = engine.score_sequences(workload, sequences,
                                               self.estimator)
            return [(float("inf") if objectives is None
                     else _predicted_time(objectives), sequence)
                    for sequence, objectives in zip(sequences,
                                                    predicted)]

        population = [random_sequence() for _ in range(self.population)]
        scored = score_population(population)
        for _ in range(self.generations):
            scored.sort(key=lambda fs: fs[0])
            elites = [s for _, s in scored[:max(2, self.population // 3)]]
            children = list(elites)
            while len(children) < self.population:
                a = elites[rng.integers(len(elites))]
                b = elites[rng.integers(len(elites))]
                if a and b:
                    cut_a = rng.integers(0, len(a) + 1)
                    cut_b = rng.integers(0, len(b) + 1)
                    child = (a[:cut_a] + b[cut_b:])[:self.max_length]
                else:
                    child = a or b
                child = list(child) or [str(rng.choice(self.phases))]
                for i in range(len(child)):
                    if rng.random() < self.mutation_rate:
                        child[i] = str(rng.choice(self.phases))
                children.append(tuple(child))
            scored = score_population(children)
        scored.sort(key=lambda fs: fs[0])
        if self.estimator is not None:
            # Validate the PE's pick with a real measurement.
            best_sequence = scored[0][1]
            return best_sequence, fitness_profiled(best_sequence)
        return scored[0][1], scored[0][0]


class IterativeElimination:
    """Start from a full pipeline and drop phases that do not help."""

    def __init__(self, base_sequence=None, objective=_default_objective,
                 engine=None):
        from repro.baselines.standard import STANDARD_LEVELS
        self.base_sequence = list(base_sequence
                                  or STANDARD_LEVELS["-O2"])
        self.objective = objective
        self.engine = engine

    def search(self, workload, platform):
        engine = self.engine or EvaluationEngine(platform)
        current = list(self.base_sequence)
        best_value, _ = _evaluate(workload, platform, current,
                                  self.objective, engine)
        improved = True
        while improved and len(current) > 1:
            improved = False
            for i in range(len(current)):
                candidate = current[:i] + current[i + 1:]
                try:
                    value, _ = _evaluate(workload, platform, candidate,
                                         self.objective, engine)
                except Exception:
                    continue
                if value < best_value:
                    best_value = value
                    current = candidate
                    improved = True
                    break
        return tuple(current), best_value
