"""Search-based phase-ordering baselines (the autotuning literature the
paper positions itself against: random search and genetic search, plus an
iterative-elimination pass pruner)."""

import numpy as np

from repro.passes import PassManager, available_phases


def _evaluate(workload, platform, sequence, objective):
    module = workload.compile()
    PassManager().run(module, sequence)
    measurement = platform.profile(module)
    return objective(measurement), measurement


def _default_objective(measurement):
    return measurement.metrics()["exec_time_us"]


class RandomPhaseSearch:
    """Sample random sequences; keep the best (lower objective wins)."""

    def __init__(self, n_trials=30, max_length=12, seed=0,
                 objective=_default_objective, phases=None):
        self.n_trials = n_trials
        self.max_length = max_length
        self.seed = seed
        self.objective = objective
        self.phases = list(phases or available_phases())

    def search(self, workload, platform):
        rng = np.random.default_rng(self.seed)
        best_sequence = ()
        best_value, _ = _evaluate(workload, platform, (), self.objective)
        for _ in range(self.n_trials):
            length = int(rng.integers(1, self.max_length + 1))
            sequence = tuple(str(rng.choice(self.phases))
                             for _ in range(length))
            try:
                value, _ = _evaluate(workload, platform, sequence,
                                     self.objective)
            except Exception:
                continue
            if value < best_value:
                best_value = value
                best_sequence = sequence
        return best_sequence, best_value


class GeneticSearch:
    """Small genetic algorithm over phase sequences."""

    def __init__(self, population=12, generations=6, max_length=14,
                 mutation_rate=0.25, seed=0,
                 objective=_default_objective, phases=None):
        self.population = population
        self.generations = generations
        self.max_length = max_length
        self.mutation_rate = mutation_rate
        self.seed = seed
        self.objective = objective
        self.phases = list(phases or available_phases())

    def search(self, workload, platform):
        rng = np.random.default_rng(self.seed)

        def random_sequence():
            length = int(rng.integers(2, self.max_length + 1))
            return tuple(str(rng.choice(self.phases))
                         for _ in range(length))

        def fitness(sequence):
            try:
                value, _ = _evaluate(workload, platform, sequence,
                                     self.objective)
                return value
            except Exception:
                return float("inf")

        population = [random_sequence() for _ in range(self.population)]
        scored = [(fitness(s), s) for s in population]
        for _ in range(self.generations):
            scored.sort(key=lambda fs: fs[0])
            elites = [s for _, s in scored[:max(2, self.population // 3)]]
            children = list(elites)
            while len(children) < self.population:
                a = elites[rng.integers(len(elites))]
                b = elites[rng.integers(len(elites))]
                if a and b:
                    cut_a = rng.integers(0, len(a) + 1)
                    cut_b = rng.integers(0, len(b) + 1)
                    child = (a[:cut_a] + b[cut_b:])[:self.max_length]
                else:
                    child = a or b
                child = list(child) or [str(rng.choice(self.phases))]
                for i in range(len(child)):
                    if rng.random() < self.mutation_rate:
                        child[i] = str(rng.choice(self.phases))
                children.append(tuple(child))
            scored = [(fitness(s), s) for s in children]
        scored.sort(key=lambda fs: fs[0])
        return scored[0][1], scored[0][0]


class IterativeElimination:
    """Start from a full pipeline and drop phases that do not help."""

    def __init__(self, base_sequence=None, objective=_default_objective):
        from repro.baselines.standard import STANDARD_LEVELS
        self.base_sequence = list(base_sequence
                                  or STANDARD_LEVELS["-O2"])
        self.objective = objective

    def search(self, workload, platform):
        current = list(self.base_sequence)
        best_value, _ = _evaluate(workload, platform, current,
                                  self.objective)
        improved = True
        while improved and len(current) > 1:
            improved = False
            for i in range(len(current)):
                candidate = current[:i] + current[i + 1:]
                try:
                    value, _ = _evaluate(workload, platform, candidate,
                                         self.objective)
                except Exception:
                    continue
                if value < best_value:
                    best_value = value
                    current = candidate
                    improved = True
                    break
        return tuple(current), best_value
