"""Standard optimization levels.

Fixed pipelines in the spirit of LLVM's -O1/-O2/-O3/-Os/-Oz built from
this compiler's phases.  These are the "standard state-of-the-art
optimizations" the paper's Figs. 5 and 7 compare the PSS against.
"""

_O1 = (
    "mem2reg", "instcombine", "simplifycfg", "early-cse",
    "sccp", "dce", "simplifycfg",
)

_O2 = (
    "mem2reg", "sroa", "early-cse", "simplifycfg", "instcombine",
    "ipsccp", "called-value-propagation", "globalopt", "deadargelim",
    "inline", "instcombine", "simplifycfg", "jump-threading",
    "correlated-propagation", "reassociate", "loop-rotate", "licm",
    "loop-unswitch", "indvars", "loop-idiom", "loop-deletion",
    "loop-unroll", "gvn", "memcpyopt", "sccp", "bdce", "instcombine",
    "dse", "simplifycfg", "adce", "globaldce", "constmerge",
)

_O3 = (
    "mem2reg", "sroa", "early-cse", "simplifycfg", "instcombine",
    "aggressive-instcombine", "ipsccp", "called-value-propagation",
    "globalopt", "deadargelim", "inline", "argpromotion", "instcombine",
    "simplifycfg", "callsite-splitting", "jump-threading",
    "correlated-propagation", "reassociate", "loop-rotate", "licm",
    "loop-unswitch", "indvars", "loop-idiom", "loop-deletion",
    "loop-distribute", "loop-unroll", "loop-vectorize", "slp-vectorizer",
    "gvn", "memcpyopt", "mldst-motion", "sccp", "bdce", "div-rem-pairs",
    "instcombine", "dse", "licm", "loop-sink", "speculative-execution",
    "float2int", "simplifycfg", "adce", "globaldce", "constmerge",
    "tailcallelim",
)

_OS = (
    "mem2reg", "early-cse", "simplifycfg", "instcombine", "ipsccp",
    "globalopt", "deadargelim", "inline", "instcombine",
    "jump-threading", "reassociate", "licm", "loop-rotate", "indvars",
    "loop-idiom", "loop-deletion", "gvn", "sccp", "instcombine", "dse",
    "simplifycfg", "adce", "globaldce", "constmerge", "deadargelim",
)

_OZ = (
    "mem2reg", "simplifycfg", "instcombine", "ipsccp", "globalopt",
    "deadargelim", "early-cse", "jump-threading", "licm", "loop-rotate",
    "loop-idiom", "loop-deletion", "gvn", "sccp", "instcombine", "dse",
    "simplifycfg", "adce", "globaldce", "constmerge",
)

STANDARD_LEVELS = {
    "-O0": (),
    "-O1": _O1,
    "-O2": _O2,
    "-O3": _O3,
    "-Os": _OS,
    "-Oz": _OZ,
}


def standard_pipeline(level):
    try:
        return list(STANDARD_LEVELS[level])
    except KeyError:
        raise KeyError(f"unknown level {level!r}; "
                       f"available: {sorted(STANDARD_LEVELS)}") from None
