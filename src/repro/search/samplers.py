"""Samplers for the heuristic search: random and a TPE-like density
sampler (the Tree-structured Parzen Estimator that Optuna defaults to)."""

import numpy as np


class RandomSampler:
    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def suggest_categorical(self, name, choices, history):
        return choices[self.rng.integers(len(choices))]

    def suggest_float(self, name, low, high, log, history):
        if log:
            return float(np.exp(self.rng.uniform(np.log(low),
                                                 np.log(high))))
        return float(self.rng.uniform(low, high))

    def suggest_int(self, name, low, high, history):
        return int(self.rng.integers(low, high + 1))


class TPESampler(RandomSampler):
    """Tree-structured Parzen Estimator (simplified).

    After ``n_startup`` random trials, parameter values are drawn from a
    kernel-density model of the best ``gamma`` fraction of trials and
    scored by the likelihood ratio l(x)/g(x) over a candidate set.
    """

    def __init__(self, seed=0, n_startup=8, gamma=0.3, n_candidates=16):
        super().__init__(seed)
        self.n_startup = n_startup
        self.gamma = gamma
        self.n_candidates = n_candidates

    # history: list of (params_dict, value, direction) provided by Study.
    def _split(self, name, history):
        observed = [(params[name], value)
                    for params, value in history if name in params]
        if len(observed) < self.n_startup:
            return None, None
        observed.sort(key=lambda pv: pv[1], reverse=True)  # maximize
        n_good = max(1, int(len(observed) * self.gamma))
        good = [v for v, _ in observed[:n_good]]
        bad = [v for v, _ in observed[n_good:]] or good
        return good, bad

    def suggest_categorical(self, name, choices, history):
        good, bad = self._split(name, history)
        if good is None:
            return super().suggest_categorical(name, choices, history)
        # Weight by smoothed counts in the good set over the bad set.
        scores = []
        for choice in choices:
            l = (sum(1 for v in good if v == choice) + 0.5) / \
                (len(good) + 0.5 * len(choices))
            g = (sum(1 for v in bad if v == choice) + 0.5) / \
                (len(bad) + 0.5 * len(choices))
            scores.append(l / g)
        probabilities = np.asarray(scores) / np.sum(scores)
        return choices[self.rng.choice(len(choices), p=probabilities)]

    def _kde_ratio_pick(self, good, bad, candidates, bandwidth):
        def density(x, samples):
            samples = np.asarray(samples, dtype=float)
            return np.mean(np.exp(
                -0.5 * ((x - samples) / bandwidth) ** 2)) + 1e-12

        scores = [density(c, good) / density(c, bad) for c in candidates]
        return candidates[int(np.argmax(scores))]

    def suggest_float(self, name, low, high, log, history):
        good, bad = self._split(name, history)
        if good is None:
            return super().suggest_float(name, low, high, log, history)
        if log:
            good = list(np.log(good))
            bad = list(np.log(bad))
            lo, hi = np.log(low), np.log(high)
        else:
            lo, hi = low, high
        candidates = list(self.rng.uniform(lo, hi, self.n_candidates))
        bandwidth = max((hi - lo) / 10.0, 1e-9)
        best = self._kde_ratio_pick(good, bad, candidates, bandwidth)
        return float(np.exp(best)) if log else float(best)

    def suggest_int(self, name, low, high, history):
        value = self.suggest_float(name, low, high + 0.999, False, history)
        return int(min(max(int(value), low), high))
