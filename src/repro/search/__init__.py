"""Optuna-like heuristic hyperparameter search (paper Fig. 3 uses Optuna
to drive the PE model search)."""

from repro.search.study import Study, Trial, create_study
from repro.search.samplers import RandomSampler, TPESampler

__all__ = ["Study", "Trial", "create_study", "RandomSampler",
           "TPESampler"]
