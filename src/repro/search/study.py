"""Study/Trial: the ask-and-tell search API (Optuna-flavoured)."""

from repro.errors import SearchError
from repro.search.samplers import TPESampler


class Trial:
    """One evaluation of the objective; records suggested parameters."""

    def __init__(self, number, sampler, history):
        self.number = number
        self._sampler = sampler
        self._history = history
        self.params = {}
        self.value = None
        self.state = "running"
        self.user_attrs = {}

    def suggest_categorical(self, name, choices):
        value = self._sampler.suggest_categorical(name, list(choices),
                                                  self._history)
        self.params[name] = value
        return value

    def suggest_float(self, name, low, high, log=False):
        if low > high:
            raise SearchError(f"empty range for {name!r}")
        value = self._sampler.suggest_float(name, low, high, log,
                                            self._history)
        self.params[name] = value
        return value

    def suggest_int(self, name, low, high):
        if low > high:
            raise SearchError(f"empty range for {name!r}")
        value = self._sampler.suggest_int(name, low, high, self._history)
        self.params[name] = value
        return value

    def set_user_attr(self, key, value):
        self.user_attrs[key] = value


class Study:
    """Maximizing (or minimizing) sequential search."""

    def __init__(self, direction="maximize", sampler=None):
        if direction not in ("maximize", "minimize"):
            raise SearchError(f"invalid direction {direction!r}")
        self.direction = direction
        self.sampler = sampler or TPESampler()
        self.trials = []

    def _history(self):
        sign = 1.0 if self.direction == "maximize" else -1.0
        return [(t.params, sign * t.value) for t in self.trials
                if t.state == "complete" and t.value is not None]

    def ask(self):
        return Trial(len(self.trials), self.sampler, self._history())

    def tell(self, trial, value):
        trial.value = value
        trial.state = "complete"
        self.trials.append(trial)

    def optimize(self, objective, n_trials, callbacks=(),
                 catch_errors=False):
        for _ in range(n_trials):
            trial = self.ask()
            try:
                value = objective(trial)
            except Exception:
                if not catch_errors:
                    raise
                trial.state = "failed"
                self.trials.append(trial)
                continue
            self.tell(trial, value)
            for callback in callbacks:
                if callback(self, trial):
                    return self
        return self

    @property
    def best_trial(self):
        complete = [t for t in self.trials if t.state == "complete"]
        if not complete:
            raise SearchError("no completed trials")
        if self.direction == "maximize":
            return max(complete, key=lambda t: t.value)
        return min(complete, key=lambda t: t.value)

    @property
    def best_value(self):
        return self.best_trial.value

    @property
    def best_params(self):
        return dict(self.best_trial.params)


def create_study(direction="maximize", sampler=None, seed=0):
    return Study(direction, sampler or TPESampler(seed=seed))
