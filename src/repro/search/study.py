"""Study/Trial: the ask-and-tell search API (Optuna-flavoured)."""

from repro.errors import SearchError
from repro.search.samplers import TPESampler


class Trial:
    """One evaluation of the objective; records suggested parameters."""

    def __init__(self, number, sampler, history):
        self.number = number
        self._sampler = sampler
        self._history = history
        self.params = {}
        self.value = None
        self.state = "running"
        self.user_attrs = {}

    def suggest_categorical(self, name, choices):
        value = self._sampler.suggest_categorical(name, list(choices),
                                                  self._history)
        self.params[name] = value
        return value

    def suggest_float(self, name, low, high, log=False):
        if low > high:
            raise SearchError(f"empty range for {name!r}")
        value = self._sampler.suggest_float(name, low, high, log,
                                            self._history)
        self.params[name] = value
        return value

    def suggest_int(self, name, low, high):
        if low > high:
            raise SearchError(f"empty range for {name!r}")
        value = self._sampler.suggest_int(name, low, high, self._history)
        self.params[name] = value
        return value

    def set_user_attr(self, key, value):
        self.user_attrs[key] = value


class Study:
    """Maximizing (or minimizing) sequential search."""

    def __init__(self, direction="maximize", sampler=None):
        if direction not in ("maximize", "minimize"):
            raise SearchError(f"invalid direction {direction!r}")
        self.direction = direction
        self.sampler = sampler or TPESampler()
        self.trials = []
        self._asked = 0

    def _history(self):
        sign = 1.0 if self.direction == "maximize" else -1.0
        return [(t.params, sign * t.value) for t in self.trials
                if t.state == "complete" and t.value is not None]

    def ask(self):
        trial = Trial(self._asked, self.sampler, self._history())
        self._asked += 1
        return trial

    def tell(self, trial, value):
        trial.value = value
        trial.state = "complete"
        self.trials.append(trial)

    def optimize(self, objective, n_trials, callbacks=(),
                 catch_errors=False, batch_size=1, map_fn=None):
        """Run the ask-evaluate-tell loop.

        ``batch_size > 1`` asks a batch of trials against the same
        history and evaluates them together through ``map_fn`` (e.g.
        ``EvaluationEngine.map`` for a thread pool); results are told
        back in ask order, so the trial log stays deterministic for a
        deterministic objective.
        """
        if map_fn is None:
            map_fn = lambda fn, items: [fn(item) for item in items]

        def guarded(trial):
            try:
                return objective(trial), None
            except Exception as error:  # noqa: BLE001 - re-raised below
                return None, error

        remaining = n_trials
        while remaining > 0:
            batch = [self.ask()
                     for _ in range(min(batch_size, remaining))]
            remaining -= len(batch)
            outcomes = (map_fn(guarded, batch) if len(batch) > 1
                        else [guarded(batch[0])])
            # Tell every evaluated trial before honoring a stop: the
            # whole batch's objective cost is already paid, and a later
            # trial may hold the best value.
            stop = False
            for trial, (value, error) in zip(batch, outcomes):
                if error is not None:
                    if not catch_errors:
                        raise error
                    trial.state = "failed"
                    self.trials.append(trial)
                    continue
                self.tell(trial, value)
                for callback in callbacks:
                    if callback(self, trial):
                        stop = True
            if stop:
                return self
        return self

    @property
    def best_trial(self):
        complete = [t for t in self.trials if t.state == "complete"]
        if not complete:
            raise SearchError("no completed trials")
        if self.direction == "maximize":
            return max(complete, key=lambda t: t.value)
        return min(complete, key=lambda t: t.value)

    @property
    def best_value(self):
        return self.best_trial.value

    @property
    def best_params(self):
        return dict(self.best_trial.params)


def create_study(direction="maximize", sampler=None, seed=0):
    return Study(direction, sampler or TPESampler(seed=seed))
