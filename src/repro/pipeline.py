"""MLComp: the four-step methodology orchestration (paper Fig. 2).

1. Data Extraction         -> :class:`repro.profiling.DataExtractor`
2. PE model training       -> :class:`repro.pe.PerformanceEstimator`
3. Policy training (RL)    -> :class:`repro.rl.ReinforceTrainer`
4. Deployment (PSS)        -> :class:`repro.pss.PhaseSequenceSelector`

All compile->profile evaluations across the four steps flow through one
shared :class:`repro.engine.EvaluationEngine`, so repeated points (the
same workload under the same sequence, revisited module states during
RL) are computed once and the extraction loop can run on a worker pool.
"""

from repro.engine import EvaluationEngine, EvaluationCache
from repro.passes import available_phases
from repro.pe import PerformanceEstimator
from repro.profiling import DataExtractor
from repro.pss import PhaseSequenceSelector
from repro.rl import ReinforceTrainer, RewardConfig, TrainingConfig
from repro.sim import Platform
from repro.workloads import default_suite_for, load_suite


class MLComp:
    """End-to-end MLComp for one (platform, application domain) pair.

    Engine knobs: ``cache_size``/``cache_dir`` bound and persist the
    evaluation cache (``cache=False`` disables it), ``eval_mode`` picks
    the executor (``serial``/``thread``/``process``) and ``workers``
    its width.  ``farm_dir`` joins the shared compile farm at that
    directory (cross-process result store; process-pool workers compose
    through it), and ``scheduler_workers`` puts the async batch
    scheduler in front of the engine so concurrent clients coalesce
    and batch their requests.  ``eval_timeout`` puts a wall-clock
    deadline on every point, ``max_retries`` bounds transient-failure
    retries, and ``degrade=False`` pins the engine to its configured
    mode instead of stepping down when pools break repeatedly.
    """

    def __init__(self, target="x86", suite=None, phases=None,
                 measurement_seed=0, cache=True, cache_size=4096,
                 cache_dir=None, eval_mode="serial", workers=None,
                 farm_dir=None, scheduler_workers=None,
                 eval_timeout=None, max_retries=2, degrade=True):
        self.platform = Platform(target, measurement_seed)
        suite = suite or default_suite_for(target)
        self.workloads = load_suite(suite)
        self.suite = suite
        self.phases = list(phases or available_phases())
        self.engine = EvaluationEngine(
            self.platform,
            cache=(EvaluationCache(max_entries=cache_size,
                                   store_dir=cache_dir or farm_dir)
                   if cache else False),
            mode=eval_mode, workers=workers, farm_dir=farm_dir,
            scheduler_workers=scheduler_workers,
            eval_timeout=eval_timeout, max_retries=max_retries,
            degrade=degrade)
        self.dataset = None
        self.estimator = None
        self.trainer = None
        self.selector = None

    # -- step 1 ----------------------------------------------------------
    def extract_data(self, n_sequences=15, seed=0, verbose=False):
        extractor = DataExtractor(self.platform, self.workloads,
                                  verbose=verbose, engine=self.engine)
        self.dataset = extractor.extract(n_sequences=n_sequences,
                                         seed=seed)
        self._extractor = extractor
        return self.dataset

    # -- step 2 -----------------------------------------------------------
    def train_estimator(self, mode="fast", **kwargs):
        if self.dataset is None:
            self.extract_data()
        self.estimator = PerformanceEstimator().train(self.dataset,
                                                      mode=mode, **kwargs)
        return self.estimator

    # -- step 3 ------------------------------------------------------------
    def train_policy(self, config=None, reward_config=None,
                     progress=None):
        if self.estimator is None:
            self.train_estimator()
        self.trainer = ReinforceTrainer(
            self.workloads, self.platform, self.estimator, self.phases,
            config=config or TrainingConfig(),
            reward_config=reward_config or RewardConfig(),
            engine=self.engine)
        policy = self.trainer.train(progress=progress)
        self.selector = PhaseSequenceSelector(
            policy, self.trainer.encoder, self.phases,
            max_sequence_length=(config or TrainingConfig())
            .max_sequence_length * 2,
            max_inactive_length=8)
        return self.selector

    # -- step 4 -------------------------------------------------------------
    def optimize(self, module):
        """Apply the trained PSS to an IR module (in place)."""
        if self.selector is None:
            raise RuntimeError("train_policy() first")
        return self.selector.optimize(module)

    def evaluate_workload(self, workload, sequence=None):
        """Measurement of a workload under the PSS (or a fixed
        sequence).  Returns a cached :class:`repro.engine.EvalResult`."""
        if sequence is not None:
            return self.engine.evaluate(workload, sequence)
        module = workload.compile()
        self.optimize(module)
        return self.engine.profile_module(module)

    def engine_stats(self):
        """Cache hit/miss statistics across all four steps."""
        return self.engine.stats()
