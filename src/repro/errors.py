"""Exception hierarchy shared across the repro package."""


class MLCompError(Exception):
    """Base class for all errors raised by this package."""


class CompilationError(MLCompError):
    """Base class for errors raised while compiling a program."""


class LexerError(CompilationError):
    """Raised on invalid tokens in mini-C source."""

    def __init__(self, message, line=None, column=None):
        location = "" if line is None else f" at line {line}:{column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ParserError(CompilationError):
    """Raised on syntax errors in mini-C source."""

    def __init__(self, message, line=None, column=None):
        location = "" if line is None else f" at line {line}:{column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(CompilationError):
    """Raised on type or scoping errors in mini-C source."""


class VerificationError(CompilationError):
    """Raised when an IR module violates a structural invariant."""


class SimulationError(MLCompError):
    """Raised when simulated execution fails (trap, fuel exhaustion, ...)."""


class SearchError(MLCompError):
    """Raised on misuse of the heuristic search API."""


class TrainingError(MLCompError):
    """Raised when model or policy training cannot proceed."""
