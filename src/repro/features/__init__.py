"""Feature extraction for the Performance Estimator and the PSS policy."""

from repro.features.static_features import (
    STATIC_FEATURE_NAMES,
    extract_static_features,
)
from repro.features.costmodel import (
    COST_FEATURE_NAMES,
    extract_cost_features,
)
from repro.features.extractor import (
    FEATURE_NAMES,
    MACHINE_OPCODES,
    PLATFORM_FEATURE_NAMES,
    extract_features,
    extract_platform_features,
)

__all__ = [
    "STATIC_FEATURE_NAMES", "PLATFORM_FEATURE_NAMES", "FEATURE_NAMES",
    "COST_FEATURE_NAMES", "extract_cost_features",
    "MACHINE_OPCODES",
    "extract_static_features", "extract_platform_features",
    "extract_features",
]
