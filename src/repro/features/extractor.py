"""Combined feature extraction: static IR features + platform-specific
instruction-count features from generated code (paper §III-A: "Our tool
also extracts platform-specific instruction counts from generated code
for PE training").
"""

import numpy as np

from repro.features.static_features import (
    STATIC_FEATURE_NAMES,
    extract_static_features,
)

# Static machine-opcode classes counted per target.
MACHINE_OPCODES = (
    "li", "lfi", "mv", "lea", "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "sar", "shr",
    "fadd", "fsub", "fmul", "fdiv",
    "fsqrt", "fexp", "flog", "fsin", "fcos", "fabs", "fpow",
    "cvtsi2sd", "cvtsd2si", "setcc", "fsetcc", "bcc", "fbcc",
    "cmov", "ld", "st", "jmp", "call", "ret", "print",
    "memset", "memcpy", "vop", "frame_alloc",
)

PLATFORM_FEATURE_NAMES = tuple(
    [f"m_{op}" for op in MACHINE_OPCODES] +
    ["code_size_bytes", "frame_cells_total", "machine_instructions"])

from repro.features.costmodel import (  # noqa: E402 (feature group)
    COST_FEATURE_NAMES,
    extract_cost_features,
)

FEATURE_NAMES = (STATIC_FEATURE_NAMES + PLATFORM_FEATURE_NAMES
                 + COST_FEATURE_NAMES)


def extract_platform_features(program):
    """Static machine-code features of a compiled MachineProgram."""
    histogram = program.instruction_histogram()
    values = [float(histogram.get(op, 0)) for op in MACHINE_OPCODES]
    frame_cells = sum(f.frame_slots for f in program.functions.values())
    instructions = sum(f.instruction_count()
                      for f in program.functions.values())
    values.extend([float(program.code_size), float(frame_cells),
                   float(instructions)])
    return np.array(values, dtype=float)


def extract_features(module, platform=None, am=None, partial_cache=None):
    """Full PE input vector: 63 static features, plus platform features
    and static cost-model estimates when a platform is given (the PE is
    trained per platform).

    ``am``/``partial_cache`` enable function-granular reuse of the
    static third: per-function partials are cached under canonical
    function fingerprints (see
    :func:`repro.features.static_features.extract_static_features`).
    """
    static = extract_static_features(module, am=am,
                                     partial_cache=partial_cache)
    if platform is None:
        return static
    program = platform.compile(module)
    return np.concatenate([static, extract_platform_features(program),
                           extract_cost_features(module)])
