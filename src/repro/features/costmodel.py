"""Static cost-model features.

Pure static analysis (no execution): estimate each block's execution
frequency from constant loop trip counts (SCEV-style) and call-graph
fan-out, then weight instructions by coarse cost classes.  These features
give the Performance Estimator a cross-program cost scale that raw
instruction-mix counts cannot provide — trip counts, not code size,
dominate dynamic cost.
"""

import numpy as np

from repro.ir import BinaryInst, CallInst, LoadInst, LoopInfo, StoreInst
from repro.passes.loop_utils import constant_trip_count

COST_FEATURE_NAMES = (
    "est_total_work",
    "est_memory_work",
    "est_expensive_work",
    "est_float_work",
    "est_branch_work",
    "est_call_work",
)

_DEFAULT_TRIP = 8.0
_RECURSION_FACTOR = 25.0
_MAX_FREQ = 1e9

_EXPENSIVE_OPS = frozenset({"sdiv", "srem", "fdiv"})
_FLOAT_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
_EXPENSIVE_INTRINSICS = frozenset({"sqrt", "exp", "log", "sin", "cos",
                                   "pow"})


def block_frequencies(function):
    """Estimated executions of each block per function invocation."""
    info = LoopInfo(function)
    trip_of = {}
    for loop in info.loops:
        preheader = loop.preheader()
        trips = None
        if preheader is not None:
            trips, _ = constant_trip_count(loop, preheader,
                                           max_count=100000)
        trip_of[id(loop)] = float(trips) if trips is not None \
            else _DEFAULT_TRIP
    frequencies = {}
    for block in function.blocks:
        frequency = 1.0
        loop = info.loop_of(block)
        while loop is not None:
            frequency *= trip_of[id(loop)]
            loop = loop.parent
        frequencies[id(block)] = min(frequency, _MAX_FREQ)
    return frequencies


def function_frequencies(module):
    """Estimated invocations of each function (rooted at main)."""
    # Per-call-site weight: caller frequency x call site's block
    # frequency; recursion multiplies by a fixed factor.
    block_freq = {f.name: block_frequencies(f)
                  for f in module.defined_functions()}
    invocations = {f.name: 0.0 for f in module.defined_functions()}
    if "main" in invocations:
        invocations["main"] = 1.0
    # Two propagation rounds over a topological-ish order approximate
    # the call-graph closure well enough for a feature.
    for _ in range(3):
        updated = {name: (1.0 if name == "main" else 0.0)
                   for name in invocations}
        for function in module.defined_functions():
            caller_freq = invocations[function.name]
            if caller_freq <= 0:
                continue
            freqs = block_freq[function.name]
            for block in function.blocks:
                for inst in block.instructions:
                    if isinstance(inst, CallInst) and \
                            not inst.is_intrinsic():
                        weight = caller_freq * freqs[id(block)]
                        if inst.callee is function:
                            weight *= _RECURSION_FACTOR
                        name = inst.callee.name
                        if name in updated:
                            updated[name] = min(
                                updated[name] + weight, _MAX_FREQ)
        updated["main"] = 1.0
        invocations = updated
    return invocations


def extract_cost_features(module):
    """The COST_FEATURE_NAMES vector (log1p-compressed magnitudes).

    The analysis runs on a normalized clone (mem2reg + instcombine) so
    induction variables — and therefore constant trip counts — are
    visible regardless of which phases the measured module has seen; the
    module under measurement is never mutated.
    """
    from repro.ir.cloner import clone_module
    from repro.passes import PassManager

    # mem2reg+instcombine only: enough to expose induction variables
    # without erasing the cost differences between measured variants
    # (stronger normalization was measurably worse).
    module = clone_module(module)
    PassManager().run(module, ["mem2reg", "instcombine"])
    totals = dict.fromkeys(COST_FEATURE_NAMES, 0.0)
    invocations = function_frequencies(module)
    for function in module.defined_functions():
        call_freq = invocations.get(function.name, 0.0)
        if call_freq <= 0:
            continue
        frequencies = block_frequencies(function)
        for block in function.blocks:
            weight = min(call_freq * frequencies[id(block)], _MAX_FREQ)
            for inst in block.instructions:
                totals["est_total_work"] += weight
                if isinstance(inst, (LoadInst, StoreInst)):
                    totals["est_memory_work"] += weight
                elif isinstance(inst, BinaryInst):
                    if inst.opcode in _EXPENSIVE_OPS:
                        totals["est_expensive_work"] += weight
                    if inst.opcode in _FLOAT_OPS:
                        totals["est_float_work"] += weight
                elif isinstance(inst, CallInst):
                    totals["est_call_work"] += weight
                    if inst.is_intrinsic() and \
                            inst.callee in _EXPENSIVE_INTRINSICS:
                        totals["est_expensive_work"] += weight * 10.0
                elif inst.is_terminator():
                    totals["est_branch_work"] += weight
    # Compress to log scale: downstream models work in relative terms.
    return np.array([np.log1p(totals[name])
                     for name in COST_FEATURE_NAMES])
