"""Static IR feature extraction.

63 Milepost-GCC-style code features (paper §III-A and §IV: "The 63 code
features that our static analysis obtains"): instruction mix, CFG shape,
loop structure, call-graph shape, and constant usage.
"""

import numpy as np

from repro.ir import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    ConstantFloat,
    ConstantInt,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
)
_OPCODES = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor",
            "shl", "ashr", "lshr", "fadd", "fsub", "fmul", "fdiv")

_MATH_INTRINSICS = frozenset({"sqrt", "exp", "log", "sin", "cos", "pow",
                              "fabs"})

STATIC_FEATURE_NAMES = tuple(
    [f"n_{op}" for op in _OPCODES] +
    ["n_icmp", "n_fcmp", "n_load", "n_store", "n_gep", "n_phi",
     "n_select", "n_call", "n_cast", "n_alloca",
     "n_blocks", "n_instructions", "n_functions", "n_cfg_edges",
     "avg_block_size", "max_block_size", "max_blocks_per_function",
     "n_loops", "max_loop_depth", "avg_loop_depth",
     "n_const_trip_loops", "n_innermost_loops", "n_back_edges",
     "n_cond_branches", "n_uncond_branches", "n_returns",
     "branch_density", "mem_density", "float_fraction", "int_fraction",
     "n_const_operands", "const_operand_fraction", "n_distinct_consts",
     "n_intrinsic_calls", "n_math_calls", "n_print_calls",
     "phi_density", "max_phis_per_block", "n_args_total",
     "n_globals", "global_array_cells", "n_recursive_functions",
     "n_callgraph_edges", "max_call_chain", "n_const_index_geps",
     "dom_tree_height", "max_rpo_length", "n_block_mem_intrinsics"])

assert len(STATIC_FEATURE_NAMES) == 63, len(STATIC_FEATURE_NAMES)


def extract_static_features(module, am=None, partial_cache=None,
                            vector_cache=None):
    """Return the 63-dimensional static feature vector of a module.

    The vector is composed from per-function partial aggregates.  With an
    analysis manager *and* a ``partial_cache`` dict, each function's
    partial is cached under its canonical fingerprint, so repeated
    extraction over a module where only some functions changed (the PSS
    deployment loop, RL training steps) only re-analyzes the changed
    functions.

    ``vector_cache`` (a dict, also requires ``am``) additionally
    memoizes the *combined* vector under the module's content hash:
    re-extracting after an inactive phase — the dominant case in the
    deployment loop's activity probing — costs one composed fingerprint
    and a dict hit.  Callers must treat returned vectors as immutable.
    """
    key = None
    if vector_cache is not None and am is not None and am.enabled:
        from repro.ir.printer import module_fingerprint
        key = module_fingerprint(module, am)
        cached = vector_cache.get(key)
        if cached is not None:
            return cached
    partials = []
    for function in module.defined_functions():
        partial_key = None
        if partial_cache is not None and am is not None:
            partial_key = am.fingerprint(function)
            cached = partial_cache.get(partial_key)
            if cached is not None:
                partials.append(cached)
                continue
        partial = _function_partial(function, am)
        if partial_key is not None:
            partial_cache[partial_key] = partial
        partials.append(partial)
    vector = _combine_partials(module, partials)
    if key is not None:
        if len(vector_cache) > 8192:
            vector_cache.clear()
        vector_cache[key] = vector
    return vector


#: Feature names a function contributes to by summation.
_SUMMED = tuple(
    [f"n_{op}" for op in _OPCODES] +
    ["n_icmp", "n_fcmp", "n_load", "n_store", "n_gep", "n_phi",
     "n_select", "n_call", "n_cast", "n_alloca", "n_cond_branches",
     "n_uncond_branches", "n_returns", "n_intrinsic_calls",
     "n_math_calls", "n_print_calls", "n_block_mem_intrinsics",
     "n_const_index_geps", "n_args_total", "n_cfg_edges", "n_loops",
     "n_innermost_loops", "n_const_trip_loops", "n_back_edges"])

#: Feature names combined by maximum over functions.
_MAXED = ("max_blocks_per_function", "max_phis_per_block",
          "max_loop_depth", "avg_loop_depth", "dom_tree_height",
          "max_rpo_length")


def _function_partial(function, am=None):
    """One function's contribution to the static feature vector.

    Loop and dominator analyses come from (and seed) the analysis
    manager when one is given, so a changed function is analyzed once
    for features and the next pass reuses the same structures.
    """
    sums = dict.fromkeys(_SUMMED, 0.0)
    maxes = dict.fromkeys(_MAXED, 0.0)
    opcode_counts = {op: 0 for op in _OPCODES}
    block_sizes = []
    distinct_constants = set()
    const_operands = 0
    total_operands = 0
    float_ops = 0
    int_ops = 0
    call_edges = set()
    recursive = False

    maxes["max_blocks_per_function"] = float(len(function.blocks))
    sums["n_args_total"] += len(function.args)
    # Exact-class dispatch over the raw operand storage: this walk runs
    # for every changed function on every deployment-loop step, and the
    # isinstance chain + operand-tuple materialization dominated it.
    for block in function.blocks:
        block_sizes.append(len(block.instructions))
        phis_here = 0
        for inst in block.instructions:
            for op in inst._operands:
                total_operands += 1
                opc = op.__class__
                if opc is ConstantInt:
                    const_operands += 1
                    distinct_constants.add(("i", op.value))
                elif opc is ConstantFloat:
                    const_operands += 1
                    distinct_constants.add(("f", op.value))
            cls = inst.__class__
            if cls is BinaryInst:
                opcode = inst.opcode
                opcode_counts[opcode] += 1
                if opcode[0] == "f":
                    float_ops += 1
                else:
                    int_ops += 1
            elif cls is ICmpInst:
                sums["n_icmp"] += 1
            elif cls is FCmpInst:
                sums["n_fcmp"] += 1
            elif cls is LoadInst:
                sums["n_load"] += 1
            elif cls is StoreInst:
                sums["n_store"] += 1
            elif cls is GEPInst:
                sums["n_gep"] += 1
                if inst._operands[1].__class__ is ConstantInt:
                    sums["n_const_index_geps"] += 1
            elif cls is PhiInst:
                sums["n_phi"] += 1
                phis_here += 1
            elif cls is SelectInst:
                sums["n_select"] += 1
            elif cls is CallInst:
                sums["n_call"] += 1
                if inst.is_intrinsic():
                    sums["n_intrinsic_calls"] += 1
                    if inst.callee in _MATH_INTRINSICS:
                        sums["n_math_calls"] += 1
                    elif inst.callee in ("print_int", "print_float"):
                        sums["n_print_calls"] += 1
                    elif inst.callee in ("memset", "memcpy"):
                        sums["n_block_mem_intrinsics"] += 1
                else:
                    call_edges.add((function.name, inst.callee.name))
                    if inst.callee is function:
                        recursive = True
            elif cls is CastInst:
                sums["n_cast"] += 1
            elif cls is AllocaInst:
                sums["n_alloca"] += 1
            elif cls is CondBranchInst:
                sums["n_cond_branches"] += 1
            elif cls is BranchInst:
                sums["n_uncond_branches"] += 1
            elif cls is RetInst:
                sums["n_returns"] += 1
        if phis_here > maxes["max_phis_per_block"]:
            maxes["max_phis_per_block"] = float(phis_here)
    sums["n_cfg_edges"] += sum(len(b.successors())
                               for b in function.blocks)
    # Loops.
    from repro.passes.analysis import domtree_of
    from repro.passes.loop_utils import loops_of
    info = loops_of(function, am)
    sums["n_loops"] += len(info.loops)
    sums["n_innermost_loops"] += len(info.innermost_loops())
    maxes["max_loop_depth"] = float(info.max_depth())
    depths = [loop.depth for loop in info.loops]
    if depths:
        maxes["avg_loop_depth"] = float(np.mean(depths))
    from repro.passes.analysis import loopivs_of
    ivs = loopivs_of(function, am)
    for loop in info.loops:
        sums["n_back_edges"] += len(loop.latches())
        preheader = loop.preheader()
        if preheader is not None:
            trip, _ = ivs.trip_count(loop, preheader)
            if trip is not None:
                sums["n_const_trip_loops"] += 1
    # Dominator tree height, RPO length (the dominator tree already
    # carries the reverse postorder).
    dom = domtree_of(function, am)
    maxes["dom_tree_height"] = float(_tree_height(dom))
    maxes["max_rpo_length"] = float(len(dom.rpo))

    for op in _OPCODES:
        sums[f"n_{op}"] = float(opcode_counts[op])
    return {
        "sums": sums,
        "maxes": maxes,
        "block_sizes": block_sizes,
        "distinct_constants": distinct_constants,
        "const_operands": const_operands,
        "total_operands": total_operands,
        "float_ops": float_ops,
        "int_ops": int_ops,
        "call_edges": call_edges,
        "recursive": recursive,
    }


def _combine_partials(module, partials):
    counts = {name: 0.0 for name in STATIC_FEATURE_NAMES}
    counts["n_functions"] = float(len(partials))
    counts["n_globals"] = float(len(module.globals))
    counts["global_array_cells"] = float(sum(
        gv.value_type.size_cells() for gv in module.globals.values()
        if gv.value_type.is_array()))

    block_sizes = []
    distinct_constants = set()
    call_edges = set()
    recursive = 0
    const_operands = 0
    total_operands = 0
    float_ops = 0
    int_ops = 0
    for partial in partials:
        for name, value in partial["sums"].items():
            counts[name] += value
        for name, value in partial["maxes"].items():
            counts[name] = max(counts[name], value)
        block_sizes.extend(partial["block_sizes"])
        distinct_constants |= partial["distinct_constants"]
        call_edges |= partial["call_edges"]
        recursive += int(partial["recursive"])
        const_operands += partial["const_operands"]
        total_operands += partial["total_operands"]
        float_ops += partial["float_ops"]
        int_ops += partial["int_ops"]

    total_instructions = sum(block_sizes)
    counts["n_blocks"] = float(len(block_sizes))
    counts["n_instructions"] = float(total_instructions)
    counts["avg_block_size"] = float(np.mean(block_sizes)) if block_sizes \
        else 0.0
    counts["max_block_size"] = float(max(block_sizes)) if block_sizes \
        else 0.0
    counts["branch_density"] = (counts["n_cond_branches"] /
                                max(total_instructions, 1))
    mem_ops = counts["n_load"] + counts["n_store"]
    counts["mem_density"] = mem_ops / max(total_instructions, 1)
    arith = float_ops + int_ops
    counts["float_fraction"] = float_ops / max(arith, 1)
    counts["int_fraction"] = int_ops / max(arith, 1)
    counts["n_const_operands"] = float(const_operands)
    counts["const_operand_fraction"] = const_operands / \
        max(total_operands, 1)
    counts["n_distinct_consts"] = float(len(distinct_constants))
    counts["n_recursive_functions"] = float(recursive)
    counts["n_callgraph_edges"] = float(len(call_edges))
    counts["max_call_chain"] = float(_longest_chain(call_edges))
    counts["phi_density"] = counts["n_phi"] / max(total_instructions, 1)

    return np.array([counts[name] for name in STATIC_FEATURE_NAMES],
                    dtype=float)


def _tree_height(dom):
    heights = {}

    def height(block):
        if block in heights:
            return heights[block]
        children = dom.children.get(block, [])
        result = 1 + max((height(c) for c in children), default=0)
        heights[block] = result
        return result

    if not dom.rpo:
        return 0
    return height(dom.rpo[0])


def _longest_chain(edges, cap=16):
    """Longest path in the call graph, ignoring cycles beyond ``cap``."""
    adjacency = {}
    for caller, callee in edges:
        adjacency.setdefault(caller, []).append(callee)

    best = 0
    for start in adjacency:
        stack = [(start, 1, frozenset([start]))]
        while stack:
            node, length, seen = stack.pop()
            best = max(best, length)
            if length >= cap:
                continue
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    stack.append((nxt, length + 1, seen | {nxt}))
    return best
