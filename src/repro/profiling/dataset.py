"""Dataset container for PE training (paper Fig. 2, box 1 output)."""

import csv
import numpy as np

from repro.features import FEATURE_NAMES


class Dataset:
    """Feature matrix + per-metric target vectors + provenance rows."""

    METRICS = ("exec_time_us", "energy_uj", "instructions", "avg_power_w")

    def __init__(self, feature_names=FEATURE_NAMES):
        self.feature_names = tuple(feature_names)
        self.rows = []       # dict per data point
        self._X = []
        self._targets = {metric: [] for metric in self.METRICS}

    def add(self, features, metrics, workload_name, sequence,
            code_size=None):
        features = np.asarray(features, dtype=float)
        if len(features) != len(self.feature_names):
            raise ValueError(
                f"feature vector length {len(features)} != "
                f"{len(self.feature_names)}")
        self._X.append(features)
        for metric in self.METRICS:
            self._targets[metric].append(float(metrics[metric]))
        self.rows.append({
            "workload": workload_name,
            "sequence": tuple(sequence),
            "code_size": code_size,
        })

    def __len__(self):
        return len(self._X)

    @property
    def X(self):
        return np.asarray(self._X, dtype=float)

    def y(self, metric):
        return np.asarray(self._targets[metric], dtype=float)

    def targets(self):
        return {metric: self.y(metric) for metric in self.METRICS}

    def split(self, test_fraction=0.25, seed=0):
        """Random train/test index split."""
        n = len(self)
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_test = max(1, int(n * test_fraction))
        return order[n_test:], order[:n_test]

    # -- persistence --------------------------------------------------------
    def save_npz(self, path):
        np.savez_compressed(
            path,
            X=self.X,
            feature_names=np.array(self.feature_names),
            workloads=np.array([r["workload"] for r in self.rows]),
            sequences=np.array(["|".join(r["sequence"])
                                for r in self.rows]),
            **{f"y_{m}": self.y(m) for m in self.METRICS},
        )

    @classmethod
    def load_npz(cls, path):
        data = np.load(path, allow_pickle=False)
        dataset = cls(tuple(str(n) for n in data["feature_names"]))
        X = data["X"]
        ys = {m: data[f"y_{m}"] for m in cls.METRICS}
        workloads = [str(w) for w in data["workloads"]]
        sequences = [tuple(s.split("|")) if s else ()
                     for s in (str(x) for x in data["sequences"])]
        for i in range(X.shape[0]):
            dataset.add(X[i], {m: ys[m][i] for m in cls.METRICS},
                        workloads[i], sequences[i])
        return dataset

    def save_csv(self, path):
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["workload", "sequence",
                             *self.feature_names, *self.METRICS])
            X = self.X
            for i, row in enumerate(self.rows):
                writer.writerow(
                    [row["workload"], "|".join(row["sequence"]),
                     *X[i].tolist(),
                     *[self.y(m)[i] for m in self.METRICS]])

    def __repr__(self):
        return (f"<Dataset {len(self)} points x "
                f"{len(self.feature_names)} features>")
