"""Data Extraction (paper Fig. 2, box 1).

For each (workload, phase sequence) pair: optimize, extract static +
platform features, profile on the target platform, and record the dynamic
features into a :class:`Dataset`.

All evaluations route through an :class:`repro.engine.EvaluationEngine`,
so repeated points (re-extractions, overlapping sequence sets, other
consumers sharing the engine) are served from the evaluation cache, and
cold points can run on a thread/process pool.
"""

import time

from repro.engine import EvaluationEngine
from repro.profiling.dataset import Dataset
from repro.profiling.permutations import extraction_sequences


class DataExtractor:
    def __init__(self, platform, workloads, verbose=False, engine=None):
        self.platform = platform
        self.workloads = list(workloads)
        self.verbose = verbose
        self.engine = engine or EvaluationEngine(platform)
        self.failures = []
        self.extraction_seconds = 0.0
        self.profile_seconds = 0.0

    def extract(self, n_sequences=20, seed=0, sequences=None):
        """Build a dataset of ~len(workloads) * n_sequences points.

        The paper's datasets hold 200–600 points; 30 workloads x 10–20
        sequences lands in the same range.
        """
        started = time.perf_counter()
        if sequences is None:
            sequences = extraction_sequences(n_sequences, seed=seed)
        points = [(workload, sequence) for workload in self.workloads
                  for sequence in sequences]
        outcomes = self.engine.evaluate_batch(points, on_error="collect")
        dataset = Dataset()
        for (workload, sequence), outcome in zip(points, outcomes):
            if outcome.failed:
                self.failures.append((workload.name, tuple(sequence),
                                      outcome.error))
                continue
            if not outcome.cached:
                self.profile_seconds += outcome.profile_seconds
            dataset.add(outcome.features, outcome.metrics(),
                        workload.name, sequence,
                        code_size=outcome.code_size)
            if self.verbose:
                hit = "cache" if outcome.cached else "fresh"
                print(f"  [{len(dataset):4d}] {workload.name:16s} "
                      f"|seq|={len(sequence):2d} {hit} "
                      f"t={outcome.metrics()['exec_time_us']:9.2f}us")
        self.extraction_seconds = time.perf_counter() - started
        return dataset
