"""Data Extraction (paper Fig. 2, box 1).

For each (workload, phase sequence) pair: optimize, extract static +
platform features, profile on the target platform, and record the dynamic
features into a :class:`Dataset`.
"""

import time

from repro.features import extract_features
from repro.passes import PassManager
from repro.profiling.dataset import Dataset
from repro.profiling.permutations import extraction_sequences


class DataExtractor:
    def __init__(self, platform, workloads, verbose=False):
        self.platform = platform
        self.workloads = list(workloads)
        self.verbose = verbose
        self.failures = []
        self.extraction_seconds = 0.0
        self.profile_seconds = 0.0

    def extract(self, n_sequences=20, seed=0, sequences=None):
        """Build a dataset of ~len(workloads) * n_sequences points.

        The paper's datasets hold 200–600 points; 30 workloads x 10–20
        sequences lands in the same range.
        """
        started = time.perf_counter()
        if sequences is None:
            sequences = extraction_sequences(n_sequences, seed=seed)
        dataset = Dataset()
        for workload in self.workloads:
            for sequence in sequences:
                try:
                    self._one_point(dataset, workload, sequence)
                except Exception as error:  # pragma: no cover - guard
                    self.failures.append((workload.name, sequence,
                                          repr(error)))
        self.extraction_seconds = time.perf_counter() - started
        return dataset

    def _one_point(self, dataset, workload, sequence):
        module = workload.compile()
        PassManager().run(module, sequence)
        features = extract_features(module, self.platform)
        t0 = time.perf_counter()
        measurement = self.platform.profile(module)
        self.profile_seconds += time.perf_counter() - t0
        dataset.add(features, measurement.metrics(), workload.name,
                    sequence, code_size=measurement.code_size)
        if self.verbose:
            print(f"  [{len(dataset):4d}] {workload.name:16s} "
                  f"|seq|={len(sequence):2d} "
                  f"t={measurement.metrics()['exec_time_us']:9.2f}us")
