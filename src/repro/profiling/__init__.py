"""Profiling and Data Extraction (paper Fig. 2, box 1)."""

from repro.profiling.dataset import Dataset
from repro.profiling.extractor import DataExtractor
from repro.profiling.permutations import (
    extraction_sequences,
    random_phase_sequences,
    standard_sequences,
)

__all__ = [
    "Dataset", "DataExtractor",
    "random_phase_sequences", "standard_sequences",
    "extraction_sequences",
]
