"""Phase-sequence generators for Data Extraction (paper §III-A:
"exploring different permutations of optimization phases")."""

import numpy as np

from repro.passes import available_phases

# Phases whose effects open up the rest (seeded into random sequences so
# the dataset covers the interesting region of the phase space).
_ENABLERS = ("mem2reg", "simplifycfg", "instcombine")


def random_phase_sequences(count, seed=0, min_length=2, max_length=12,
                           phases=None):
    """Random phase sequences, biased to include enabling phases early."""
    rng = np.random.default_rng(seed)
    pool = list(phases if phases is not None else available_phases())
    sequences = []
    for _ in range(count):
        length = int(rng.integers(min_length, max_length + 1))
        sequence = []
        if rng.random() < 0.7:
            sequence.append("mem2reg")
        while len(sequence) < length:
            if rng.random() < 0.15:
                sequence.append(str(rng.choice(_ENABLERS)))
            else:
                sequence.append(str(rng.choice(pool)))
        sequences.append(tuple(sequence[:length]))
    return sequences


def standard_sequences():
    """The fixed -O pipelines plus the empty sequence."""
    from repro.baselines import STANDARD_LEVELS
    result = [()]
    result.extend(tuple(seq) for seq in STANDARD_LEVELS.values())
    return result


def extraction_sequences(count, seed=0, phases=None):
    """Standard pipelines + random permutations, deduplicated."""
    sequences = standard_sequences()
    sequences.extend(random_phase_sequences(count, seed=seed,
                                            phases=phases))
    seen = set()
    unique = []
    for sequence in sequences:
        if sequence not in seen:
            seen.add(sequence)
            unique.append(sequence)
    return unique
