"""Analytical pipeline timing model.

A scoreboard model in the style of interval analysis: instructions issue
at ``1/issue_width`` cycles apiece, stall on operands produced by long-
latency instructions, and pay penalties for branch mispredictions (2-bit
predictor), D-cache misses (set-associative LRU), and I-cache misses.
The x86 target's width-4 configuration approximates an out-of-order core;
the RISC-V target is a scalar in-order embedded core.
"""

from repro.backend.mir import PhysReg


class BranchPredictor:
    """2-bit saturating counters indexed by branch address."""

    def __init__(self, entries=256):
        self.entries = entries
        self.table = {}

    def predict_and_update(self, address, taken):
        index = (address >> 1) % self.entries
        counter = self.table.get(index, 2)  # weakly taken
        predicted = counter >= 2
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self.table[index] = counter
        return predicted == taken


class Cache:
    """Set-associative LRU cache over cell (or byte) addresses."""

    def __init__(self, line, sets, ways):
        self.line = line
        self.sets = sets
        self.ways = ways
        self.data = [dict() for _ in range(sets)]  # tag -> lru tick
        self.tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address):
        """Returns True on hit."""
        self.tick += 1
        line_address = address // self.line
        set_index = line_address % self.sets
        tag = line_address // self.sets
        ways = self.data[set_index]
        if tag in ways:
            ways[tag] = self.tick
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[tag] = self.tick
        return False


class PipelineModel:
    """Accumulates cycles from the simulator's instruction stream."""

    def __init__(self, isa):
        self.isa = isa
        self.issue = 0.0                  # next issue time (cycles)
        self.ready = {}                   # reg name -> ready time
        self.predictor = BranchPredictor()
        self.dcache = Cache(isa.dcache["line"], isa.dcache["sets"],
                            isa.dcache["ways"])
        self.icache = Cache(isa.icache["line_bytes"], isa.icache["lines"],
                            1 if isa.icache["lines"] < 128 else 2)
        self.mispredicts = 0
        self.stall_cycles = 0.0

    # -- helpers -----------------------------------------------------------
    def _fetch(self, instr):
        if not self.icache.access(instr.address):
            self.issue += self.isa.icache["miss"]

    def _operand_ready(self, instr):
        latest = 0.0
        for operand in instr.operands:
            if isinstance(operand, PhysReg):
                latest = max(latest, self.ready.get(operand.name, 0.0))
        if instr.lanes:
            for _, a, b in instr.lanes:
                latest = max(latest, self.ready.get(a.name, 0.0),
                             self.ready.get(b.name, 0.0))
        return latest

    def _issue_instr(self, instr, latency):
        self._fetch(instr)
        start = max(self.issue, self._operand_ready(instr))
        self.stall_cycles += start - self.issue
        self.issue = start + 1.0 / self.isa.issue_width
        finish = start + latency
        # Mark destinations.
        dst = instr.operands[0] if instr.operands else None
        if isinstance(dst, PhysReg):
            self.ready[dst.name] = finish
        if instr.lanes:
            for lane_dst, _, _ in instr.lanes:
                self.ready[lane_dst.name] = finish
        return start

    # -- event hooks (called by the simulator) -------------------------------
    def on_simple(self, instr):
        self._issue_instr(instr, self.isa.latency(instr))

    def on_jump(self, instr):
        self._issue_instr(instr, 1)

    def on_branch(self, instr, taken):
        self._issue_instr(instr, 1)
        if not self.predictor.predict_and_update(instr.address, taken):
            self.mispredicts += 1
            self.issue += self.isa.branch_mispredict

    def on_call(self, instr):
        self._issue_instr(instr, 1)
        self.issue += self.isa.call_overhead

    def on_load(self, instr, address):
        hit = self.dcache.access(address)
        latency = self.isa.dcache["hit"] if hit else self.isa.dcache["miss"]
        self._issue_instr(instr, latency + self.isa.latency(instr) - 1)

    def on_store(self, instr, address):
        # Stores retire through a write buffer: the miss penalty is mostly
        # hidden, charge a fraction.
        hit = self.dcache.access(address)
        extra = 0 if hit else self.isa.dcache["miss"] * 0.25
        self._issue_instr(instr, 1)
        self.issue += extra

    def on_block_op(self, instr, count):
        self._issue_instr(instr, 1)
        # Block ops stream through memory: ~2 cells/cycle on the wide
        # target, 1 cell per 2 cycles on the embedded one.
        per_cell = 0.5 if self.isa.issue_width >= 4 else 2.0
        self.issue += count * per_cell
        for i in range(0, count, self.dcache.line):
            self.dcache.access(instr.address + i)

    # -- results ---------------------------------------------------------------
    def cycles(self):
        return self.issue

    def seconds(self):
        return self.issue / (self.isa.frequency_ghz * 1e9)
