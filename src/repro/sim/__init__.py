"""Platform simulation: machine-code execution, timing, energy, RAPL."""

from repro.sim.energy import EnergyModel, RaplCounter
from repro.sim.machine import MachineResult, Simulator
from repro.sim.pipeline import BranchPredictor, Cache, PipelineModel
from repro.sim.platform import (
    DEFAULT_SIM_ENGINE,
    Measurement,
    Platform,
    default_platforms,
)
from repro.sim.tape import (
    TapeSimulator,
    clear_tape_cache,
    program_fingerprint,
    tape_cache_stats,
)

__all__ = [
    "Simulator", "MachineResult", "TapeSimulator",
    "PipelineModel", "BranchPredictor", "Cache",
    "EnergyModel", "RaplCounter",
    "Platform", "Measurement", "default_platforms",
    "DEFAULT_SIM_ENGINE",
    "program_fingerprint", "tape_cache_stats", "clear_tape_cache",
]
