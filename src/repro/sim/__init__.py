"""Platform simulation: machine-code execution, timing, energy, RAPL."""

from repro.sim.energy import EnergyModel, RaplCounter
from repro.sim.machine import MachineResult, Simulator
from repro.sim.pipeline import BranchPredictor, Cache, PipelineModel
from repro.sim.platform import Measurement, Platform, default_platforms

__all__ = [
    "Simulator", "MachineResult",
    "PipelineModel", "BranchPredictor", "Cache",
    "EnergyModel", "RaplCounter",
    "Platform", "Measurement", "default_platforms",
]
