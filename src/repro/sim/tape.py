"""Tape-compiled machine simulator: the profile hot path.

The seed :class:`~repro.sim.machine.Simulator` re-decodes every
instruction on every execution — isinstance-chains over operand
classes, dict lookups for registers, and one Python-level
``PipelineModel`` hook call per instruction.  This module compiles a
:class:`MachineProgram` **once** into a flat register-machine tape:

- Operands are pre-resolved to dense register-file indices, frame-slot
  offsets, and literal constants, so executing an instruction is a few
  list subscripts instead of an isinstance chain.
- Each basic block is split at control transfers (``bcc``/``fbcc``/
  ``call``/``jmp``/``ret``) into *segments* — straight-line runs in
  which every instruction executes exactly once.  A segment becomes one
  generated Python function (a superinstruction): fuel accounting and
  the dynamic histogram are batched per segment, and the pipeline
  model's scoreboard update is inlined per instruction with
  compile-time constants (latencies, issue width, icache set/tag).
- I-cache accesses are coalesced per cache line *run* (consecutive
  instructions on one line hit by construction), the 2-bit branch
  predictor is inlined per branch site, and D-cache accesses go through
  the real :class:`~repro.sim.pipeline.Cache` object so its LRU state
  stays bit-identical with the seed simulator.

Timing replication is exact, quirks included: ``operand_ready`` takes
the destination register into account, branches and stores mark their
*first source* operand ready (seed marks ``operands[0]``), and block
ops touch the D-cache at the instruction's *code* address.  The energy
model sums the dynamic histogram in insertion order, so segments update
the histogram in first-occurrence order, which reproduces the seed's
per-instruction insertion order.

Compiled tapes are content-addressed by a program fingerprint and kept
in a module-level LRU cache (one entry per (program, ISA, timed) —
the same memo discipline as the pass-pipeline and evaluation caches),
so a module profiled by any client never re-decodes.

All value semantics come from :mod:`repro.ir.arith` — the tape engine
is generated against the same exact 64-bit arithmetic the interpreter
and the seed simulator execute.

Divergence on *failing* runs only: fuel exhaustion and traps are
checked per segment, so a run that raises ``SimulationError`` may stop
with slightly different partial counters than the seed.  Successful
runs are bit-identical in observables, instruction counts, cycles,
cache/predictor state, and histogram order (the differential tests in
``tests/sim/test_tape.py`` check exactly this).
"""

import hashlib
import threading
import time
from types import SimpleNamespace

from repro.backend.mir import FImm, GlobalRef, Imm, PhysReg, StackSlot
from repro.errors import SimulationError
from repro.ir import arith
from repro.ir.intrinsics import evaluate_float_intrinsic
from repro.sim.machine import _STACK_BASE, MachineResult

_SPLIT = frozenset({"bcc", "fbcc", "call", "jmp", "ret"})

_ICMP_PY = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
            "sgt": ">", "sge": ">="}
_FCMP_PY = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=",
            "ogt": ">", "oge": ">="}

_INT_OPS = {"add": "+", "sub": "-", "mul": "*", "and": "&",
            "or": "|", "xor": "^"}
_FLOAT_OPS = {"fadd": "+", "fsub": "-", "fmul": "*"}
_FLOAT_UNARY = {"fsqrt": "sqrt", "fexp": "exp", "flog": "log",
                "fsin": "sin", "fcos": "cos", "fabs": "fabs"}

_MASK_LIT = "0xffffffffffffffff"
_HALF_LIT = "0x8000000000000000"
_TWO64_LIT = "0x10000000000000000"


# -- content addressing ------------------------------------------------------

def _operand_key(operand):
    if isinstance(operand, str):
        return f"s:{operand}"
    return repr(operand)


def _instr_key(instr):
    key = (f"{instr.opcode}|{instr.pred or ''}|{instr.address}|"
           + ",".join(_operand_key(o) for o in instr.operands))
    if instr.lanes:
        key += "|" + ";".join(f"{d.name}:{a.name}:{b.name}"
                              for d, a, b in instr.lanes)
    return key


def program_fingerprint(program):
    """Content hash of everything the tape compiler bakes into code."""
    parts = [program.target_name]
    for name, (address, cells) in sorted(program.global_layout.items()):
        parts.append(f"g:{name}:{address}:{cells}")
    for fname, mfunc in program.functions.items():
        parts.append(f"f:{fname}:{mfunc.frame_slots}")
        for block in mfunc.blocks:
            parts.append(f"b:{block.label}")
            parts.extend(_instr_key(i) for i in block.instructions)
    digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


# -- tape cache --------------------------------------------------------------

_CACHE_LOCK = threading.Lock()
_TAPE_CACHE = {}       # (fingerprint, isa, timed) -> _CompiledTape
_CACHE_CAPACITY = 128
_STATS = {"hits": 0, "misses": 0, "compile_seconds": 0.0}


def tape_cache_stats():
    """Cache statistics for engine reporting (per-process)."""
    with _CACHE_LOCK:
        stats = dict(_STATS)
        stats["entries"] = len(_TAPE_CACHE)
        total = stats["hits"] + stats["misses"]
        stats["hit_rate"] = (  # a cache metric, not an IR value
            stats["hits"] / total if total else 0.0  # replint: disable=R003
        )
    return stats


def clear_tape_cache():
    with _CACHE_LOCK:
        _TAPE_CACHE.clear()
        _STATS.update(hits=0, misses=0, compile_seconds=0.0)


def _get_tape(program, isa, timed):
    key = (program_fingerprint(program), isa.name, bool(timed))
    with _CACHE_LOCK:
        tape = _TAPE_CACHE.get(key)
        if tape is not None:
            _STATS["hits"] += 1
            _TAPE_CACHE[key] = _TAPE_CACHE.pop(key)  # LRU refresh
            return tape
    started = time.perf_counter()
    tape = _TapeCompiler(program, isa, timed).compile()
    elapsed = time.perf_counter() - started
    with _CACHE_LOCK:
        _STATS["misses"] += 1
        _STATS["compile_seconds"] += elapsed
        _TAPE_CACHE[key] = tape
        while len(_TAPE_CACHE) > _CACHE_CAPACITY:
            _TAPE_CACHE.pop(next(iter(_TAPE_CACHE)))
    return tape


class _CompiledTape:
    """A compiled program: the ``build`` factory plus dispatch metadata."""

    __slots__ = ("build", "entries", "calls", "consts", "reg_names",
                 "n_int", "ret_index", "timed", "source")

    def __init__(self, build, entries, calls, consts, reg_names, n_int,
                 ret_index, timed, source):
        self.build = build
        self.entries = entries      # function name -> (entry seg, slots)
        self.calls = calls          # k -> (callee seg, slots, cont seg)
        self.consts = consts
        self.reg_names = reg_names
        self.n_int = n_int
        self.ret_index = ret_index
        self.timed = timed
        self.source = source


# -- compiler ----------------------------------------------------------------

class _TapeCompiler:
    def __init__(self, program, isa, timed):
        self.program = program
        self.isa = isa
        self.timed = timed
        regs = isa.int_regs + isa.float_regs
        self.reg_names = tuple(r.name for r in regs)
        self.reg_index = {name: i for i, name in enumerate(self.reg_names)}
        self.n_int = len(isa.int_regs)
        self.consts = []
        self._const_index = {}
        self.calls = []
        # Timing constants baked into the generated code.  Cycle costs
        # are host floats, not simulated IR values.
        self.INV_W = 1.0 / isa.issue_width  # replint: disable=R003
        self.ILINE = isa.icache["line_bytes"]
        self.ISETS = isa.icache["lines"]
        self.IWAYS = 1 if isa.icache["lines"] < 128 else 2
        self.ICMISS = isa.icache["miss"]
        self.MISPRED = isa.branch_mispredict
        self.CALLOVH = isa.call_overhead
        ld_lat = isa.latency_table.get("ld", 1)
        self.LDHIT = isa.dcache["hit"] + ld_lat - 1
        self.LDMISS = isa.dcache["miss"] + ld_lat - 1
        self.ST_EXTRA = isa.dcache["miss"] * 0.25
        self.PER_CELL = 0.5 if isa.issue_width >= 4 else 2.0
        self.DLINE = isa.dcache["line"]
        # Per-segment icache line-run state.
        self._line = None
        self._tag = None
        self._run = 0

    # -- operand rendering --------------------------------------------------
    def _const(self, value):
        key = (type(value).__name__, repr(value))
        index = self._const_index.get(key)
        if index is None:
            index = len(self.consts)
            self.consts.append(value)
            self._const_index[key] = index
        return index

    def _read(self, operand):
        if isinstance(operand, PhysReg):
            return f"r[{self.reg_index[operand.name]}]"
        if isinstance(operand, Imm):
            return repr(operand.value)
        if isinstance(operand, FImm):
            return f"K[{self._const(operand.value)}]"
        if isinstance(operand, GlobalRef):
            return repr(self.program.global_layout[operand.name][0])
        if isinstance(operand, StackSlot):
            return f"(fb + {operand.index})"
        raise SimulationError(f"cannot compile operand {operand!r}")

    def _lat(self, opcode):
        return self.isa.latency_table.get(opcode, 1)

    @staticmethod
    def _operand_regs(instr, reg_index):
        seen = []
        for operand in instr.operands:
            if isinstance(operand, PhysReg):
                index = reg_index[operand.name]
                if index not in seen:
                    seen.append(index)
        if instr.lanes:
            for _, a, b in instr.lanes:
                for lane_reg in (a, b):
                    index = reg_index[lane_reg.name]
                    if index not in seen:
                        seen.append(index)
        return seen

    @staticmethod
    def _dst_regs(instr, reg_index):
        dsts = []
        operands = instr.operands
        if operands and isinstance(operands[0], PhysReg):
            dsts.append(reg_index[operands[0].name])
        if instr.lanes:
            for dst, _, _ in instr.lanes:
                dsts.append(reg_index[dst.name])
        return dsts

    # -- timing emission ----------------------------------------------------
    def _fetch(self, w, instr):
        """Inline i-cache access, coalescing same-line instruction runs."""
        if not self.timed:
            return
        line = instr.address // self.ILINE
        if line == self._line:
            self._run += 1
            return
        self._flush_line(w)
        set_index = line % self.ISETS
        tag = line // self.ISETS
        self._line, self._tag, self._run = line, tag, 1
        w(f"ic_ = icd[{set_index}]")
        w("ict += 1")
        w(f"if {tag} in ic_:")
        w("    ich += 1")
        w(f"    ic_[{tag}] = ict")
        w("else:")
        w("    icm += 1")
        if self.IWAYS == 1:
            w("    if ic_:")
            w("        ic_.clear()")
        else:
            w(f"    if len(ic_) >= {self.IWAYS}:")
            w("        del ic_[min(ic_, key=ic_.get)]")
        w(f"    ic_[{tag}] = ict")
        w(f"    issue += {self.ICMISS}")

    def _flush_line(self, w):
        """Account the hits of the rest of a same-line instruction run."""
        if self._line is not None and self._run > 1:
            extra = self._run - 1
            w(f"ict += {extra}")
            w(f"ich += {extra}")
            w(f"ic_[{self._tag}] = ict")
        self._line, self._tag, self._run = None, None, 0

    def _chain(self, w, instr, latency_expr):
        """The seed ``_issue_instr`` scoreboard update, inlined."""
        if not self.timed:
            return
        regs = self._operand_regs(instr, self.reg_index)
        dsts = self._dst_regs(instr, self.reg_index)
        if regs:
            w(f"t_ = rd[{regs[0]}]")
            for index in regs[1:]:
                w(f"u_ = rd[{index}]")
                w("if u_ > t_: t_ = u_")
            w("if issue > t_: t_ = issue")
            w("stl += t_ - issue")
            for dst in dsts:
                w(f"rd[{dst}] = t_ + {latency_expr}")
            w(f"issue = t_ + {self.INV_W!r}")
        else:
            for dst in dsts:
                w(f"rd[{dst}] = issue + {latency_expr}")
            w(f"issue += {self.INV_W!r}")

    # -- per-instruction emission -------------------------------------------
    def _wrap_into(self, w, dst, expr):
        w(f"v_ = ({expr}) & {_MASK_LIT}")
        w(f"r[{dst}] = v_ - {_TWO64_LIT} if v_ >= {_HALF_LIT} else v_")

    def _emit_exec(self, w, instr):
        op = instr.opcode
        ops = instr.operands
        read = self._read
        if op in ("li", "mv"):
            w(f"r[{self.reg_index[ops[0].name]}] = {read(ops[1])}")
        elif op == "lfi":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"K[{self._const(ops[1].value)}]")
        elif op == "frame_alloc":
            w(f"r[{self.reg_index[ops[0].name]}] = fb + {ops[1].value}")
        elif op == "lea":
            w(f"r[{self.reg_index[ops[0].name]}] = {read(ops[1])} + "
              f"{read(ops[2])} * {ops[3].value}")
        elif op in _INT_OPS:
            self._wrap_into(w, self.reg_index[ops[0].name],
                            f"{read(ops[1])} {_INT_OPS[op]} {read(ops[2])}")
        elif op == "shl":
            self._wrap_into(w, self.reg_index[ops[0].name],
                            f"{read(ops[1])} << ({read(ops[2])} & 63)")
        elif op == "sar":
            self._wrap_into(w, self.reg_index[ops[0].name],
                            f"{read(ops[1])} >> ({read(ops[2])} & 63)")
        elif op == "shr":
            self._wrap_into(
                w, self.reg_index[ops[0].name],
                f"({read(ops[1])} & {_MASK_LIT}) >> ({read(ops[2])} & 63)")
        elif op == "div":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"sdiv({read(ops[1])}, {read(ops[2])})")
        elif op == "rem":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"srem({read(ops[1])}, {read(ops[2])})")
        elif op in _FLOAT_OPS:
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"{read(ops[1])} {_FLOAT_OPS[op]} {read(ops[2])}")
        elif op == "fdiv":
            w(f"fb_ = {read(ops[2])}")
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"({read(ops[1])} / fb_) if fb_ else fdv({read(ops[1])}, fb_)")
        elif op == "setcc":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"1 if {read(ops[1])} {_ICMP_PY[instr.pred]} {read(ops[2])} "
              f"else 0")
        elif op == "fsetcc":
            w(f"fa_ = {read(ops[1])}")
            w(f"fb_ = {read(ops[2])}")
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"1 if (fa_ == fa_ and fb_ == fb_ and "
              f"fa_ {_FCMP_PY[instr.pred]} fb_) else 0")
        elif op == "cmov":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"{read(ops[2])} if {read(ops[1])} else {read(ops[3])}")
        elif op == "ld":
            w(f"adr_ = {read(ops[1])} + {read(ops[2])}")
            if self.timed:
                w("hit_ = dca(adr_)")
                self._fetch(w, instr)
                w(f"L_ = {self.LDHIT} if hit_ else {self.LDMISS}")
                self._chain(w, instr, "L_")
            w("if adr_ <= 0:")
            w('    raise err("load from invalid address %d" % adr_)')
            w(f"r[{self.reg_index[ops[0].name]}] = mg(adr_, 0)")
            return
        elif op == "st":
            w(f"adr_ = {read(ops[1])} + {read(ops[2])}")
            if self.timed:
                w("hit_ = dca(adr_)")
                self._fetch(w, instr)
                self._chain(w, instr, "1")
                w(f"if not hit_: issue += {self.ST_EXTRA!r}")
            w("if adr_ <= 0:")
            w('    raise err("store to invalid address %d" % adr_)')
            w(f"m[adr_] = {read(ops[0])}")
            return
        elif op in _FLOAT_UNARY:
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"ffi('{_FLOAT_UNARY[op]}', ({read(ops[1])},))")
        elif op == "fpow":
            w(f"r[{self.reg_index[ops[0].name]}] = "
              f"ffi('pow', ({read(ops[1])}, {read(ops[2])}))")
        elif op == "cvtsi2sd":
            w(f"r[{self.reg_index[ops[0].name]}] = float({read(ops[1])})")
        elif op == "cvtsd2si":
            w(f"r[{self.reg_index[ops[0].name]}] = f2i({read(ops[1])})")
        elif op == "fneg":
            w(f"r[{self.reg_index[ops[0].name]}] = -{read(ops[1])}")
        elif op == "print":
            if ops[0] == "i":
                w(f"v_ = {read(ops[1])} & {_MASK_LIT}")
                w(f"oa(('i', v_ - {_TWO64_LIT} if v_ >= {_HALF_LIT} "
                  f"else v_))")
            else:
                w(f"oa(('f', r6({read(ops[1])})))")
        elif op == "memset":
            w(f"d_ = {read(ops[0])}")
            w(f"v_ = {read(ops[1])}")
            w(f"c_ = int({read(ops[2])})")
            w("if c_ > 0 and d_ <= 0:")
            w('    raise err("store to invalid address %d" % d_)')
            w("for i_ in range(c_):")
            w("    m[d_ + i_] = v_")
            self._block_op_timing(w, instr)
            return
        elif op == "memcpy":
            w(f"d_ = {read(ops[0])}")
            w(f"s_ = {read(ops[1])}")
            w(f"c_ = int({read(ops[2])})")
            w("if c_ > 0:")
            w("    if s_ <= 0:")
            w('        raise err("load from invalid address %d" % s_)')
            w("    vs_ = [mg(s_ + i_, 0) for i_ in range(c_)]")
            w("    if d_ <= 0:")
            w('        raise err("store to invalid address %d" % d_)')
            w("    for i_ in range(c_):")
            w("        m[d_ + i_] = vs_[i_]")
            self._block_op_timing(w, instr)
            return
        elif op == "vop":
            fn = ops[0]
            for index, (_, a, b) in enumerate(instr.lanes):
                w(f"la{index}_ = {read(a)}")
                w(f"lb{index}_ = {read(b)}")
            for index, (dst, _, _) in enumerate(instr.lanes):
                target = self.reg_index[dst.name]
                if fn == "fdiv":
                    w(f"r[{target}] = (la{index}_ / lb{index}_) "
                      f"if lb{index}_ else fdv(la{index}_, lb{index}_)")
                else:
                    w(f"r[{target}] = la{index}_ "
                      f"{_FLOAT_OPS[fn]} lb{index}_")
        else:
            w(f"raise err('unknown opcode {op!r}')")
            return
        self._fetch(w, instr)
        self._chain(w, instr, str(self._lat(op)))

    def _block_op_timing(self, w, instr):
        if not self.timed:
            return
        self._fetch(w, instr)
        self._chain(w, instr, "1")
        w(f"issue += c_ * {self.PER_CELL!r}")
        w(f"for i_ in range(0, c_, {self.DLINE}):")
        w(f"    dca({instr.address} + i_)")

    # -- segment enumeration -------------------------------------------------
    def _enumerate(self):
        self.records = []
        self.block_entry = {}
        self.func_entry = {}
        self._falloffs = {}
        for mfunc in self.program.functions.values():
            for block in mfunc.blocks:
                runs, current = [], []
                for instr in block.instructions:
                    current.append(instr)
                    if instr.opcode in _SPLIT:
                        runs.append(current)
                        current = []
                if current:
                    runs.append(current)
                if not runs:
                    self.block_entry[block.label] = \
                        self._falloff(block.label)
                    continue
                first = len(self.records)
                for offset, run in enumerate(runs):
                    nxt = first + offset + 1 if offset + 1 < len(runs) \
                        else None
                    self.records.append({"kind": "code", "block": block,
                                         "instrs": run, "next": nxt})
                self.block_entry[block.label] = first
            if mfunc.blocks:
                self.func_entry[mfunc.name] = (
                    self.block_entry[mfunc.blocks[0].label],
                    mfunc.frame_slots)
        # Resolve fall-through targets that run off the block.
        for index in range(len(self.records)):
            record = self.records[index]
            if record["kind"] != "code" or record["next"] is not None:
                continue
            last = record["instrs"][-1].opcode
            if last in ("bcc", "fbcc", "call") or last not in _SPLIT:
                record["next"] = self._falloff(record["block"].label)

    def _falloff(self, label):
        index = self._falloffs.get(label)
        if index is None:
            index = len(self.records)
            self._falloffs[label] = index
            self.records.append({"kind": "falloff", "label": label})
        return index

    # -- code generation -----------------------------------------------------
    def compile(self):
        self._enumerate()
        lines = ["def build(rt):"]
        p = lines.append
        p("    r = rt.r")
        p("    m = rt.m")
        p("    mg = m.get")
        p("    oa = rt.out.append")
        p("    hg = rt.hg")
        p("    hgg = hg.get")
        p("    K = rt.K")
        p("    err = rt.err")
        p("    ffi = rt.ffi")
        p("    sdiv = rt.sdiv")
        p("    srem = rt.srem")
        p("    fdv = rt.fdv")
        p("    f2i = rt.f2i")
        p("    r6 = rt.r6")
        p("    FUEL = rt.fuel")
        p("    icnt = rt.t_icount")
        if self.timed:
            p("    rd = rt.rd")
            p("    dca = rt.dca")
            p("    icd = rt.icd")
            p("    pt = rt.pt")
            p("    ptg = pt.get")
            p("    issue = rt.t_issue")
            p("    stl = rt.t_stall")
            p("    ict = rt.t_ictick")
            p("    ich = rt.t_ichits")
            p("    icm = rt.t_icmiss")
            p("    msp = rt.t_msp")
        for index, record in enumerate(self.records):
            self._emit_segment(lines, index, record)
        p("    def flush():")
        if self.timed:
            p("        return issue, stl, ict, ich, icm, msp, icnt")
        else:
            p("        return 0.0, 0.0, 0, 0, 0, 0, icnt")
        segments = ", ".join(f"s{i}" for i in range(len(self.records)))
        comma = "," if len(self.records) == 1 else ""
        p(f"    return ({segments}{comma}), flush")
        source = "\n".join(lines) + "\n"
        code = compile(source, f"<tape:{self.program.name}>", "exec")
        namespace = {}
        exec(code, namespace)
        return _CompiledTape(
            build=namespace["build"],
            entries=dict(self.func_entry),
            calls=tuple(self.calls),
            consts=tuple(self.consts),
            reg_names=self.reg_names,
            n_int=self.n_int,
            ret_index=self.reg_index[self.isa.ret_int.name],
            timed=self.timed,
            source=source,
        )

    def _emit_segment(self, lines, index, record):
        p = lines.append
        p(f"    def s{index}(fb):")
        if record["kind"] == "falloff":
            message = f"fell off block {record['label']}"
            p(f"        raise err({message!r})")
            return

        def w(line):
            p("        " + line)

        if self.timed:
            w("nonlocal issue, stl, ict, ich, icm, msp, icnt")
        else:
            w("nonlocal icnt")
        instrs = record["instrs"]
        w(f"icnt += {len(instrs)}")
        w("if icnt > FUEL:")
        w("    raise err('simulator fuel exhausted')")
        counts, order = {}, []
        for instr in instrs:
            if instr.opcode not in counts:
                order.append(instr.opcode)
            counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        for opcode in order:
            w(f"hg[{opcode!r}] = hgg({opcode!r}, 0) + {counts[opcode]}")
        self._line, self._tag, self._run = None, None, 0
        for instr in instrs[:-1]:
            self._emit_exec(w, instr)
        self._emit_control(w, instrs[-1], record)

    def _emit_control(self, w, instr, record):
        op = instr.opcode
        ops = instr.operands
        read = self._read
        if op == "jmp":
            self._fetch(w, instr)
            if self.timed:
                w(f"issue += {self.INV_W!r}")
            self._flush_line(w)
            w(f"return {self.block_entry[ops[0].name]}")
        elif op in ("bcc", "fbcc"):
            if op == "bcc":
                w(f"tk_ = {read(ops[0])} {_ICMP_PY[instr.pred]} "
                  f"{read(ops[1])}")
            else:
                w(f"fa_ = {read(ops[0])}")
                w(f"fb_ = {read(ops[1])}")
                w(f"tk_ = fa_ == fa_ and fb_ == fb_ and "
                  f"fa_ {_FCMP_PY[instr.pred]} fb_")
            self._fetch(w, instr)
            self._chain(w, instr, "1")
            if self.timed:
                site = (instr.address >> 1) % 256
                w(f"c_ = ptg({site}, 2)")
                w("if tk_:")
                w(f"    pt[{site}] = c_ + 1 if c_ < 3 else 3")
                w("    if c_ < 2:")
                w("        msp += 1")
                w(f"        issue += {self.MISPRED}")
                w("else:")
                w(f"    pt[{site}] = c_ - 1 if c_ > 0 else 0")
                w("    if c_ >= 2:")
                w("        msp += 1")
                w(f"        issue += {self.MISPRED}")
            self._flush_line(w)
            taken = self.block_entry[ops[2].name]
            w(f"return {taken} if tk_ else {record['next']}")
        elif op == "ret":
            self._fetch(w, instr)
            if self.timed:
                w(f"issue += {self.INV_W!r}")
            self._flush_line(w)
            w("return -1")
        elif op == "call":
            self._fetch(w, instr)
            if self.timed:
                w(f"issue += {self.INV_W!r}")
                w(f"issue += {self.CALLOVH}")
            self._flush_line(w)
            entry, slots = self.func_entry[ops[0]]
            call_id = len(self.calls)
            self.calls.append((entry, slots, record["next"]))
            w(f"return {-(2 + call_id)}")
        else:
            # Block ran off the end without a terminator.
            self._emit_exec(w, instr)
            self._flush_line(w)
            message = f"fell off block {record['block'].label}"
            w(f"raise err({message!r})")


# -- runtime -----------------------------------------------------------------

class TapeSimulator:
    """Drop-in fast replacement for :class:`~repro.sim.machine.Simulator`.

    Same constructor and ``run`` signature; produces a
    :class:`MachineResult` with bit-identical observables, instruction
    counts, histogram order, and (when a ``PipelineModel`` is supplied)
    identical cycle counts and cache/predictor state.
    """

    def __init__(self, program, isa, timing=None, fuel=20_000_000):
        self.program = program
        self.isa = isa
        self.timing = timing
        self.fuel = fuel
        self.instructions_executed = 0
        self.dynamic_histogram = {}
        self._tape = _get_tape(program, isa, timing is not None)
        tape = self._tape
        n_float = len(tape.reg_names) - tape.n_int
        self._rt = SimpleNamespace(
            r=[0] * tape.n_int + [0.0] * n_float,
            rd=[0.0] * len(tape.reg_names),
            m=dict(program.global_init),
            out=[],
            hg=self.dynamic_histogram,
            K=tape.consts,
            err=SimulationError,
            ffi=evaluate_float_intrinsic,
            sdiv=arith.sdiv64,
            srem=arith.srem64,
            fdv=arith.fdiv,
            f2i=arith.fptosi,
            r6=arith.round_float_output,
            fuel=fuel,
            dca=None, icd=None, pt=None,
            t_issue=0.0, t_stall=0.0, t_ictick=0, t_ichits=0,
            t_icmiss=0, t_msp=0, t_icount=0,
        )
        if timing is not None:
            self._rt.dca = timing.dcache.access
            self._rt.icd = timing.icache.data
            self._rt.pt = timing.predictor.table
        self._sp = _STACK_BASE

    def run(self, function_name="main"):
        tape = self._tape
        entry = tape.entries.get(function_name)
        if entry is None:
            raise SimulationError(f"no function {function_name!r}")
        rt = self._rt
        timing = self.timing
        rt.t_icount = self.instructions_executed
        if timing is not None:
            rt.t_issue = timing.issue
            rt.t_stall = timing.stall_cycles
            rt.t_ictick = timing.icache.tick
            rt.t_ichits = timing.icache.hits
            rt.t_icmiss = timing.icache.misses
            rt.t_msp = timing.mispredicts
        segments, flush = tape.build(rt)
        try:
            self._dispatch(segments, tape.calls, entry[0], entry[1], 0)
        finally:
            (issue, stall, ic_tick, ic_hits, ic_misses, mispredicts,
             executed) = flush()
            self.instructions_executed = executed
            if timing is not None:
                timing.issue = issue
                timing.stall_cycles = stall
                timing.icache.tick = ic_tick
                timing.icache.hits = ic_hits
                timing.icache.misses = ic_misses
                timing.mispredicts = mispredicts
                names = tape.reg_names
                ready = rt.rd
                timing.ready.update(
                    {names[i]: ready[i] for i in range(len(ready))
                     if ready[i] != 0.0})
        value = rt.r[tape.ret_index]
        return MachineResult(arith.wrap64(value), rt.out,
                             self.instructions_executed,
                             self.dynamic_histogram, timing)

    def _dispatch(self, segments, calls, segment, frame_slots, depth):
        if depth > 400:
            raise SimulationError("call stack overflow")
        self._sp -= frame_slots
        frame_base = self._sp
        try:
            while True:
                nxt = segments[segment](frame_base)
                if nxt >= 0:
                    segment = nxt
                elif nxt == -1:
                    return
                else:
                    callee, callee_slots, cont = calls[-2 - nxt]
                    self._dispatch(segments, calls, callee, callee_slots,
                                   depth + 1)
                    segment = cont
        finally:
            self._sp = frame_base + frame_slots
