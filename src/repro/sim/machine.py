"""Machine-code simulator.

Executes a :class:`MachineProgram` over a cell-addressed memory, producing
the same observable behaviour as the IR interpreter (the test suite checks
this differentially), while the timing model (:mod:`repro.sim.pipeline`)
and energy model (:mod:`repro.sim.energy`) observe the instruction stream.
"""

from repro.errors import SimulationError
from repro.backend.mir import (
    FImm,
    GlobalRef,
    Imm,
    PhysReg,
    StackSlot,
)
from repro.ir import arith
from repro.ir.intrinsics import evaluate_float_intrinsic

_STACK_BASE = 0x4000000


def _wrap(value):
    return arith.wrap64(int(value))


class MachineState:
    """Architectural state: registers, memory, stack, output."""

    def __init__(self, program):
        self.program = program
        self.registers = {}
        self.memory = dict(program.global_init)
        self.sp = _STACK_BASE
        self.output = []

    def read(self, operand, frame_base):
        if isinstance(operand, PhysReg):
            return self.registers.get(operand.name,
                                      0.0 if operand.cls == "float" else 0)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, FImm):
            return operand.value
        if isinstance(operand, GlobalRef):
            return self.program.global_layout[operand.name][0]
        if isinstance(operand, StackSlot):
            return frame_base + operand.index
        raise SimulationError(f"cannot read operand {operand!r}")

    def write(self, reg, value):
        self.registers[reg.name] = value

    def load(self, address):
        if address <= 0:
            raise SimulationError(f"load from invalid address {address}")
        return self.memory.get(address, 0)

    def store(self, address, value):
        if address <= 0:
            raise SimulationError(f"store to invalid address {address}")
        self.memory[address] = value


class Simulator:
    """Functional + micro-architectural simulation of a MachineProgram."""

    def __init__(self, program, isa, timing=None, fuel=20_000_000):
        self.program = program
        self.isa = isa
        self.state = MachineState(program)
        self.timing = timing  # PipelineModel or None (functional only)
        self.fuel = fuel
        self.instructions_executed = 0
        self.dynamic_histogram = {}
        # label -> (function, block_index)
        self.labels = {}
        for mfunc in program.functions.values():
            for index, block in enumerate(mfunc.blocks):
                self.labels[block.label] = (mfunc, index)

    # -- entry --------------------------------------------------------------
    def run(self, function_name="main"):
        mfunc = self.program.functions[function_name]
        self._run_function(mfunc, depth=0)
        # The return value sits in the integer return register (all
        # workloads' main returns int).
        value = self.state.registers.get(self.isa.ret_int.name, 0)
        return MachineResult(_wrap(value), self.state.output,
                             self.instructions_executed,
                             self.dynamic_histogram, self.timing)

    # -- execution ---------------------------------------------------------------
    def _run_function(self, mfunc, depth):
        if depth > 400:
            raise SimulationError("call stack overflow")
        state = self.state
        state.sp -= mfunc.frame_slots
        frame_base = state.sp
        try:
            self._run_blocks(mfunc, frame_base, depth)
        finally:
            # Restore unconditionally: a SimulationError raised in a
            # callee must not leave the stack pointer shifted for the
            # caller's (or a reused Simulator's) next frame.
            state.sp = frame_base + mfunc.frame_slots

    def _run_blocks(self, mfunc, frame_base, depth):
        state = self.state
        block = mfunc.blocks[0]
        index = 0
        while True:
            if index >= len(block.instructions):
                raise SimulationError(
                    f"fell off block {block.label}")
            instr = block.instructions[index]
            self.instructions_executed += 1
            histogram = self.dynamic_histogram
            histogram[instr.opcode] = histogram.get(instr.opcode, 0) + 1
            if self.instructions_executed > self.fuel:
                raise SimulationError("simulator fuel exhausted")
            opcode = instr.opcode
            ops = instr.operands
            timing = self.timing

            if opcode == "jmp":
                if timing:
                    timing.on_jump(instr)
                mfunc2, bindex = self.labels[ops[0].name]
                block = mfunc2.blocks[bindex]
                index = 0
                continue
            if opcode in ("bcc", "fbcc"):
                a = state.read(ops[0], frame_base)
                b = state.read(ops[1], frame_base)
                taken = self._evaluate_predicate(opcode, instr.pred, a, b)
                if timing:
                    timing.on_branch(instr, taken)
                if taken:
                    mfunc2, bindex = self.labels[ops[2].name]
                    block = mfunc2.blocks[bindex]
                    index = 0
                    continue
                index += 1
                continue
            if opcode == "ret":
                if timing:
                    timing.on_simple(instr)
                break
            if opcode == "call":
                if timing:
                    timing.on_call(instr)
                callee = self.program.functions[ops[0]]
                self._run_function(callee, depth + 1)
                index += 1
                continue

            self._execute(instr, opcode, ops, state, frame_base, timing)
            index += 1

    def _execute(self, instr, opcode, ops, state, frame_base, timing):
        if opcode == "li":
            value = state.read(ops[1], frame_base)
            state.write(ops[0], value)
        elif opcode == "lfi":
            state.write(ops[0], ops[1].value)
        elif opcode == "mv":
            state.write(ops[0], state.read(ops[1], frame_base))
        elif opcode == "frame_alloc":
            state.write(ops[0], frame_base + ops[1].value)
        elif opcode == "lea":
            base = state.read(ops[1], frame_base)
            index_value = state.read(ops[2], frame_base)
            state.write(ops[0], base + index_value * ops[3].value)
        elif opcode in _INT_BINOPS:
            a = state.read(ops[1], frame_base)
            b = state.read(ops[2], frame_base)
            state.write(ops[0], _INT_BINOPS[opcode](a, b))
        elif opcode in _FLOAT_BINOPS:
            a = state.read(ops[1], frame_base)
            b = state.read(ops[2], frame_base)
            state.write(ops[0], _FLOAT_BINOPS[opcode](a, b))
        elif opcode in ("setcc", "fsetcc"):
            a = state.read(ops[1], frame_base)
            b = state.read(ops[2], frame_base)
            state.write(ops[0], int(self._evaluate_predicate(
                "bcc" if opcode == "setcc" else "fbcc",
                instr.pred, a, b)))
        elif opcode == "cmov":
            cond = state.read(ops[1], frame_base)
            a = state.read(ops[2], frame_base)
            b = state.read(ops[3], frame_base)
            state.write(ops[0], a if cond else b)
        elif opcode == "ld":
            base = state.read(ops[1], frame_base)
            offset = state.read(ops[2], frame_base) \
                if not isinstance(ops[2], Imm) else ops[2].value
            address = base + offset
            if timing:
                timing.on_load(instr, address)
            state.write(ops[0], state.load(address))
            return
        elif opcode == "st":
            value = state.read(ops[0], frame_base)
            base = state.read(ops[1], frame_base)
            offset = state.read(ops[2], frame_base) \
                if not isinstance(ops[2], Imm) else ops[2].value
            address = base + offset
            if timing:
                timing.on_store(instr, address)
            state.store(address, value)
            return
        elif opcode in ("fsqrt", "fexp", "flog", "fsin", "fcos", "fabs"):
            value = state.read(ops[1], frame_base)
            name = {"fsqrt": "sqrt", "fexp": "exp", "flog": "log",
                    "fsin": "sin", "fcos": "cos", "fabs": "fabs"}[opcode]
            state.write(ops[0], evaluate_float_intrinsic(name, [value]))
        elif opcode == "fpow":
            a = state.read(ops[1], frame_base)
            b = state.read(ops[2], frame_base)
            state.write(ops[0], evaluate_float_intrinsic("pow", [a, b]))
        elif opcode == "cvtsi2sd":
            state.write(ops[0], float(state.read(ops[1], frame_base)))
        elif opcode == "cvtsd2si":
            state.write(ops[0],
                        arith.fptosi(state.read(ops[1], frame_base)))
        elif opcode == "fneg":
            state.write(ops[0], -state.read(ops[1], frame_base))
        elif opcode == "print":
            value = state.read(ops[1], frame_base)
            if ops[0] == "i":
                state.output.append(("i", _wrap(value)))
            else:
                state.output.append(("f", arith.round_float_output(value)))
        elif opcode == "memset":
            dest = state.read(ops[0], frame_base)
            value = state.read(ops[1], frame_base)
            count = state.read(ops[2], frame_base)
            for i in range(int(count)):
                state.store(dest + i, value)
            if timing:
                timing.on_block_op(instr, int(count))
            return
        elif opcode == "memcpy":
            dest = state.read(ops[0], frame_base)
            src = state.read(ops[1], frame_base)
            count = state.read(ops[2], frame_base)
            values = [state.load(src + i) for i in range(int(count))]
            for i, value in enumerate(values):
                state.store(dest + i, value)
            if timing:
                timing.on_block_op(instr, int(count))
            return
        elif opcode == "vop":
            sub = ops[0]
            fn = _FLOAT_BINOPS[sub]
            reads = [(state.read(a, frame_base), state.read(b, frame_base))
                     for _, a, b in instr.lanes]
            for (dst, _, _), (a, b) in zip(instr.lanes, reads):
                state.write(dst, fn(a, b))
        else:
            raise SimulationError(f"unknown opcode {opcode!r}")
        if timing:
            timing.on_simple(instr)

    @staticmethod
    def _evaluate_predicate(opcode, pred, a, b):
        if opcode == "fbcc":
            return arith.fcmp(pred, a, b)
        return arith.icmp(pred, a, b)


# Machine opcodes map onto the shared exact-64-bit semantics in
# repro.ir.arith; div/rem in particular use exact integer truncation.
_INT_BINOPS = {
    "add": lambda a, b: _wrap(a + b),
    "sub": lambda a, b: _wrap(a - b),
    "mul": lambda a, b: _wrap(a * b),
    "div": arith.sdiv64,
    "rem": arith.srem64,
    "and": lambda a, b: _wrap(a & b),
    "or": lambda a, b: _wrap(a | b),
    "xor": lambda a, b: _wrap(a ^ b),
    "shl": lambda a, b: _wrap(a << (b & 63)),
    "sar": lambda a, b: _wrap(a >> (b & 63)),
    "shr": lambda a, b: _wrap((a & arith.MASK64) >> (b & 63)),
}

_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": arith.fdiv,
}


class MachineResult:
    """Functional + micro-architectural outcome of a simulation."""

    def __init__(self, return_value, output, instructions, histogram,
                 timing):
        self.return_value = return_value
        self.output = tuple(output)
        self.instructions_executed = instructions
        self.dynamic_histogram = dict(histogram)
        self.timing = timing

    def observable(self):
        return self.output

    @property
    def cycles(self):
        return 0 if self.timing is None else self.timing.cycles()

    def __repr__(self):
        return (f"<MachineResult |out|={len(self.output)} "
                f"instrs={self.instructions_executed} "
                f"cycles={self.cycles}>")
