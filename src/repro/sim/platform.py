"""Target platforms: the bundle of ISA + timing + energy + measurement
that the profiling layer (paper Fig. 2 box 1) runs programs on.
"""

import os

from repro.backend.codegen import compile_module
from repro.backend.isa import get_isa
from repro.sim.energy import EnergyModel, RaplCounter
from repro.sim.machine import Simulator
from repro.sim.pipeline import PipelineModel
from repro.sim.tape import TapeSimulator

#: Which simulator backs ``Platform.execute``: ``"tape"`` (compiled,
#: cached — the default) or ``"seed"`` (the reference interpreter-style
#: simulator, kept as the differential baseline).  Overridable per
#: process via ``REPRO_SIM_ENGINE`` for A/B debugging.
DEFAULT_SIM_ENGINE = os.environ.get("REPRO_SIM_ENGINE", "tape")

_SIM_ENGINES = {"tape": TapeSimulator, "seed": Simulator}


class Measurement:
    """Dynamic features of one program execution on one platform.

    These are the paper's four PE metrics (execution time, energy,
    executed instructions, average power) plus code size.
    """

    def __init__(self, cycles, time_seconds, energy_pj, instructions,
                 code_size, dynamic_histogram, output, return_value):
        self.cycles = cycles
        self.time_seconds = time_seconds
        self.energy_pj = energy_pj
        self.instructions = instructions
        self.code_size = code_size
        self.dynamic_histogram = dynamic_histogram
        self.output = output
        self.return_value = return_value

    @property
    def average_power_watts(self):
        if self.time_seconds <= 0:
            return 0.0
        return (self.energy_pj * 1e-12) / self.time_seconds

    def metrics(self):
        """The PE's output metric vector, in a stable order."""
        return {
            "exec_time_us": self.time_seconds * 1e6,
            "energy_uj": self.energy_pj * 1e-6,
            "instructions": float(self.instructions),
            "avg_power_w": self.average_power_watts,
        }

    def __repr__(self):
        return (f"<Measurement cycles={self.cycles:.0f} "
                f"E={self.energy_pj:.0f}pJ instrs={self.instructions} "
                f"size={self.code_size}B>")


class Platform:
    """A named target platform with profiling support.

    ``x86`` uses RAPL-style noisy energy measurement; ``riscv`` is a
    deterministic simulator (HIPERSIM+McPAT in the paper).
    """

    METRIC_NAMES = ("exec_time_us", "energy_uj", "instructions",
                    "avg_power_w")

    def __init__(self, target, measurement_seed=0, sim_engine=None):
        self.target = target
        self.measurement_seed = measurement_seed
        self.sim_engine = sim_engine if sim_engine is not None \
            else DEFAULT_SIM_ENGINE
        if self.sim_engine not in _SIM_ENGINES:
            raise ValueError(
                f"unknown sim engine {self.sim_engine!r}; "
                f"available: {sorted(_SIM_ENGINES)}")
        self.isa = get_isa(target)
        self.energy_model = EnergyModel(self.isa)
        self.rapl = RaplCounter(measurement_seed) if target == "x86" \
            else None

    def compile(self, module):
        return compile_module(module, self.isa)

    def execute(self, program, fuel=20_000_000):
        """Run a compiled program, returning a Measurement."""
        timing = PipelineModel(self.isa)
        simulator = _SIM_ENGINES[self.sim_engine](
            program, self.isa, timing, fuel=fuel)
        result = simulator.run()
        energy = self.energy_model.total_energy_pj(
            result.dynamic_histogram, timing)
        if self.rapl is not None:
            energy = self.rapl.measure(energy)
        return Measurement(
            cycles=timing.cycles(),
            time_seconds=timing.seconds(),
            energy_pj=energy,
            instructions=result.instructions_executed,
            code_size=program.code_size,
            dynamic_histogram=result.dynamic_histogram,
            output=result.output,
            return_value=result.return_value,
        )

    def profile(self, module, fuel=20_000_000):
        """Compile + execute an IR module."""
        program = self.compile(module)
        return self.execute(program, fuel=fuel)

    def __repr__(self):
        return f"<Platform {self.target}>"


def default_platforms(measurement_seed=0):
    return {name: Platform(name, measurement_seed)
            for name in ("x86", "riscv")}
