"""Energy model (McPAT-flavoured) and the RAPL-like measurement wrapper.

Dynamic energy: per-opcode-class pJ values from the ISA tables plus cache
access/miss energies.  Static energy: leakage power integrated over the
run time.  The x86 platform's numbers pass through a RAPL-style counter
with quantized resolution and seeded measurement noise (the paper profiles
x86 with RAPL); the RISC-V platform is a deterministic simulator, matching
the paper's HIPERSIM+McPAT flow.
"""

import numpy as np


class EnergyModel:
    """Accumulates energy while re-walking a dynamic histogram."""

    # Cache energies in pJ.
    DCACHE_ACCESS = {"x86": 25.0, "riscv": 5.0}
    DCACHE_MISS = {"x86": 300.0, "riscv": 90.0}
    ICACHE_ACCESS = {"x86": 8.0, "riscv": 2.0}

    def __init__(self, isa):
        self.isa = isa

    def dynamic_energy_pj(self, dynamic_histogram, timing):
        """Total dynamic energy for a run."""
        energy = 0.0
        table = self.isa.energy_table
        base = self.isa.base_energy
        for opcode, count in dynamic_histogram.items():
            energy += count * table.get(opcode, base)
        name = self.isa.name
        energy += timing.dcache.hits * self.DCACHE_ACCESS[name]
        energy += timing.dcache.misses * self.DCACHE_MISS[name]
        accesses = timing.icache.hits + timing.icache.misses
        energy += accesses * self.ICACHE_ACCESS[name]
        energy += timing.mispredicts * base * 6.0
        return energy

    def static_energy_pj(self, timing):
        return self.isa.static_power_watts * timing.seconds() * 1e12

    def total_energy_pj(self, dynamic_histogram, timing):
        return (self.dynamic_energy_pj(dynamic_histogram, timing)
                + self.static_energy_pj(timing))


class RaplCounter:
    """RAPL-style energy measurement: quantized counter + sampling noise.

    The paper gathers x86 dynamic features by profiling with RAPL, which
    has a ~15.3 µJ resolution and run-to-run variance; we model both so
    the PE learns from realistically noisy targets.
    """

    RESOLUTION_PJ = 15.3e6  # 15.3 µJ in pJ — scaled down for small runs
    NOISE_FRACTION = 0.004

    def __init__(self, seed=0, resolution_pj=None):
        self.rng = np.random.default_rng(seed)
        # Small simulated kernels complete in µs; a real RAPL window would
        # aggregate many iterations.  Scale the quantization to stay
        # proportionate (~0.05% of a typical reading).
        self.resolution_pj = resolution_pj if resolution_pj is not None \
            else 2000.0

    def measure(self, true_energy_pj):
        noisy = true_energy_pj * (
            1.0 + self.rng.normal(0.0, self.NOISE_FRACTION))
        quantized = round(noisy / self.resolution_pj) * self.resolution_pj
        return max(quantized, self.resolution_pj)
