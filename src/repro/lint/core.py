"""Rule framework: findings, the rule base class, and the registry."""

import re

#: Rule codes look like R001.
CODE_RE = re.compile(r"^R\d{3}$")

#: code -> Rule subclass, populated by @register_rule.
RULE_REGISTRY = {}


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "line", "col", "message", "symbol", "path")

    def __init__(self, rule, line, col, message, symbol=None, path=None):
        self.rule = rule          # "R001"
        self.line = line          # 1-based
        self.col = col            # 0-based (ast convention)
        self.message = message
        self.symbol = symbol      # offending name, when one exists
        self.path = path          # filled in by the runner

    def sort_key(self):
        return (self.path or "", self.line, self.col, self.rule)

    def as_dict(self):
        entry = {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.symbol is not None:
            entry["symbol"] = self.symbol
        return entry

    def __repr__(self):
        return f"<Finding {self.rule} {self.path}:{self.line}>"


class Rule:
    """One encoded bug class.

    Subclasses set ``code`` (``Rxxx``), ``name`` (short kebab-case
    slug), and ``history`` (the shipped bug this rule encodes — shown
    by ``--list-rules`` and the README rule table), and implement
    :meth:`check`, a generator of :class:`Finding` for one parsed file.
    """

    code = None
    name = None
    history = None

    def check(self, ctx):
        """Yield findings for ``ctx`` (a :class:`FileContext`)."""
        raise NotImplementedError

    def finding(self, node, message, symbol=None):
        return Finding(self.code, node.lineno, node.col_offset,
                       message, symbol=symbol)


def register_rule(cls):
    """Class decorator adding a rule to the registry."""
    if not (cls.code and CODE_RE.match(cls.code)):
        raise ValueError(f"bad rule code {cls.code!r}")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules(codes=None):
    """Instantiate the registered rules (optionally a subset)."""
    if codes is None:
        codes = sorted(RULE_REGISTRY)
    unknown = [c for c in codes if c not in RULE_REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    return [RULE_REGISTRY[code]() for code in sorted(codes)]
