"""R001/R005: the IR mutation API is the only way to edit IR state.

History (PR-5): ``Function.blocks`` and ``BasicBlock.instructions``
are plain lists, but the IR maintains an edge-count-aware reverse CFG
(``_preds``) and a block-position index that are updated *only* by the
mutation API (``append``/``insert``/``set_terminator``/
``remove_instruction``/``remove_block``/terminator target setters).  A
raw list splice leaves those structures describing a program that no
longer exists — the stale-link silent-miscompile class that PR-5 killed
by construction and the verifier now cross-checks.  The verifier makes
a bypass an error *eventually*; this rule makes it an error at the edit
site.
"""

import ast

from repro.lint.core import Rule, register_rule


def _is_self(node):
    return isinstance(node, ast.Name) and node.id == "self"


def _container_attr(node, config):
    """``node`` as an IR-container attribute access ``recv.instructions``
    / ``recv.blocks`` on a non-``self`` receiver, else None."""
    if isinstance(node, ast.Attribute) and \
            node.attr in config.container_attrs and \
            not _is_self(node.value):
        return node
    return None


@register_rule
class ContainerMutationRule(Rule):
    """Direct list mutation of ``.blocks``/``.instructions``."""

    code = "R001"
    name = "raw-container-mutation"
    history = ("PR-5 stale-link miscompiles: raw splices of "
               "function.blocks/block.instructions bypass the mutation "
               "API, so the maintained reverse CFG and block-position "
               "index go stale and a later pass miscompiles silently.")

    MESSAGE = ("direct {what} mutation of '.{attr}' bypasses the IR "
               "mutation API (use BasicBlock.append/insert/"
               "remove_instruction/set_terminator, Function.remove_block/"
               "set_blocks, or block placement helpers)")

    def check(self, ctx):
        config = ctx.config
        if config.in_ir(ctx.module_path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in config.list_mutators:
                    container = _container_attr(func.value, config)
                    if container is not None:
                        yield self.finding(
                            node,
                            self.MESSAGE.format(
                                what=f"'.{func.attr}()'",
                                attr=container.attr),
                            symbol=func.attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    hit = self._del_target(target, config)
                    if hit is not None:
                        yield self.finding(
                            node,
                            self.MESSAGE.format(what="'del'",
                                                attr=hit.attr),
                            symbol="del")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    hit = self._assign_target(target, config)
                    if hit is not None:
                        yield self.finding(
                            node,
                            self.MESSAGE.format(what="assignment",
                                                attr=hit.attr),
                            symbol=hit.attr)

    @staticmethod
    def _del_target(target, config):
        # del x.instructions[i] / del x.instructions[a:b] / del x.blocks
        if isinstance(target, ast.Subscript):
            return _container_attr(target.value, config)
        return _container_attr(target, config)

    @staticmethod
    def _assign_target(target, config):
        # x.instructions[i] = ..., x.blocks[a:b] = ... (slice assign),
        # x.instructions = ... (container rebinding).
        if isinstance(target, ast.Subscript):
            return _container_attr(target.value, config)
        return _container_attr(target, config)


@register_rule
class PrivateIRStateRule(Rule):
    """Access to private IR bookkeeping outside ``ir/``."""

    code = "R005"
    name = "private-ir-state"
    history = ("PR-5 companion hazard: passes reading (or worse, "
               "writing) the maintained predecessor map or the "
               "block-position internals couple themselves to "
               "representation details; a write is the R001 class "
               "without even the list API's locality.")

    def check(self, ctx):
        config = ctx.config
        if config.in_ir(ctx.module_path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr in config.private_ir_attrs and \
                    not _is_self(node.value):
                yield self.finding(
                    node,
                    f"access to private IR bookkeeping '.{node.attr}' "
                    f"outside ir/ (use Block.predecessors()/"
                    f"pred_edge_count(), Function.block_positions(), or "
                    f"the mutation API)",
                    symbol=node.attr)
