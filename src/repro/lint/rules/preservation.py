"""R004: every pass declares its ``preserved_analyses`` explicitly.

History (PR-2): loop passes reported preheader-only mutations as
"unchanged", leaving cached dominator trees and loop nests describing a
CFG that had already grown a block — the stale-analysis hazard.  The
fix gave every pass a preservation contract, but the contract was only
*total by default*: a subclass that forgot to declare silently
inherited the abstract base's ``PRESERVE_NONE``, and nobody could tell
a deliberate "preserves nothing" from an unexamined one.  This rule
makes the contract total by construction: every ``Pass``/
``FunctionPass`` subclass (transitively, within its module) must carry
an explicit ``preserved_analyses`` assignment in its own class body.

The dynamic half — recomputing each claimed-preserved analysis after
every pass and diffing it against the cache — is
:mod:`repro.passes.audit` (the analog of LLVM's
``-verify-analysis-invalidation`` expensive checks).
"""

import ast

from repro.lint.core import Rule, register_rule


def _base_names(class_node):
    for base in class_node.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def _declares_preserved(class_node):
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "preserved_analyses":
                    return True
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == "preserved_analyses":
            return True
    return False


@register_rule
class PreservationContractRule(Rule):
    """Pass subclass without an explicit preservation declaration."""

    code = "R004"
    name = "undeclared-preservation"
    history = ("PR-2 stale-analysis hazard: passes without an explicit "
               "preservation contract silently inherit PRESERVE_NONE — "
               "safe but unexamined, and indistinguishable from a "
               "forgotten declaration when the default ever changes.")

    def check(self, ctx):
        config = ctx.config
        if not config.preservation_applies(ctx.module_path):
            return
        # One top-to-bottom sweep suffices: Python requires a base
        # class to exist before the subclass definition executes, so
        # in-module pass lineages appear in definition order.
        pass_classes = set(config.pass_base_names)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(name in pass_classes
                       for name in _base_names(node)):
                continue
            pass_classes.add(node.name)
            if not _declares_preserved(node):
                yield self.finding(
                    node,
                    f"pass class '{node.name}' does not declare "
                    f"preserved_analyses — declare the preservation "
                    f"contract explicitly (PRESERVE_NONE when the pass "
                    f"restructures the CFG); the preservation auditor "
                    f"(REPRO_AUDIT_ANALYSES=1) validates the claim",
                    symbol=node.name)
