"""R003: IR value semantics are defined once, in ``ir/arith.py``.

History (PR-6): four sites (the interpreter, the seed simulator,
constant folding, the frontend's constant-initializer evaluator)
computed signed division as ``int(a / b)`` — a truncation *through a
Python float*, which silently rounds any magnitude above 2**53.  So
``(2**62+1) sdiv 1`` executed as ``2**62`` while instcombine folded it
exactly: an optimized-vs-unoptimized divergence invisible to
differential testing because execution was wrong on both sides.  PR-6
moved every 64-bit value semantic into ``ir/arith.py``; this rule keeps
it there.

Two signatures are flagged:

- ``int(a / b)`` / ``int(a // b)`` anywhere outside ``ir/arith.py`` —
  the float-round-trip (or floor-instead-of-truncate) division idiom;
- any bare true division ``/`` inside the *value-semantics modules*
  (interpreter, simulators, constant folding, the const-initializer
  evaluator): those modules evaluate IR runtime values, so a division
  that does not route through ``repro.ir.arith`` is either the bug
  class or needs an explicit justification
  (``# replint: disable=R003``).
"""

import ast

from repro.lint.core import Rule, register_rule


@register_rule
class RawValueArithmeticRule(Rule):
    """Arithmetic on IR runtime values outside ``ir/arith.py``."""

    code = "R003"
    name = "raw-value-arithmetic"
    history = ("PR-6 sdiv miscompile: int(a / b) truncated quotients "
               "through a Python float, so (2**62+1) sdiv 1 executed "
               "as 2**62 while constant folding computed it exactly.")

    def check(self, ctx):
        config = ctx.config
        if config.is_arith(ctx.module_path):
            return
        value_module = config.is_value_module(ctx.module_path)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "int" and len(node.args) == 1 and \
                    isinstance(node.args[0], ast.BinOp) and \
                    isinstance(node.args[0].op,
                               (ast.Div, ast.FloorDiv)):
                idiom = ("int(a / b) rounds through a Python float "
                         "(exactness cliff at 2**53)"
                         if isinstance(node.args[0].op, ast.Div) else
                         "int(a // b) floors instead of truncating "
                         "toward zero")
                yield self.finding(
                    node,
                    f"{idiom}; IR division must use "
                    f"repro.ir.arith.sdiv_trunc / eval_int_binop",
                    symbol="int-div")
            elif value_module and isinstance(node, ast.BinOp) and \
                    isinstance(node.op, ast.Div):
                yield self.finding(
                    node,
                    "bare '/' in a value-semantics module: IR value "
                    "arithmetic must route through repro.ir.arith "
                    "(fdiv/eval_float_binop); if this is not an IR "
                    "value, justify with a disable comment",
                    symbol="div")
