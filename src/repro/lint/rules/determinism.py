"""R002: passes must not iterate set-typed values.

History (PR-2/PR-3): licm, loop-sink, and loop-unswitch iterated
``Loop.blocks`` — a ``set`` — so hoist/sink order followed CPython
object addresses and the optimized program differed run-to-run (the
fix, ``Loop.ordered_blocks()``, iterates in function block order).  A
pass's output must be a pure function of the input program; set
iteration anywhere in a transformation is the mechanical signature of
that bug class.

Detection is a conservative local type analysis: an expression is
set-typed when it is a set literal/comprehension, a ``set()``/
``frozenset()`` call, a set-operator combination of set-typed operands,
a set-method result (``union``/``intersection``/...), a local name
every assignment of which is set-typed, or a ``.blocks`` attribute on a
loop-named receiver (``Loop.blocks`` is a set; ``Function.blocks`` is
an ordered list, so receiver names decide).  Iterating inside an
order-insensitive consumer (``sum``/``any``/``all``/``min``/``max``/
``len``/``sorted``/``set``/``frozenset``) is exempt: no ordering can
leak through it.
"""

import ast

from repro.lint.core import Rule, register_rule

_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _scope_walk(root):
    """Walk ``root`` without descending into nested function scopes."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _store_names(target):
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


class _ScopeTypes:
    """Set-typed local names of one scope, by conservative fixpoint."""

    def __init__(self, scope_root, config):
        self.config = config
        assigns = {}  # name -> [value expr or None (opaque store)]

        def record(name, value):
            assigns.setdefault(name, []).append(value)

        body = scope_root
        for node in _scope_walk(body):
            if node is body and isinstance(body, _SCOPE_NODES):
                for arg_node in ast.walk(node.args):
                    if isinstance(arg_node, ast.arg):
                        record(arg_node.arg, None)
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        record(target.id, node.value)
                    else:
                        for name in _store_names(target):
                            record(name, None)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    record(node.target.id, node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    # x |= y keeps a set a set; any other augmented op
                    # is opaque.
                    if isinstance(node.op, _SET_BINOPS):
                        record(node.target.id, node.value)
                    else:
                        record(node.target.id, None)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    record(node.target.id, node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in _store_names(node.target):
                    record(name, None)
            elif isinstance(node, ast.comprehension):
                for name in _store_names(node.target):
                    record(name, None)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    for name in _store_names(node.optional_vars):
                        record(name, None)
            elif isinstance(node, ast.ExceptHandler):
                if node.name:
                    record(node.name, None)
            elif isinstance(node, _SCOPE_NODES + (ast.ClassDef,)):
                if getattr(node, "name", None):
                    record(node.name, None)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    record(alias.asname or alias.name.split(".")[0],
                           None)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                for name in node.names:
                    record(name, None)

        self.setnames = set()
        changed = True
        while changed:
            changed = False
            for name, values in assigns.items():
                if name in self.setnames:
                    continue
                if values and all(
                        value is not None and self.is_setlike(value)
                        for value in values):
                    self.setnames.add(name)
                    changed = True

    def is_setlike(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and \
                    func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and \
                    func.attr in _SET_METHODS and \
                    self.is_setlike(func.value):
                return True
            return False
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, _SET_BINOPS):
            return self.is_setlike(node.left) or \
                self.is_setlike(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.setnames
        if isinstance(node, ast.Attribute) and node.attr == "blocks" \
                and isinstance(node.value, ast.Name) \
                and self.config.looks_like_loop_receiver(node.value.id):
            return True
        return False


@register_rule
class SetIterationRule(Rule):
    """Iteration over a set-typed expression in a pass module."""

    code = "R002"
    name = "set-iteration"
    history = ("PR-2/PR-3 nondeterministic passes: licm/loop-sink/"
               "loop-unswitch iterated Loop.blocks (a set), so the "
               "optimized program depended on object addresses and "
               "differed run-to-run.")

    MESSAGE = ("iteration over a set-typed value follows object "
               "addresses and varies run-to-run; iterate a "
               "deterministically ordered view instead (e.g. "
               "Loop.ordered_blocks(), sorted(...))")

    def check(self, ctx):
        config = ctx.config
        if not config.in_passes(ctx.module_path):
            return
        scopes = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, _SCOPE_NODES):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(scope, config)

    def _check_scope(self, scope, config):
        types = _ScopeTypes(scope, config)
        # Generator expressions consumed whole by an order-insensitive
        # callable cannot leak iteration order.
        safe_genexps = set()
        for node in _scope_walk(scope):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in config.order_safe_calls:
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        safe_genexps.add(id(arg))
        for node in _scope_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if types.is_setlike(node.iter):
                    yield self.finding(node.iter, self.MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.DictComp)) or (
                    isinstance(node, ast.GeneratorExp)
                    and id(node) not in safe_genexps):
                for generator in node.generators:
                    if types.is_setlike(generator.iter):
                        yield self.finding(generator.iter, self.MESSAGE)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("list", "tuple", "enumerate"):
                for arg in node.args[:1]:
                    if types.is_setlike(arg):
                        yield self.finding(
                            arg, self.MESSAGE + (
                                f" (the '{node.func.id}()' result "
                                f"fixes the nondeterministic order "
                                f"into an ordered container)"))
