"""Rule modules — importing them populates the registry."""

from repro.lint.rules import arith_rules  # noqa: F401
from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import mutation  # noqa: F401
from repro.lint.rules import preservation  # noqa: F401
