"""File discovery, rule execution, and report rendering."""

import ast
import json
from pathlib import Path

from repro.lint.config import DEFAULT_CONFIG
from repro.lint.core import Finding, all_rules
from repro.lint.suppress import apply_suppressions, suppressions

#: JSON report schema version (tests pin it).
JSON_VERSION = 1


class FileContext:
    """Everything a rule needs about one parsed file."""

    __slots__ = ("tree", "module_path", "config", "source")

    def __init__(self, tree, module_path, config, source):
        self.tree = tree
        self.module_path = module_path
        self.config = config
        self.source = source


class LintReport:
    """Findings plus bookkeeping for one lint run."""

    def __init__(self):
        self.findings = []
        self.suppressed = []
        self.files = 0
        self.errors = []  # (path, message) for unparsable files

    @property
    def exit_code(self):
        return 1 if (self.findings or self.errors) else 0

    def counts(self):
        table = {}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return dict(sorted(table.items()))

    def sort(self):
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)


def module_rel_path(path):
    """Path relative to the innermost ``repro`` package root, with
    forward slashes (``src/repro/ir/arith.py`` -> ``ir/arith.py``).
    Files outside a ``repro`` package keep their name — the
    location-scoped rules simply do not apply to them."""
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return parts[-1]


def lint_source(source, module_path, config=None, rules=None,
                path=None):
    """Lint one source string; returns (findings, suppressed).

    This is the fixture-test entry point: ``module_path`` places the
    snippet in the package layout the location-scoped rules care about
    (``passes/x.py``, ``ir/x.py``, ``sim/tape.py``, ...).
    """
    config = config or DEFAULT_CONFIG
    if rules is None:
        rules = all_rules(config.enabled_rules)
    tree = ast.parse(source)
    ctx = FileContext(tree, module_path, config, source)
    findings = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    for finding in findings:
        finding.path = path or module_path
    kept, suppressed = apply_suppressions(findings, suppressions(source))
    return kept, suppressed


def iter_python_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path


def lint_file(path, config=None, rules=None, report=None):
    """Lint one file into ``report`` (created when omitted)."""
    report = report if report is not None else LintReport()
    config = config or DEFAULT_CONFIG
    if rules is None:
        rules = all_rules(config.enabled_rules)
    try:
        source = Path(path).read_text()
    except OSError as error:
        report.errors.append((str(path), f"unreadable: {error}"))
        return report
    try:
        kept, suppressed = lint_source(
            source, module_rel_path(path), config=config, rules=rules,
            path=str(path))
    except SyntaxError as error:
        report.errors.append((str(path), f"syntax error: {error}"))
        return report
    report.files += 1
    report.findings.extend(kept)
    report.suppressed.extend(suppressed)
    return report


def lint_paths(paths, config=None, rules=None):
    """Lint every ``*.py`` under ``paths``; returns a LintReport."""
    config = config or DEFAULT_CONFIG
    if rules is None:
        rules = all_rules(config.enabled_rules)
    report = LintReport()
    for path in iter_python_files(paths):
        lint_file(path, config=config, rules=rules, report=report)
    report.sort()
    return report


# -- rendering ---------------------------------------------------------------

def render_human(report):
    lines = []
    for path, message in report.errors:
        lines.append(f"{path}: error: {message}")
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}:"
                     f"{finding.col + 1}: {finding.rule} "
                     f"{finding.message}")
    counts = report.counts()
    summary = ", ".join(f"{rule}={n}" for rule, n in counts.items()) \
        or "no findings"
    lines.append(f"replint: {len(report.findings)} finding(s) in "
                 f"{report.files} file(s) ({summary}; "
                 f"{len(report.suppressed)} suppressed)")
    return "\n".join(lines)


def render_json(report):
    return json.dumps({
        "version": JSON_VERSION,
        "files": report.files,
        "findings": [f.as_dict() for f in report.findings],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "counts": report.counts(),
        "errors": [{"file": path, "message": message}
                   for path, message in report.errors],
    }, indent=2)
