"""CLI: ``python -m repro.lint [paths...]``.

Exits 0 on a clean tree, 1 when findings (or unparsable files) remain —
suitable as a CI gate next to ruff.
"""

import argparse
import sys

from repro.lint.core import RULE_REGISTRY, all_rules
from repro.lint.runner import lint_paths, render_human, render_json


def _list_rules():
    lines = []
    for code in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[code]
        lines.append(f"{code} [{rule.name}]")
        lines.append(f"    {rule.history}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project static analysis: each rule encodes one "
                    "shipped miscompile class (see --list-rules).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human")
    parser.add_argument("--rules", metavar="R001,R002",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = None
    if args.rules:
        try:
            rules = all_rules([c.strip()
                               for c in args.rules.split(",") if c])
        except KeyError as error:
            parser.error(str(error))

    report = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_human(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
