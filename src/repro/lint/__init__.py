"""replint — project static analysis that encodes our miscompile history.

Every shipped miscompile class in this repro's history had a syntactic
signature that could have been caught mechanically before it ran:

- **R001** — raw ``.blocks``/``.instructions`` list mutation outside the
  ``ir/`` container modules (the PR-5 stale-link silent-miscompile
  class: a bypassed mutation API leaves the maintained reverse CFG and
  block-position index describing a program that no longer exists).
- **R002** — iteration over set-typed expressions in ``passes/`` (the
  PR-2/PR-3 nondeterminism class: set order follows object addresses,
  so a pass's output stops being a pure function of its input program).
- **R003** — raw arithmetic on IR runtime values outside ``ir/arith.py``
  (the PR-6 sdiv class: ``int(a / b)`` rounds through a Python float,
  so ``(2**62+1) sdiv 1`` executed as ``2**62`` while constant folding
  computed it exactly).
- **R004** — ``Pass``/``FunctionPass`` subclasses without an explicit
  ``preserved_analyses`` declaration (the PR-2 stale-analysis hazard:
  an undeclared preservation contract is a contract nobody audited).
- **R005** — access to private IR bookkeeping (``_preds``, the
  block-position internals) outside ``ir/`` (reading maintained state
  directly couples passes to representation details the mutation API
  exists to hide — and writing it is the R001 class without the API's
  invariants).

The linter is an AST-visitor framework: rules are small visitors
registered in a rule registry, findings can be suppressed per line with
``# replint: disable=R001`` comments (append a justification), and the
CLI (``python -m repro.lint src/``) exits nonzero when findings remain
— wired next to ruff in CI so a regression of a historical bug class is
an edit-site error, not a verifier error three layers later.

The dynamic half of the same contract — recomputing every
claimed-preserved analysis after each pass and diffing it against the
cache — lives in :mod:`repro.passes.audit`.
"""

from repro.lint.config import LintConfig
from repro.lint.core import Finding, Rule, all_rules, register_rule
from repro.lint.runner import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    render_human,
    render_json,
)

# Importing the rule modules populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (side effect)

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_human",
    "render_json",
]
