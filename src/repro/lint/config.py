"""Lint configuration: where each rule applies and what it watches.

The defaults describe *this* repository's layout (the ``repro``
package).  Paths are module-relative to the ``repro`` package root with
forward slashes — ``ir/arith.py``, ``passes/licm.py`` — which keeps the
rules independent of where the checkout lives.  Tests construct custom
configs to exercise rules against synthetic module paths.
"""

from dataclasses import dataclass, field


#: List-mutating methods whose call on an IR container bypasses the
#: mutation API (R001).
LIST_MUTATORS = frozenset({
    "append", "insert", "remove", "pop", "clear", "extend",
    "sort", "reverse",
})

#: IR container attributes maintained by the mutation API.
CONTAINER_ATTRS = frozenset({"instructions", "blocks"})

#: Calls that consume an iterable order-insensitively: iterating a set
#: *inside* them cannot leak nondeterminism into the output program.
ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset",
})

#: Private IR bookkeeping attributes (maintained reverse CFG edges and
#: the block-position index) that only ``ir/`` itself may touch (R005).
PRIVATE_IR_ATTRS = frozenset({
    "_preds", "_positions", "_invalidate_positions", "_add_pred",
    "_remove_pred", "_connect_terminator", "_disconnect_terminator",
    "_place",
})


@dataclass(frozen=True)
class LintConfig:
    #: Module-path prefixes that ARE the IR container layer: R001/R005
    #: do not apply inside them.
    ir_prefixes: tuple = ("ir/",)

    #: Module-path prefixes holding transformation passes: R002 (set
    #: iteration) and R004 (preservation contract) apply here.
    pass_prefixes: tuple = ("passes/",)

    #: The one module allowed to define IR value arithmetic.
    arith_module: str = "ir/arith.py"

    #: Modules that evaluate IR runtime values (interpreters,
    #: simulators, constant folding, the frontend's constant-expression
    #: evaluator): any true division here must route through
    #: ``ir/arith.py`` (R003).
    value_modules: tuple = (
        "ir/interpreter.py",
        "sim/machine.py",
        "sim/tape.py",
        "passes/utils.py",
        "passes/sccp.py",
        "passes/instcombine.py",
        "lang/irgen.py",
    )

    #: Modules exempt from R004: the framework module that *defines*
    #: the Pass/FunctionPass contract (its default is the abstract
    #: declaration every concrete pass must override explicitly).
    preservation_exempt: tuple = ("passes/base.py",)

    #: Base-class names that make a class a pass (R004).
    pass_base_names: frozenset = frozenset({"Pass", "FunctionPass"})

    #: Receiver-name hints for the set-typed ``Loop.blocks`` attribute
    #: (``Function.blocks`` is an ordered list; ``Loop.blocks`` is a
    #: set).  A ``.blocks`` access is treated as set-typed when the
    #: receiver's name matches one of these (exact or substring
    #: "loop").
    loop_receiver_names: frozenset = frozenset({"lp", "subloop", "l"})

    container_attrs: frozenset = CONTAINER_ATTRS
    list_mutators: frozenset = LIST_MUTATORS
    order_safe_calls: frozenset = ORDER_SAFE_CALLS
    private_ir_attrs: frozenset = PRIVATE_IR_ATTRS

    #: Rule codes to run (None = every registered rule).
    enabled_rules: tuple = field(default=None)

    # -- path predicates --------------------------------------------------
    def in_ir(self, module_path):
        return any(module_path.startswith(p) for p in self.ir_prefixes)

    def in_passes(self, module_path):
        return any(module_path.startswith(p) for p in self.pass_prefixes)

    def is_arith(self, module_path):
        return module_path == self.arith_module

    def is_value_module(self, module_path):
        return module_path in self.value_modules

    def preservation_applies(self, module_path):
        return (self.in_passes(module_path)
                and module_path not in self.preservation_exempt)

    def looks_like_loop_receiver(self, name):
        return name in self.loop_receiver_names or "loop" in name.lower()


DEFAULT_CONFIG = LintConfig()
