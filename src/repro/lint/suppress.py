"""``# replint: disable=Rxxx`` suppression comments.

A finding is suppressed when the physical line it is reported on (the
statement's first line) carries a comment of the form::

    something()  # replint: disable=R001
    other()      # replint: disable=R002,R003 -- justification text

Suppressions are extracted with :mod:`tokenize` so a ``#`` inside a
string literal can never be misread as a comment.  Unparsable files
yield no suppressions (the runner reports the syntax error itself).
"""

import io
import re
import tokenize

_DIRECTIVE = re.compile(
    r"#\s*replint:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)")


def suppressions(source):
    """Map of line number -> frozenset of suppressed rule codes."""
    table = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip() for code in match.group(1).split(","))
            line = token.start[0]
            table[line] = table.get(line, frozenset()) | codes
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return {}
    return table


def apply_suppressions(findings, table):
    """Split ``findings`` into (kept, suppressed) per the table."""
    kept, suppressed = [], []
    for finding in findings:
        if finding.rule in table.get(finding.line, ()):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed
