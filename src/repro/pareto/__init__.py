"""Pareto-dominance tooling (paper §III-D references probabilistic
dominance [34] for quantifying PSS quasi-optimality)."""

from repro.pareto.dominance import (
    dominates,
    hypervolume_2d,
    pareto_front,
    probabilistic_dominance,
)

__all__ = ["dominates", "pareto_front", "hypervolume_2d",
           "probabilistic_dominance"]
