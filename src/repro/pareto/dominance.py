"""Pareto dominance over objective vectors (all objectives minimized)."""

import numpy as np


def dominates(a, b, epsilon=0.0):
    """True if ``a`` Pareto-dominates ``b``: no worse everywhere,
    strictly better somewhere (with an optional epsilon slack)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b + epsilon) and np.any(a < b - epsilon))


def pareto_front(points):
    """Indices of the non-dominated points."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    front = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i != j and dominates(points[j], points[i]):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def hypervolume_2d(points, reference):
    """Hypervolume (area) dominated by a 2-D front w.r.t. ``reference``
    (both objectives minimized)."""
    points = np.asarray(points, dtype=float)
    front = sorted((tuple(points[i]) for i in pareto_front(points)))
    area = 0.0
    previous_x = None
    previous_y = reference[1]
    for x, y in front:
        if x >= reference[0] or y >= reference[1]:
            continue
        if previous_x is None:
            area += (reference[0] - x) * (reference[1] - y)
        else:
            # Only the strip between the previous point's y and this one.
            area += (reference[0] - x) * max(previous_y - y, 0.0)
        previous_x = x
        previous_y = min(previous_y, y)
    return area


def probabilistic_dominance(samples_a, samples_b, seed=0,
                            n_pairs=10_000):
    """P(a dominates b) under sampling noise (Khosravi et al. [34]).

    ``samples_a``/``samples_b``: arrays of repeated objective
    measurements, shape (n_samples, n_objectives).  Estimates the
    probability that a random draw of A dominates a random draw of B.
    """
    samples_a = np.asarray(samples_a, dtype=float)
    samples_b = np.asarray(samples_b, dtype=float)
    rng = np.random.default_rng(seed)
    ia = rng.integers(samples_a.shape[0], size=n_pairs)
    ib = rng.integers(samples_b.shape[0], size=n_pairs)
    a = samples_a[ia]
    b = samples_b[ib]
    wins = np.all(a <= b, axis=1) & np.any(a < b, axis=1)
    return float(wins.mean())
