"""Sharded cross-process content-addressed result store (the compile
farm's durable tier).

The per-process :class:`repro.engine.cache.EvaluationCache` answers the
question "has *this* client seen this point?".  The farm store answers
the question the ROADMAP's "millions of users" shape needs: "has
*anyone* seen it?" — many search/RL clients and process-pool workers
share one on-disk index, so any client's miss becomes every client's
hit.

Layout (``root`` is the ``--farm-dir``)::

    root/
      shard-00/ .. shard-<n>/     key-space shards (hex prefix of the
                                  sha256 cache key modulo ``shards``)
        seg-<pid>-<token>.jsonl.active   this process's open segment
        seg-<pid>-<token>-000001.jsonl   sealed (immutable) segments
        merged-000003-<token>.jsonl      compacted segment
        compact.lock                     compaction mutual exclusion
      _stats/<pid>-<token>.json   per-process counters (aggregated for
                                  the cross-process hit-rate report)

Concurrency model — the invariants that make this safe without any
cross-process locking on the hot path:

- **Single-writer segments.**  Every ``(process, store instance)`` pair
  appends to its own ``.active`` segment file, named by pid plus a
  random per-instance token (fork-safe: a store notices a pid change
  and re-keys itself).  No two writers ever share a file, so appends
  cannot interleave; a crash can only tear the *final* line of one
  segment, which readers skip.
- **Entries are immutable.**  Keys are content addresses, so duplicate
  keys across segments carry bit-identical payloads and readers may
  take any occurrence.
- **Atomic publication.**  A line is visible only once its trailing
  newline is on disk; compaction publishes its merged segment with the
  ``os.replace`` idiom (write ``.tmp``, replace) and only ever merges
  *sealed* files, never a writer's ``.active`` segment — so compaction
  can never lose a concurrent write.
- **Readers self-heal.**  Readers keep a per-shard index of
  ``key -> (file, offset, length)`` refreshed incrementally from
  segment tails; when compaction unlinks a file under them they drop
  the shard index and rebuild from the current directory listing.
"""

import json
import os
import threading
import time
import zlib


#: Segments grow to this size before being sealed (made immutable and
#: eligible for compaction).
DEFAULT_SEAL_BYTES = 1 << 18
#: Compaction triggers when a shard holds at least this many sealed /
#: merged segments.
DEFAULT_COMPACT_AFTER = 8
#: ``.tmp`` files (and stale ``compact.lock`` files) older than this are
#: removed by the startup sweep — young ones may belong to a live
#: writer.
DEFAULT_TMP_MAX_AGE = 60.0

_COUNTERS = ("hits", "misses", "stores", "cross_hits", "compactions",
             "segments_merged", "orphans_swept", "corrupt_lines",
             "checksum_skips")


def _encode_line(key, payload):
    """One checksummed segment line: the ``{"k","p"}`` record with a
    CRC32 of its own serialization spliced in as ``"c"``.  A torn or
    bit-flipped line then fails either JSON framing or the checksum,
    and readers skip it like a torn tail."""
    body = json.dumps({"k": key, "p": payload}, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    return (body[:-1] + f',"c":{crc}}}\n').encode("utf-8")


def _decode_line(line):
    """Parse one segment line; returns ``(key, payload, status)`` where
    status is ``"ok"``, ``"corrupt"`` (bad JSON framing) or
    ``"checksum"`` (framed but fails its own CRC).  Lines without a
    ``"c"`` field (pre-checksum builds) stay valid."""
    try:
        record = json.loads(line)
        key = record["k"]
        payload = record["p"]
    except (ValueError, KeyError, TypeError):
        return None, None, "corrupt"
    crc = record.get("c")
    if crc is not None:
        body = json.dumps({"k": key, "p": payload},
                          separators=(",", ":"))
        if zlib.crc32(body.encode("utf-8")) != crc:
            return None, None, "checksum"
    return key, payload, "ok"


class StoreStats:
    """Per-shard and total counters for one store instance."""

    def __init__(self, shards):
        self.shards = [dict.fromkeys(_COUNTERS, 0)
                       for _ in range(shards)]

    def bump(self, shard, counter, amount=1):
        self.shards[shard][counter] += amount

    def totals(self):
        total = dict.fromkeys(_COUNTERS, 0)
        for shard in self.shards:
            for counter, value in shard.items():
                total[counter] += value
        lookups = total["hits"] + total["misses"]
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        return total

    def as_dict(self):
        return {"totals": self.totals(),
                "per_shard": [dict(shard) for shard in self.shards]}


class _Shard:
    """Reader bookkeeping for one shard directory."""

    def __init__(self, path):
        self.path = path
        self.index = {}  # key -> (segment path, offset, length)
        self.tails = {}  # segment path -> bytes parsed so far


def _new_token():
    return os.urandom(4).hex()


class ShardedStore:
    """Sharded on-disk content-addressed store, safe under concurrent
    readers and writers from many processes (see module docstring)."""

    def __init__(self, root, shards=16, seal_bytes=DEFAULT_SEAL_BYTES,
                 compact_after=DEFAULT_COMPACT_AFTER,
                 tmp_max_age=DEFAULT_TMP_MAX_AGE, chaos=None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        #: Optional :class:`repro.engine.chaos.ChaosInjector`: lets the
        #: fault harness raise I/O errors and corrupt/truncate lines on
        #: this store's read/write paths deterministically.
        self.chaos = chaos
        self.root = os.path.abspath(root)
        self.n_shards = shards
        self.seal_bytes = seal_bytes
        self.compact_after = compact_after
        self.tmp_max_age = tmp_max_age
        self.stats = StoreStats(shards)
        self._lock = threading.RLock()
        self._pid = os.getpid()
        self._token = _new_token()
        self._seal_counter = 0
        self._shards = {}
        os.makedirs(self.root, exist_ok=True)
        self.sweep_orphans()

    # -- identity ---------------------------------------------------------
    def _ensure_process(self):
        """Re-key after a fork: the child must never append to the
        parent's segment files (single-writer invariant)."""
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._token = _new_token()
            self._seal_counter = 0
            self.stats = StoreStats(self.n_shards)

    def shard_of(self, key):
        return int(key[:8], 16) % self.n_shards

    def _shard_dir(self, shard):
        return os.path.join(self.root, f"shard-{shard:02x}")

    def _shard(self, shard):
        state = self._shards.get(shard)
        if state is None:
            state = self._shards[shard] = _Shard(self._shard_dir(shard))
        return state

    def _active_path(self, shard):
        return os.path.join(
            self._shard_dir(shard),
            f"seg-{self._pid}-{self._token}.jsonl.active")

    # -- crash hygiene ----------------------------------------------------
    def sweep_orphans(self, max_age=None):
        """Remove ``*.tmp`` files (and stale ``compact.lock`` files)
        older than ``max_age`` seconds — debris of writer processes
        killed mid-publish.  Returns the number of files removed."""
        max_age = self.tmp_max_age if max_age is None else max_age
        cutoff = time.time() - max_age
        swept = 0
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                if not (name.endswith(".tmp") or name == "compact.lock"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        swept += 1
                except OSError:  # pragma: no cover - raced with owner
                    continue
        if swept:
            self.stats.bump(0, "orphans_swept", swept)
        return swept

    # -- write path -------------------------------------------------------
    def put(self, key, payload):
        """Append one entry; visible to every process once written."""
        if self.chaos is not None:
            self.chaos.on_store_op("put", key)
        with self._lock:
            self._ensure_process()
            shard = self.shard_of(key)
            state = self._shard(shard)
            data = _encode_line(key, payload)
            if self.chaos is not None:
                data = self.chaos.mangle_line(key, data)
            path = self._active_path(shard)
            os.makedirs(state.path, exist_ok=True)
            with open(path, "ab") as handle:
                offset = handle.tell()
                handle.write(data)
                size = offset + len(data)
            if data.endswith(b"\n"):
                # Only an intact framed line enters our own index; a
                # (chaos-)torn write is left for readers to skip.
                state.index[key] = (path, offset, len(data))
                state.tails[path] = size
            else:
                # Torn tail: seal the segment so the damage stays at a
                # file end (the crashed-writer shape readers handle).
                state.tails[path] = size
                self._seal(shard, path)
                path = None
            self.stats.bump(shard, "stores")
            if path is not None and size >= self.seal_bytes:
                self._seal(shard, path)
            self._flush_stats()

    def _seal(self, shard, active_path):
        """Make this process's active segment immutable (rename is
        atomic; only the owning writer ever renames its segment)."""
        state = self._shard(shard)
        self._seal_counter += 1
        sealed = os.path.join(
            state.path, f"seg-{self._pid}-{self._token}"
                        f"-{self._seal_counter:06d}.jsonl")
        try:
            os.rename(active_path, sealed)
        except OSError:  # pragma: no cover - active vanished
            return
        # Keep our own index hot across the rename.
        size = state.tails.pop(active_path, 0)
        state.tails[sealed] = size
        for key, (path, offset, length) in list(state.index.items()):
            if path == active_path:
                state.index[key] = (sealed, offset, length)
        self.maybe_compact(shard)

    # -- read path --------------------------------------------------------
    def get(self, key):
        """The payload stored for ``key``, or None."""
        if self.chaos is not None:
            self.chaos.on_store_op("get", key)
        with self._lock:
            self._ensure_process()
            shard = self.shard_of(key)
            state = self._shard(shard)
            entry = state.index.get(key)
            if entry is None:
                self._refresh(shard)
                entry = state.index.get(key)
            if entry is None:
                payload = self._legacy_load(key)
                self.stats.bump(shard,
                                "hits" if payload is not None
                                else "misses")
                return payload
            payload = self._read_entry(shard, entry)
            if payload is None:
                # Compaction moved the segment under us (or the indexed
                # line fails its checksum): rebuild the shard view from
                # the current directory listing.
                self._shards[shard] = state = _Shard(state.path)
                self._refresh(shard)
                entry = state.index.get(key)
                payload = self._read_entry(shard, entry) if entry \
                    else None
            if payload is None:
                self.stats.bump(shard, "misses")
                return None
            self.stats.bump(shard, "hits")
            if f"-{self._token}" not in os.path.basename(entry[0]):
                self.stats.bump(shard, "cross_hits")
                self._flush_stats()
            return payload

    def _read_entry(self, shard, entry):
        path, offset, length = entry
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(length)
        except OSError:
            return None
        _, payload, status = _decode_line(data)
        if status == "checksum":
            self.stats.bump(shard, "checksum_skips")
        return payload

    def _segments(self, shard):
        try:
            names = os.listdir(self._shard_dir(shard))
        except OSError:
            return []
        return sorted(os.path.join(self._shard_dir(shard), name)
                      for name in names
                      if name.endswith(".jsonl")
                      or name.endswith(".jsonl.active"))

    def _refresh(self, shard):
        """Incrementally parse every segment's unseen tail bytes."""
        state = self._shard(shard)
        for path in self._segments(shard):
            tail = state.tails.get(path, 0)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size <= tail:
                continue
            try:
                with open(path, "rb") as handle:
                    handle.seek(tail)
                    data = handle.read(size - tail)
            except OSError:
                continue
            offset = tail
            consumed = 0
            for line in data.splitlines(keepends=True):
                if not line.endswith(b"\n"):
                    break  # torn final line of a crashed writer
                key, _, status = _decode_line(line)
                if status == "ok":
                    state.index[key] = (path, offset, len(line))
                elif status == "checksum":
                    self.stats.bump(shard, "checksum_skips")
                else:
                    self.stats.bump(shard, "corrupt_lines")
                offset += len(line)
                consumed += len(line)
            state.tails[path] = tail + consumed

    def _legacy_load(self, key):
        """Read the pre-farm one-JSON-file-per-entry layout, so warm
        directories written by older builds stay usable."""
        path = os.path.join(self.root, f"{key}.json")
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- compaction -------------------------------------------------------
    def maybe_compact(self, shard):
        """Merge the shard's sealed segments into one deduplicated
        segment when enough have accumulated.  Returns True if a
        compaction ran."""
        sealed = [path for path in self._segments(shard)
                  if not path.endswith(".active")]
        if len(sealed) < self.compact_after:
            return False
        return self.compact_shard(shard, sealed)

    def compact_shard(self, shard, sealed=None):
        """Merge ``sealed`` (immutable) segments under the shard's
        compaction lock; concurrent writers are unaffected because
        their ``.active`` segments are never touched."""
        with self._lock:
            state = self._shard(shard)
            if sealed is None:
                sealed = [path for path in self._segments(shard)
                          if not path.endswith(".active")]
            if len(sealed) < 2:
                return False
            lock_path = os.path.join(state.path, "compact.lock")
            if not self._acquire_lock(lock_path):
                return False
            try:
                merged = {}
                for path in sealed:
                    for key, line in self._scan_lines(shard, path):
                        merged[key] = line
                generation = 1 + max(
                    (self._generation(path) for path in sealed),
                    default=0)
                target = os.path.join(
                    state.path,
                    f"merged-{generation:06d}-{self._token}.jsonl")
                with open(target + ".tmp", "wb") as handle:
                    for line in merged.values():
                        handle.write(line)
                os.replace(target + ".tmp", target)
                for path in sealed:
                    try:
                        os.unlink(path)
                    except OSError:  # pragma: no cover - already gone
                        pass
                # Rebuild the reader view over the merged layout.
                self._shards[shard] = _Shard(state.path)
                self._refresh(shard)
                self.stats.bump(shard, "compactions")
                self.stats.bump(shard, "segments_merged", len(sealed))
                self._flush_stats()
                return True
            finally:
                try:
                    os.unlink(lock_path)
                except OSError:  # pragma: no cover - swept under us
                    pass

    def _scan_lines(self, shard, path):
        """Yield ``(key, raw line)`` for every intact line of a sealed
        segment."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            key, _, status = _decode_line(line)
            if status == "ok":
                yield key, line
            elif status == "checksum":
                self.stats.bump(shard, "checksum_skips")
            else:
                self.stats.bump(shard, "corrupt_lines")

    @staticmethod
    def _generation(path):
        name = os.path.basename(path)
        if not name.startswith("merged-"):
            return 0
        try:
            return int(name.split("-")[1])
        except (IndexError, ValueError):
            return 0

    def _acquire_lock(self, lock_path):
        for _ in range(2):
            try:
                fd = os.open(lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(self._pid).encode("ascii"))
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(lock_path)
                except OSError:
                    continue  # holder just released; retry
                if age <= self.tmp_max_age:
                    return False  # live compaction elsewhere
                try:
                    os.unlink(lock_path)  # stale: holder died
                except OSError:  # pragma: no cover - raced
                    return False
        return False

    # -- cross-process stats ---------------------------------------------
    def _stats_path(self):
        return os.path.join(self.root, "_stats",
                            f"{self._pid}-{self._token}.json")

    def _flush_stats(self):
        """Publish this instance's counters (atomically) so any process
        can aggregate the farm-wide view."""
        path = self._stats_path()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path + ".tmp", "w") as handle:
                json.dump(self.stats.totals(), handle)
            os.replace(path + ".tmp", path)
        except OSError:  # pragma: no cover - best effort
            pass

    def aggregate_stats(self):
        """Farm-wide counters summed over every process that ever
        touched this store (the cross-process hit-rate report)."""
        self._flush_stats()
        stats_dir = os.path.join(self.root, "_stats")
        total = dict.fromkeys(_COUNTERS, 0)
        processes = 0
        try:
            names = os.listdir(stats_dir)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(stats_dir, name)) as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue
            processes += 1
            for counter in _COUNTERS:
                total[counter] += int(snapshot.get(counter, 0))
        lookups = total["hits"] + total["misses"]
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        total["processes"] = processes
        return total

    def __len__(self):
        with self._lock:
            for shard in range(self.n_shards):
                self._refresh(shard)
            return sum(len(self._shard(s).index)
                       for s in range(self.n_shards))

    def __repr__(self):
        return (f"<ShardedStore {self.root} shards={self.n_shards} "
                f"pid={self._pid}>")
