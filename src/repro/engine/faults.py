"""Failure taxonomy, bounded retries, and poison-point quarantine for
the evaluation stack.

The evaluator (and the engine's in-process composed path) classify
every point failure into:

- **deterministic** — ``CompilationError``, ``SimulationError``, bad
  phase names: re-running cannot change the outcome, so the failure is
  final on the first attempt.
- **transient** — store/pipe I/O errors and other infrastructure
  hiccups: retried with deterministic backoff.
- **timeout** — the point exceeded its wall-clock deadline (worker-side
  alarm or the parent-side watchdog that killed a hung worker).
- **crash** — the point's worker died (``BrokenProcessPool`` / an
  injected crash): retried in isolation; repeat offenders are
  quarantined.

Quarantine is the poison-point ledger: a point whose evaluation kills
workers ``threshold`` times is recorded (spec fingerprint + cause) and
from then on answered with a structured failure instead of being
retried forever.  With a farm directory the ledger persists on disk
(one atomic JSON file per fingerprint under ``_quarantine/``), so every
client of the farm benefits from any client's discovery.

:class:`FaultStats` aggregates fault telemetry the same way the farm
store aggregates hit rates: local counters plus per-process snapshots
flushed under the farm's ``_faults/`` directory.
"""

import contextlib
import hashlib
import json
import os
import signal
import threading
import time
from collections import namedtuple

# -- failure taxonomy -----------------------------------------------------

DETERMINISTIC = "deterministic"
TRANSIENT = "transient"
TIMEOUT = "timeout"
CRASH = "crash"
QUARANTINED = "quarantined"
REJECTED = "rejected"
CANCELLED = "cancelled"

#: Kinds worth re-running: everything except a deterministic failure
#: (and the terminal bookkeeping kinds, which never reach the policy).
RETRYABLE_KINDS = (TRANSIENT, TIMEOUT, CRASH)

_KIND_COUNTERS = {DETERMINISTIC: "deterministic", TRANSIENT: "transient",
                  TIMEOUT: "timeouts", CRASH: "crashes"}


class EvalTimeout(Exception):
    """A point exceeded its wall-clock deadline."""


#: How a failed point travels back from workers: picklable, carrying
#: the classification and the attempt count alongside the context the
#: old ``(name, sequence, message)`` tuples had.
FailureInfo = namedtuple("FailureInfo",
                         "name sequence error kind attempts")


def classify_exception(error):
    """Map an exception to its failure kind (see module docstring)."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.engine.chaos import InjectedCrash

    if isinstance(error, EvalTimeout):
        return TIMEOUT
    if isinstance(error, (BrokenProcessPool, InjectedCrash)):
        return CRASH
    if isinstance(error, OSError):
        return TRANSIENT  # store/pipe/segment I/O — the world, not the point
    return DETERMINISTIC  # CompilationError, SimulationError, bad phases, ...


def counter_for_kind(kind):
    return _KIND_COUNTERS.get(kind, "transient")


# -- wall-clock deadlines -------------------------------------------------

@contextlib.contextmanager
def deadline(seconds):
    """Raise :class:`EvalTimeout` after ``seconds`` of wall clock.

    Uses ``SIGALRM``, so it is only armed on POSIX main threads — which
    covers process-pool workers (work runs on the worker's main thread)
    and serial evaluation from the CLI.  Elsewhere (thread pools, the
    scheduler's dispatchers) the parent-side watchdog in the evaluator
    is the enforcement, and this is a no-op.
    """
    if not seconds or os.name != "posix" or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def on_alarm(signum, frame):
        raise EvalTimeout(f"point exceeded {seconds}s deadline")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# -- retry policy ---------------------------------------------------------

class RetryPolicy:
    """Bounded retries with a deterministic backoff schedule.

    ``max_retries`` is the number of *re*-runs a point may get beyond
    its first attempt; ``delay(attempt)`` is a pure function of the
    attempt number (no jitter), so fault-injection runs are
    reproducible wall-clock included.
    """

    def __init__(self, max_retries=2, backoff=0.02, factor=2.0):
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        self.factor = factor

    def should_retry(self, kind, attempt):
        """May a point whose ``attempt``-th run failed as ``kind`` run
        again?"""
        return kind in RETRYABLE_KINDS and attempt <= self.max_retries

    def delay(self, attempt):
        if not self.backoff:
            return 0.0
        return self.backoff * (self.factor ** (attempt - 1))

    def __repr__(self):
        return (f"<RetryPolicy max_retries={self.max_retries} "
                f"backoff={self.backoff}>")


# -- spec identity --------------------------------------------------------

def point_fingerprint(spec):
    """Content fingerprint of one evaluation point (the quarantine
    ledger key): source + sequence + platform + seed + fuel.  Stable
    across processes, batches, and attempt decorations."""
    payload = "\x1f".join((
        str(spec.get("name", "")),
        hashlib.sha256(str(spec.get("source", ""))
                       .encode("utf-8")).hexdigest(),
        "\x1e".join(str(phase) for phase in spec.get("sequence", ())),
        str(spec.get("target", "")),
        str(spec.get("measurement_seed", "")),
        str(spec.get("fuel", "")),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- quarantine ledger ----------------------------------------------------

class Quarantine:
    """Poison-point ledger: strike counts per spec fingerprint.

    In-memory by default; with ``directory`` set (the farm's
    ``_quarantine/``), records are persisted one-atomic-file-per-point
    so concurrent clients share discoveries.  Records survive the
    processes that wrote them — exactly the reproducer-capture shape
    crash-recovering compiler infra uses.
    """

    def __init__(self, directory=None, threshold=3):
        self.directory = os.path.abspath(directory) if directory else None
        self.threshold = max(1, int(threshold))
        self._lock = threading.Lock()
        self._memory = {}
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)

    def _path(self, fingerprint):
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, fingerprint):
        """The strike record for a fingerprint, or None."""
        with self._lock:
            record = self._memory.get(fingerprint)
            if record is None and self.directory:
                try:
                    with open(self._path(fingerprint)) as handle:
                        record = json.load(handle)
                    self._memory[fingerprint] = record
                except (OSError, ValueError):
                    record = None
            return dict(record) if record else None

    def blocked(self, fingerprint):
        """The record if this point is quarantined (>= threshold
        strikes), else None."""
        record = self.get(fingerprint)
        if record and record.get("strikes", 0) >= self.threshold:
            return record
        return None

    def strike(self, fingerprint, name, sequence, cause):
        """Record one worker-killing offense; returns the new strike
        count (the caller compares against :attr:`threshold`)."""
        with self._lock:
            record = self._memory.get(fingerprint)
            if record is None and self.directory:
                try:
                    with open(self._path(fingerprint)) as handle:
                        record = json.load(handle)
                except (OSError, ValueError):
                    record = None
            if record is None:
                record = {"fingerprint": fingerprint, "name": name,
                          "sequence": list(sequence), "strikes": 0,
                          "causes": []}
            record["strikes"] = int(record.get("strikes", 0)) + 1
            record.setdefault("causes", []).append(str(cause))
            record["cause"] = str(cause)
            self._memory[fingerprint] = record
            if self.directory:
                path = self._path(fingerprint)
                try:
                    with open(path + ".tmp", "w") as handle:
                        json.dump(record, handle)
                    os.replace(path + ".tmp", path)
                except OSError:  # pragma: no cover - ledger best effort
                    pass
            return record["strikes"]

    def quarantined(self):
        """All records at or past the threshold (memory + disk)."""
        records = {}
        if self.directory:
            try:
                names = os.listdir(self.directory)
            except OSError:
                names = []
            for filename in names:
                if not filename.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(self.directory,
                                           filename)) as handle:
                        record = json.load(handle)
                except (OSError, ValueError):
                    continue
                records[record.get("fingerprint", filename)] = record
        with self._lock:
            records.update(self._memory)
        return [record for record in records.values()
                if record.get("strikes", 0) >= self.threshold]

    def __len__(self):
        return len(self.quarantined())

    def __repr__(self):
        where = self.directory or "memory"
        return f"<Quarantine {where} threshold={self.threshold}>"


# -- fault telemetry ------------------------------------------------------

_FAULT_COUNTERS = ("retries", "timeouts", "crashes", "transient",
                   "deterministic", "pool_respawns", "degradations",
                   "quarantined", "quarantine_blocks", "rejected",
                   "cancelled")


class FaultStats:
    """Thread-safe fault counters, aggregated farm-style: local values
    plus per-process snapshots under ``<farm>/_faults/`` that any
    process can sum for the cross-process view."""

    def __init__(self, farm_dir=None):
        self.farm_dir = os.path.abspath(farm_dir) if farm_dir else None
        self._lock = threading.Lock()
        self.counters = dict.fromkeys(_FAULT_COUNTERS, 0)
        self._token = os.urandom(4).hex()
        self._pid = os.getpid()

    def bump(self, counter, amount=1):
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def as_dict(self):
        with self._lock:
            return dict(self.counters)

    # -- farm-style aggregation ------------------------------------------
    def _stats_dir(self):
        return os.path.join(self.farm_dir, "_faults")

    def flush(self):
        """Publish this process's counters atomically (no-op without a
        farm directory)."""
        if not self.farm_dir:
            return
        if os.getpid() != self._pid:  # forked child: own snapshot file
            self._pid = os.getpid()
            self._token = os.urandom(4).hex()
        path = os.path.join(self._stats_dir(),
                            f"{self._pid}-{self._token}.json")
        try:
            os.makedirs(self._stats_dir(), exist_ok=True)
            with open(path + ".tmp", "w") as handle:
                json.dump(self.as_dict(), handle)
            os.replace(path + ".tmp", path)
        except OSError:  # pragma: no cover - telemetry best effort
            pass

    def aggregate(self):
        """Farm-wide fault counters summed over every process that
        flushed a snapshot; None without a farm directory."""
        if not self.farm_dir:
            return None
        self.flush()
        total = dict.fromkeys(_FAULT_COUNTERS, 0)
        processes = 0
        try:
            names = os.listdir(self._stats_dir())
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._stats_dir(),
                                       name)) as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue
            processes += 1
            for counter in _FAULT_COUNTERS:
                total[counter] += int(snapshot.get(counter, 0))
        total["processes"] = processes
        return total


# -- in-process recovery wrapper -----------------------------------------

def run_point_with_recovery(call, spec, *, retry, faults,
                            quarantine=None, chaos=None, timeout=None,
                            point_index=None, first_attempt=1):
    """Run one point in-process with the full recovery stack: quarantine
    check, chaos hooks, wall-clock deadline (main thread only), failure
    classification, and bounded deterministic-backoff retries.

    Returns the evaluator's ``(payload, FailureInfo | None)`` contract.
    This is the serial/composed-path sibling of the pool supervision in
    :class:`repro.engine.evaluator.PointEvaluator`.
    """
    from repro.engine.chaos import maybe_fail_point

    if quarantine is not None:
        record = quarantine.blocked(point_fingerprint(spec))
        if record is not None:
            faults.bump("quarantine_blocks")
            return None, FailureInfo(
                spec["name"], tuple(spec["sequence"]),
                f"quarantined after {record['strikes']} worker-killing "
                f"strikes ({record.get('cause', 'worker crash')})",
                QUARANTINED, 0)
    attempt = max(1, int(first_attempt))
    while True:
        decorated = dict(spec)
        decorated["attempt"] = attempt
        if timeout:
            decorated["timeout"] = timeout
        if chaos is not None:
            decorated["chaos"] = chaos
            if point_index is not None:
                decorated["chaos_point"] = point_index
        try:
            with deadline(timeout):
                maybe_fail_point(decorated)
                payload = call(decorated)
            return payload, None
        except Exception as error:  # noqa: BLE001 - classified below
            kind = classify_exception(error)
            faults.bump(counter_for_kind(kind))
            if retry is not None and retry.should_retry(kind, attempt):
                faults.bump("retries")
                time.sleep(retry.delay(attempt))
                attempt += 1
                continue
            return None, FailureInfo(spec["name"],
                                     tuple(spec["sequence"]),
                                     repr(error), kind, attempt)
