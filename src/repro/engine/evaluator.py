"""Deterministic serial/thread/process evaluation of compile->profile
points.

A *point* is one ``(program source, pass sequence)`` pair on one
platform.  :func:`evaluate_point` is a pure function of its spec dict —
it compiles the source, runs the sequence, extracts features and
profiles the result — so the same spec yields the same payload whether
it runs inline, on a thread, or in a worker process.

Measurement noise is derived from the *final* module fingerprint (see
:func:`point_measurement_seed`), so identical programs measure
identically regardless of evaluation order or worker count.  That is
what makes ``serial``/``thread``/``process`` modes bit-for-bit
equivalent and cached results indistinguishable from fresh ones.
"""

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

EXECUTION_MODES = ("serial", "thread", "process")

#: Per-process handles on shared farm stores, keyed by directory — one
#: store instance per (process, farm) so pool workers open each farm
#: once and keep its reader index warm across points.
_PROCESS_STORES = {}


def process_store(farm_dir):
    """This process's handle on the shared farm store at ``farm_dir``
    (fork-safe: a pid change discards inherited handles so a child
    never appends to its parent's segment files)."""
    from repro.engine.store import ShardedStore

    root = os.path.abspath(farm_dir)
    entry = _PROCESS_STORES.get(root)
    if entry is None or entry[0] != os.getpid():
        entry = (os.getpid(), ShardedStore(root))
        _PROCESS_STORES[root] = entry
    return entry[1]


class WorkerError(RuntimeError):
    """An evaluation failed inside a worker; carries the point context."""

    def __init__(self, name, sequence, cause):
        super().__init__(
            f"evaluation of {name!r} with sequence {tuple(sequence)!r} "
            f"failed: {cause}")
        self.name = name
        self.sequence = tuple(sequence)
        self.cause = cause


def point_measurement_seed(measurement_seed, result_fingerprint):
    """Per-point noise seed: base platform seed x final program content.

    Deriving from the final fingerprint (rather than a shared stateful
    RNG stream) keeps x86 RAPL noise seeded *and* order-independent.
    """
    digest = hashlib.sha256(
        f"{measurement_seed}\x1f{result_fingerprint}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "little")


def optimize_point(spec):
    """Compile the spec's source and run its sequence; returns
    ``(module, fingerprint, result_fingerprint, function_fingerprints)``.

    The two fingerprint values are composed from per-function digests
    through the shared analysis manager, so the optimized module's
    content address only pays for the functions the sequence changed.
    """
    from repro.ir.printer import module_fingerprint
    from repro.lang import compile_source
    from repro.passes import AnalysisManager, PassManager

    module = compile_source(spec["source"], module_name=spec["name"])
    # One analysis manager spans the whole sequence: passes share
    # dominator trees / loop nests, and the final fingerprint only
    # re-hashes functions the sequence actually changed.
    am = AnalysisManager()
    fingerprint = module_fingerprint(module, am)
    PassManager().run(module, list(spec["sequence"]), am=am)
    result_fingerprint = module_fingerprint(module, am)
    function_fingerprints = {function.name: am.fingerprint(function)
                             for function in module.defined_functions()}
    return module, fingerprint, result_fingerprint, function_fingerprints


def profile_optimized(spec, module, fingerprint, result_fingerprint,
                      function_fingerprints):
    """Feature-extract and profile an already-optimized module; returns
    the JSON-serializable cache payload."""
    from repro.features import extract_features
    from repro.sim import Platform

    seed = point_measurement_seed(spec["measurement_seed"],
                                  result_fingerprint)
    platform = Platform(spec["target"], measurement_seed=seed,
                        sim_engine=spec.get("sim_engine"))
    features = extract_features(module, platform)
    started = time.perf_counter()
    measurement = platform.profile(module,
                                   fuel=spec.get("fuel") or 20_000_000)
    profile_seconds = time.perf_counter() - started
    return {
        "fingerprint": fingerprint,
        "result_fingerprint": result_fingerprint,
        "function_fingerprints": function_fingerprints,
        "sequence": list(spec["sequence"]),
        "target": spec["target"],
        "measurement_seed": spec["measurement_seed"],
        "features": [float(v) for v in features],
        "metrics": {k: float(v)
                    for k, v in measurement.metrics().items()},
        "cycles": float(measurement.cycles),
        "code_size": int(measurement.code_size),
        "output": [[kind, value] for kind, value in measurement.output],
        "return_value": measurement.return_value,
        "profile_seconds": profile_seconds,
    }


def evaluate_point(spec):
    """Run one compile->optimize->profile point from a plain spec dict.

    Spec keys: ``source``, ``name``, ``sequence``, ``target``,
    ``measurement_seed``, ``fuel`` (optional), ``farm_dir`` (optional).
    Returns a JSON-serializable payload dict (the cache entry format).
    Top-level so it is picklable for process pools.

    With ``farm_dir`` set, the point composes through the shared farm:
    after running the (cheap) pass pipeline, the optimized module's
    content address is looked up in the cross-process result index, and
    feature extraction + codegen + simulation only run when no worker
    or client anywhere has measured that code before — the same
    function-granular composition the in-process engine applies, made
    visible to process pools.
    """
    farm_dir = spec.get("farm_dir")
    if farm_dir:
        return _evaluate_point_farm(spec, process_store(farm_dir))
    module, fingerprint, result_fingerprint, function_fingerprints = \
        optimize_point(spec)
    return profile_optimized(spec, module, fingerprint,
                             result_fingerprint, function_fingerprints)


def farm_result_key(spec, result_fingerprint):
    """The farm result-index key of an optimized module's content —
    identical to ``EvaluationEngine.result_key_for`` for the same
    platform/seed/fuel, so workers and clients feed one index."""
    from repro.engine.cache import cache_key

    return cache_key(result_fingerprint, (), spec["target"],
                     spec["measurement_seed"],
                     spec.get("fuel") or 20_000_000)


def _evaluate_point_farm(spec, store):
    module, fingerprint, result_fingerprint, function_fingerprints = \
        optimize_point(spec)
    result_key = farm_result_key(spec, result_fingerprint)
    stored = store.get(result_key)
    if stored is not None:
        payload = dict(stored)
        payload.update({
            "fingerprint": fingerprint,
            "result_fingerprint": result_fingerprint,
            "function_fingerprints": function_fingerprints,
            "sequence": list(spec["sequence"]),
            "measurement_seed": spec["measurement_seed"],
        })
        return payload
    payload = profile_optimized(spec, module, fingerprint,
                                result_fingerprint,
                                function_fingerprints)
    index_entry = dict(payload)
    index_entry.update({
        "fingerprint": result_fingerprint,
        "sequence": [],
    })
    store.put(result_key, index_entry)
    return payload


def _guarded_evaluate(spec):
    """evaluate_point wrapped so failures travel back as values (pool
    futures would otherwise lose the point context)."""
    try:
        return evaluate_point(spec), None
    except Exception as error:  # noqa: BLE001 - propagated to caller
        return None, (spec["name"], tuple(spec["sequence"]), repr(error))


class PointEvaluator:
    """Evaluates batches of specs in input order.

    ``mode='serial'`` is the deterministic reference; ``thread`` keeps a
    shared in-process cache warm while overlapping point evaluations;
    ``process`` sidesteps the GIL for CPU-bound simulation at the cost
    of per-worker interpreter startup.
    """

    def __init__(self, mode="serial", workers=None):
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {EXECUTION_MODES}")
        self.mode = mode
        self.workers = max(1, int(workers)) if workers else None

    def pool_size(self, n_items):
        """Worker count for a batch of ``n_items`` (configured width,
        else capped at 8) — the one sizing rule every pool that stands
        in for this evaluator must share."""
        return self.workers or min(8, n_items)

    def run(self, specs):
        """Evaluate all specs; returns ``(payload, error)`` pairs in the
        same order as the input (error is None on success)."""
        specs = list(specs)
        if not specs:
            return []
        if self.mode == "serial" or len(specs) == 1:
            return [_guarded_evaluate(spec) for spec in specs]
        executor_cls = (ThreadPoolExecutor if self.mode == "thread"
                        else ProcessPoolExecutor)
        with executor_cls(max_workers=self.pool_size(len(specs))) as pool:
            return list(pool.map(_guarded_evaluate, specs))
