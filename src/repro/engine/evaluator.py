"""Deterministic serial/thread/process evaluation of compile->profile
points, under fault supervision.

A *point* is one ``(program source, pass sequence)`` pair on one
platform.  :func:`evaluate_point` is a pure function of its spec dict —
it compiles the source, runs the sequence, extracts features and
profiles the result — so the same spec yields the same payload whether
it runs inline, on a thread, or in a worker process, and *whether or
not it had to be retried*: fault recovery can never change a result,
only whether one exists.

Measurement noise is derived from the *final* module fingerprint (see
:func:`point_measurement_seed`), so identical programs measure
identically regardless of evaluation order or worker count.  That is
what makes ``serial``/``thread``/``process`` modes bit-for-bit
equivalent and cached results indistinguishable from fresh ones.

Supervision (PR 8): :class:`PointEvaluator` no longer trusts its pools.

- **Per-point deadlines**: every dispatched spec carries the
  configured wall-clock ``timeout``; workers arm a ``SIGALRM`` alarm
  (:func:`repro.engine.faults.deadline`) and the parent keeps a
  watchdog with a grace factor, killing and respawning a process pool
  whose worker is hard-hung.
- **BrokenProcessPool recovery**: a died worker (OOM kill, injected
  crash) breaks the pool; the supervisor respawns it and re-runs the
  in-flight specs *one at a time* so the poison point identifies
  itself — innocent co-flyers are re-enqueued without penalty, the
  crasher collects quarantine strikes.
- **Classification + bounded retries**: failures come back as
  :class:`repro.engine.faults.FailureInfo` with a kind; only transient
  kinds (timeout/crash/I-O) are retried, with deterministic backoff.
- **Graceful degradation**: when the pool infrastructure breaks
  repeatedly (``degrade_after``), the evaluator steps down
  process -> thread -> serial for the remainder of the batch (and
  stays there for subsequent batches — a broken environment rarely
  heals itself mid-run).  Results stay bit-identical by construction.
"""

import hashlib
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool

from repro.engine.chaos import maybe_fail_point
from repro.engine.faults import (
    CRASH,
    QUARANTINED,
    TIMEOUT,
    FailureInfo,
    FaultStats,
    RetryPolicy,
    classify_exception,
    counter_for_kind,
    deadline,
    point_fingerprint,
    run_point_with_recovery,
)

EXECUTION_MODES = ("serial", "thread", "process")

#: Parent-side watchdog budget: the worker's own alarm should fire
#: first (factor x the deadline), the parent only steps in for hard
#: hangs the alarm cannot interrupt.
PROCESS_WATCHDOG_FACTOR = 2.0
PROCESS_WATCHDOG_SLACK = 0.25
#: Threads have no worker-side alarm, so the parent deadline is the
#: only enforcement — no grace factor beyond scheduling slack.
THREAD_WATCHDOG_SLACK = 0.05

#: Per-process handles on shared farm stores, keyed by directory — one
#: store instance per (process, farm) so pool workers open each farm
#: once and keep its reader index warm across points.
_PROCESS_STORES = {}


def process_store(farm_dir):
    """This process's handle on the shared farm store at ``farm_dir``
    (fork-safe: a pid change discards inherited handles so a child
    never appends to its parent's segment files)."""
    from repro.engine.store import ShardedStore

    root = os.path.abspath(farm_dir)
    entry = _PROCESS_STORES.get(root)
    if entry is None or entry[0] != os.getpid():
        entry = (os.getpid(), ShardedStore(root))
        _PROCESS_STORES[root] = entry
    return entry[1]


class WorkerError(RuntimeError):
    """An evaluation failed inside a worker; carries the point context
    and the failure classification."""

    def __init__(self, name, sequence, cause, kind=None):
        super().__init__(
            f"evaluation of {name!r} with sequence {tuple(sequence)!r} "
            f"failed: {cause}")
        self.name = name
        self.sequence = tuple(sequence)
        self.cause = cause
        self.kind = kind


def point_measurement_seed(measurement_seed, result_fingerprint):
    """Per-point noise seed: base platform seed x final program content.

    Deriving from the final fingerprint (rather than a shared stateful
    RNG stream) keeps x86 RAPL noise seeded *and* order-independent.
    """
    digest = hashlib.sha256(
        f"{measurement_seed}\x1f{result_fingerprint}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "little")


def optimize_point(spec):
    """Compile the spec's source and run its sequence; returns
    ``(module, fingerprint, result_fingerprint, function_fingerprints)``.

    The two fingerprint values are composed from per-function digests
    through the shared analysis manager, so the optimized module's
    content address only pays for the functions the sequence changed.
    """
    from repro.ir.printer import module_fingerprint
    from repro.lang import compile_source
    from repro.passes import AnalysisManager, PassManager

    module = compile_source(spec["source"], module_name=spec["name"])
    # One analysis manager spans the whole sequence: passes share
    # dominator trees / loop nests, and the final fingerprint only
    # re-hashes functions the sequence actually changed.
    am = AnalysisManager()
    fingerprint = module_fingerprint(module, am)
    PassManager().run(module, list(spec["sequence"]), am=am)
    result_fingerprint = module_fingerprint(module, am)
    function_fingerprints = {function.name: am.fingerprint(function)
                             for function in module.defined_functions()}
    return module, fingerprint, result_fingerprint, function_fingerprints


def profile_optimized(spec, module, fingerprint, result_fingerprint,
                      function_fingerprints):
    """Feature-extract and profile an already-optimized module; returns
    the JSON-serializable cache payload."""
    from repro.features import extract_features
    from repro.sim import Platform

    seed = point_measurement_seed(spec["measurement_seed"],
                                  result_fingerprint)
    platform = Platform(spec["target"], measurement_seed=seed,
                        sim_engine=spec.get("sim_engine"))
    features = extract_features(module, platform)
    started = time.perf_counter()
    measurement = platform.profile(module,
                                   fuel=spec.get("fuel") or 20_000_000)
    profile_seconds = time.perf_counter() - started
    return {
        "fingerprint": fingerprint,
        "result_fingerprint": result_fingerprint,
        "function_fingerprints": function_fingerprints,
        "sequence": list(spec["sequence"]),
        "target": spec["target"],
        "measurement_seed": spec["measurement_seed"],
        "features": [float(v) for v in features],
        "metrics": {k: float(v)
                    for k, v in measurement.metrics().items()},
        "cycles": float(measurement.cycles),
        "code_size": int(measurement.code_size),
        "output": [[kind, value] for kind, value in measurement.output],
        "return_value": measurement.return_value,
        "profile_seconds": profile_seconds,
    }


def evaluate_point(spec):
    """Run one compile->optimize->profile point from a plain spec dict.

    Spec keys: ``source``, ``name``, ``sequence``, ``target``,
    ``measurement_seed``, ``fuel`` (optional), ``farm_dir`` (optional).
    Returns a JSON-serializable payload dict (the cache entry format).
    Top-level so it is picklable for process pools.

    With ``farm_dir`` set, the point composes through the shared farm:
    after running the (cheap) pass pipeline, the optimized module's
    content address is looked up in the cross-process result index, and
    feature extraction + codegen + simulation only run when no worker
    or client anywhere has measured that code before — the same
    function-granular composition the in-process engine applies, made
    visible to process pools.
    """
    farm_dir = spec.get("farm_dir")
    if farm_dir:
        return _evaluate_point_farm(spec, process_store(farm_dir))
    module, fingerprint, result_fingerprint, function_fingerprints = \
        optimize_point(spec)
    return profile_optimized(spec, module, fingerprint,
                             result_fingerprint, function_fingerprints)


def farm_result_key(spec, result_fingerprint):
    """The farm result-index key of an optimized module's content —
    identical to ``EvaluationEngine.result_key_for`` for the same
    platform/seed/fuel, so workers and clients feed one index."""
    from repro.engine.cache import cache_key

    return cache_key(result_fingerprint, (), spec["target"],
                     spec["measurement_seed"],
                     spec.get("fuel") or 20_000_000)


def _evaluate_point_farm(spec, store):
    module, fingerprint, result_fingerprint, function_fingerprints = \
        optimize_point(spec)
    result_key = farm_result_key(spec, result_fingerprint)
    stored = store.get(result_key)
    if stored is not None:
        payload = dict(stored)
        payload.update({
            "fingerprint": fingerprint,
            "result_fingerprint": result_fingerprint,
            "function_fingerprints": function_fingerprints,
            "sequence": list(spec["sequence"]),
            "measurement_seed": spec["measurement_seed"],
        })
        return payload
    payload = profile_optimized(spec, module, fingerprint,
                                result_fingerprint,
                                function_fingerprints)
    index_entry = dict(payload)
    index_entry.update({
        "fingerprint": result_fingerprint,
        "sequence": [],
    })
    store.put(result_key, index_entry)
    return payload


def _guarded_evaluate(spec):
    """evaluate_point wrapped so failures travel back as *classified*
    values (pool futures would otherwise lose the point context).  Runs
    the spec's chaos hooks and arms the worker-side deadline."""
    try:
        with deadline(spec.get("timeout")):
            maybe_fail_point(spec)
            return evaluate_point(spec), None
    except Exception as error:  # noqa: BLE001 - propagated to caller
        return None, FailureInfo(spec["name"], tuple(spec["sequence"]),
                                 repr(error), classify_exception(error),
                                 int(spec.get("attempt", 1)))


class _PointState:
    """Supervision bookkeeping for one spec in one batch."""

    __slots__ = ("index", "spec", "attempt", "ready_at")

    def __init__(self, index, spec):
        self.index = index
        self.spec = spec
        self.attempt = 1
        self.ready_at = 0.0


class PointEvaluator:
    """Evaluates batches of specs in input order, under supervision.

    ``mode='serial'`` is the deterministic reference; ``thread`` keeps a
    shared in-process cache warm while overlapping point evaluations;
    ``process`` sidesteps the GIL for CPU-bound simulation at the cost
    of per-worker interpreter startup.  All three share one failure
    contract: :meth:`run` returns ``(payload, FailureInfo | None)``
    pairs in input order, and never lets a raw exception, a hung
    worker, or a broken pool escape or wedge the batch.
    """

    def __init__(self, mode="serial", workers=None, timeout=None,
                 retry=None, quarantine=None, degrade=True,
                 degrade_after=3, chaos=None, stats=None):
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {EXECUTION_MODES}")
        self.mode = mode
        self.workers = max(1, int(workers)) if workers else None
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.quarantine = quarantine
        self.degrade = degrade
        self.degrade_after = max(1, int(degrade_after))
        self.chaos = chaos
        self.faults = stats if stats is not None else FaultStats()
        #: Sticky degraded tier: once the pool infrastructure proved
        #: broken, later batches start at the degraded tier too.
        self.degraded_mode = None

    def pool_size(self, n_items):
        """Worker count for a batch of ``n_items`` (configured width,
        else capped at 8) — the one sizing rule every pool that stands
        in for this evaluator must share."""
        return self.workers or min(8, n_items)

    # -- batch entry ------------------------------------------------------
    def run(self, specs):
        """Evaluate all specs; returns ``(payload, error)`` pairs in the
        same order as the input (error is None on success, else a
        :class:`FailureInfo`)."""
        specs = list(specs)
        if not specs:
            return []
        results = [None] * len(specs)
        states = []
        for index, spec in enumerate(specs):
            blocked = self._quarantine_block(spec)
            if blocked is not None:
                results[index] = (None, blocked)
            else:
                states.append(_PointState(index, spec))
        tier = self.degraded_mode or self.mode
        if len(states) <= 1:
            tier = "serial"
        while states:
            if tier == "serial":
                self._run_serial(states, results)
                states = []
            else:
                states = self._run_pooled(tier, states, results)
                if states:
                    tier = self._degrade_to(
                        "thread" if tier == "process" else "serial")
        self.faults.flush()
        return results

    # -- quarantine -------------------------------------------------------
    def _quarantine_block(self, spec):
        if self.quarantine is None:
            return None
        record = self.quarantine.blocked(point_fingerprint(spec))
        if record is None:
            return None
        self.faults.bump("quarantine_blocks")
        return FailureInfo(
            spec["name"], tuple(spec["sequence"]),
            f"quarantined after {record['strikes']} worker-killing "
            f"strikes ({record.get('cause', 'worker crash')})",
            QUARANTINED, 0)

    # -- serial tier ------------------------------------------------------
    def _run_serial(self, states, results):
        for state in states:
            payload, failure = run_point_with_recovery(
                evaluate_point, state.spec, retry=self.retry,
                faults=self.faults, chaos=self.chaos,
                timeout=self.timeout, point_index=state.index,
                first_attempt=state.attempt)
            results[state.index] = (payload, failure)

    # -- pooled tiers -----------------------------------------------------
    def _run_pooled(self, tier, states, results):
        """Supervised pool execution; returns the states still owed a
        result when the tier must be abandoned (degradation), else
        ``[]``."""
        executor_cls = (ThreadPoolExecutor if tier == "thread"
                        else ProcessPoolExecutor)
        width = self.pool_size(len(states))
        # With a deadline, in-flight submissions are capped at the pool
        # width so a spec's watchdog clock starts when a worker can
        # actually start it (queued-behind-a-hang must not read as
        # hung).  Without one, prefetch keeps workers from idling
        # during the parent's harvest/refill round-trip.
        cap = width if self.timeout else width * 2
        try:
            pool = executor_cls(max_workers=width)
        except Exception:  # noqa: BLE001 - cannot build the pool: degrade
            return states
        pending = deque(states)
        isolate = deque()  # break suspects: re-run one at a time
        inflight = {}      # future -> state
        deadlines = {}     # future -> parent watchdog timestamp
        breaks = 0
        try:
            while pending or isolate or inflight:
                now = time.monotonic()
                broken = []  # states whose futures died with the pool
                # -- refill (isolation runs strictly solo)
                if isolate:
                    if not inflight and isolate[0].ready_at <= now:
                        state = isolate.popleft()
                        if not self._try_submit(pool, tier, state,
                                                inflight, deadlines):
                            broken.append(state)
                elif pending:
                    while pending and len(inflight) < cap \
                            and pending[0].ready_at <= now:
                        state = pending.popleft()
                        if not self._try_submit(pool, tier, state,
                                                inflight, deadlines):
                            broken.append(state)
                            break
                # -- wait, then settle worker-reported outcomes
                if inflight and not broken:
                    futures_wait(list(inflight), timeout=0.05,
                                 return_when=FIRST_COMPLETED)
                elif not inflight and not broken:
                    time.sleep(0.005)  # backoff window: nothing ready
                broken.extend(
                    self._harvest(inflight, deadlines, results, pending))
                # -- parent-side watchdog
                hung = None
                if self.timeout and not broken:
                    now = time.monotonic()
                    for future, state in list(inflight.items()):
                        if deadlines.get(future, now + 1) > now \
                                or future.done():
                            continue
                        if tier == "thread":
                            # Threads cannot be killed: abandon the
                            # future, charge the point a timeout.
                            del inflight[future]
                            deadlines.pop(future, None)
                            self._settle(state, None, FailureInfo(
                                state.spec["name"],
                                tuple(state.spec["sequence"]),
                                f"point exceeded {self.timeout}s "
                                f"deadline (worker abandoned)",
                                TIMEOUT, state.attempt),
                                results, pending)
                        else:
                            hung = state
                            break
                if hung is not None:
                    # A hard-hung worker: kill the pool, respawn, put
                    # innocent co-flyers back, charge the hung point.
                    breaks += 1
                    self.faults.bump("pool_respawns")
                    self._kill_pool(pool)
                    others = [s for s in inflight.values()
                              if s is not hung]
                    inflight.clear()
                    deadlines.clear()
                    pool = executor_cls(max_workers=width)
                    for state in sorted(others, key=lambda s: s.index,
                                        reverse=True):
                        pending.appendleft(state)
                    self._charge_worker_kill(
                        hung, TIMEOUT,
                        f"hung past the {self.timeout}s deadline; "
                        f"worker killed", results, isolate)
                elif broken:
                    # The pool died under us (a worker crashed).  Any
                    # still-unharvested in-flight future is dead too.
                    breaks += 1
                    self.faults.bump("pool_respawns")
                    self._kill_pool(pool)
                    suspects = {id(s): s for s in broken}
                    suspects.update(
                        (id(s), s) for s in inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    pool = executor_cls(max_workers=width)
                    ordered = sorted(suspects.values(),
                                     key=lambda s: s.index)
                    if len(ordered) == 1:
                        # Alone in flight: definitely the crasher.
                        self._charge_worker_kill(
                            ordered[0], CRASH,
                            "worker crashed (process pool broken)",
                            results, isolate)
                    else:
                        # Ambiguous: bisect by re-running each suspect
                        # solo so only the true crasher pays strikes.
                        isolate.extend(ordered)
                if (hung is not None or broken) and self.degrade \
                        and breaks >= self.degrade_after:
                    leftover = sorted(
                        list(pending) + list(isolate)
                        + list(inflight.values()),
                        key=lambda s: s.index)
                    return leftover
            return []
        finally:
            self._kill_pool(pool)

    def _try_submit(self, pool, tier, state, inflight, deadlines):
        try:
            future = pool.submit(_guarded_evaluate,
                                 self._decorated(state))
        except BrokenProcessPool:
            return False
        inflight[future] = state
        if self.timeout:
            deadlines[future] = (time.monotonic()
                                 + self._parent_budget(tier))
        return True

    def _harvest(self, inflight, deadlines, results, pending):
        """Settle every finished future; returns states whose futures
        died with a broken pool."""
        suspects = []
        for future, state in list(inflight.items()):
            if not future.done():
                continue
            del inflight[future]
            deadlines.pop(future, None)
            error = future.exception()
            if error is None:
                payload, failure = future.result()
                self._settle(state, payload, failure, results, pending)
            elif isinstance(error, BrokenProcessPool):
                suspects.append(state)
            else:
                self._settle(state, None, FailureInfo(
                    state.spec["name"], tuple(state.spec["sequence"]),
                    repr(error), classify_exception(error),
                    state.attempt), results, pending)
        return suspects

    def _settle(self, state, payload, failure, results, requeue):
        """Record a worker-reported outcome: success, retryable
        failure (re-enqueued with deterministic backoff), or final."""
        if failure is None:
            results[state.index] = (payload, None)
            return
        self.faults.bump(counter_for_kind(failure.kind))
        if self.retry.should_retry(failure.kind, state.attempt):
            self.faults.bump("retries")
            state.ready_at = (time.monotonic()
                              + self.retry.delay(state.attempt))
            state.attempt += 1
            requeue.append(state)
        else:
            results[state.index] = (
                None, failure._replace(attempts=state.attempt))

    def _charge_worker_kill(self, state, kind, cause, results, requeue):
        """A point's worker had to be killed (crash or hard hang):
        strike the quarantine ledger, then retry or finalize."""
        self.faults.bump(counter_for_kind(kind))
        spec = state.spec
        if self.quarantine is not None:
            strikes = self.quarantine.strike(
                point_fingerprint(spec), spec["name"],
                tuple(spec["sequence"]), cause)
            if strikes >= self.quarantine.threshold:
                self.faults.bump("quarantined")
                results[state.index] = (None, FailureInfo(
                    spec["name"], tuple(spec["sequence"]),
                    f"quarantined after {strikes} worker-killing "
                    f"strikes ({cause})", QUARANTINED, state.attempt))
                return
        if self.retry.should_retry(kind, state.attempt):
            self.faults.bump("retries")
            state.ready_at = (time.monotonic()
                              + self.retry.delay(state.attempt))
            state.attempt += 1
            requeue.append(state)
        else:
            results[state.index] = (None, FailureInfo(
                spec["name"], tuple(spec["sequence"]), cause, kind,
                state.attempt))

    def _decorated(self, state):
        spec = dict(state.spec)
        spec["attempt"] = state.attempt
        if self.timeout:
            spec["timeout"] = self.timeout
        if self.chaos is not None:
            spec["chaos"] = self.chaos
            spec["chaos_point"] = state.index
        return spec

    def _parent_budget(self, tier):
        if tier == "process":
            return (self.timeout * PROCESS_WATCHDOG_FACTOR
                    + PROCESS_WATCHDOG_SLACK)
        return self.timeout + THREAD_WATCHDOG_SLACK

    def _degrade_to(self, tier):
        self.degraded_mode = tier
        self.faults.bump("degradations")
        return tier

    @staticmethod
    def _kill_pool(pool):
        """Tear a pool down without waiting: terminate worker processes
        (hung ones included) and cancel anything queued."""
        try:
            processes = getattr(pool, "_processes", None)
            if processes:
                for process in list(processes.values()):
                    try:
                        process.terminate()
                    except Exception:  # noqa: BLE001 - already dead
                        pass
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - teardown is best effort
            pass
