"""Content-addressed evaluation cache.

Every compile->simulate evaluation is keyed by
``(module_fingerprint, pass_sequence, platform.target, measurement_seed)``
so any component of the system (data extraction, RL rollouts, PSS
deployment checks, baseline searches) that asks for the same point gets
the stored result instead of re-running the compiler and simulator.

The cache is a bounded LRU with hit/miss/eviction counters and an
optional on-disk tier that survives across processes: a
:class:`repro.engine.store.ShardedStore` (the compile farm's sharded
append-only segment store), which replaced the original
one-JSON-file-per-entry layout — legacy ``<key>.json`` entries remain
readable.
"""

import hashlib
import threading
from collections import OrderedDict

from repro.engine.store import ShardedStore


DEFAULT_FUEL = 20_000_000


def cache_key(module_fingerprint, sequence, target, measurement_seed,
              fuel=DEFAULT_FUEL):
    """Stable digest identifying one evaluation point.

    ``module_fingerprint`` is the canonical hash of the *input* module
    (before the sequence runs), so a hit skips pass running, codegen and
    simulation entirely.  ``fuel`` is part of the key: a run that
    succeeds under a large budget must not answer for a smaller one
    (which would have raised fuel exhaustion).
    """
    payload = "\x1f".join((
        str(module_fingerprint),
        "\x1e".join(str(phase) for phase in sequence),
        str(target),
        str(measurement_seed),
        str(fuel),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CacheStats:
    """Hit/miss/store/eviction counters for one cache instance."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_stores = 0
        self.disk_errors = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self):
        return (f"<CacheStats hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} "
                f"hit_rate={self.hit_rate:.2%}>")


class EvaluationCache:
    """Bounded LRU over JSON-serializable payload dicts.

    ``store_dir`` enables the on-disk tier: entries evicted from (or
    never present in) memory are reloaded from disk on a miss, and every
    store is mirrored to disk, so a warm directory makes a fresh process
    start with a full cache.  The tier is a cross-process
    :class:`~repro.engine.store.ShardedStore`, so many concurrent
    clients and worker processes pointed at the same directory share one
    warm farm; pass an existing ``store`` instance to share a single
    in-process handle.
    """

    def __init__(self, max_entries=4096, store_dir=None, store=None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        if store is not None:
            self.store = store
        elif store_dir is not None:
            self.store = ShardedStore(store_dir)
        else:
            self.store = None
        self.store_dir = self.store.root if self.store is not None \
            else None
        self.stats = CacheStats()
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key):
        """The stored payload for ``key``, or None (counts a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            payload = self._disk_load(key)
            if payload is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, payload)
                return payload
            self.stats.misses += 1
            return None

    def put(self, key, payload):
        with self._lock:
            self.stats.stores += 1
            self._insert(key, payload)
            self._disk_store(key, payload)

    def _insert(self, key, payload):
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self):
        """Drop the in-memory tier (the disk store is left alone)."""
        with self._lock:
            self._entries.clear()

    # -- disk tier --------------------------------------------------------
    # The disk tier is strictly best-effort: an I/O error on either
    # side degrades to a cache miss / an unmirrored entry (counted in
    # ``disk_errors``), never a failed evaluation.
    def _disk_load(self, key):
        if self.store is None:
            return None
        try:
            return self.store.get(key)
        except OSError:
            self.stats.disk_errors += 1
            return None

    def _disk_store(self, key, payload):
        if self.store is None:
            return
        try:
            self.store.put(key, payload)
            self.stats.disk_stores += 1
        except (OSError, TypeError):
            self.stats.disk_errors += 1
