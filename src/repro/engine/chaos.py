"""Deterministic fault injection for the evaluation stack (the chaos
harness).

Recovery code that is never executed is broken code waiting for
production traffic.  This module provides a *seeded* injector that is
threaded through the evaluator (worker crash / simulation stall), the
sharded store (I/O errors, corrupted and truncated segment lines) and
the batch scheduler (dispatch failures), so every recovery path in
:mod:`repro.engine.faults` and :mod:`repro.engine.evaluator` is
exercised by tests instead of trusted.

Determinism model
-----------------

Two kinds of decisions, both reproducible run-to-run:

- **Point faults** (``crash_points`` / ``stall_points``) select
  evaluation points either by batch index (int) or by
  ``(workload name, sequence)`` tuple.  A selected point faults on its
  first ``times`` *attempts* — the dispatch attempt number travels in
  the spec — so "transient fault, retry succeeds" and "poison point,
  quarantine" are both expressible exactly.
- **Store faults** are rate-based with a per-``(seed, site, token)``
  stable hash draw: whether a given key's read errors or a given line
  is corrupted depends only on the seed and the key, never on call
  order, thread timing, or process identity.

The injector is plain picklable state: the evaluator embeds it in
worker specs, so process-pool workers apply the same plan the parent
computed.  A crash inside a real pool worker is a hard ``os._exit``
(the ``BrokenProcessPool``/OOM-killer shape); in-process (serial or
thread tiers) it raises :class:`InjectedCrash` instead, which the
fault taxonomy classifies as transient.
"""

import multiprocessing
import os
import signal
import threading
import time
import zlib


class InjectedFault(Exception):
    """Base class for faults raised by the chaos injector."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a killed worker (classified transient)."""


class InjectedIOError(OSError):
    """Injected store I/O failure (classified transient)."""


def _chance(seed, site, token):
    """Deterministic uniform [0, 1) draw for one (seed, site, token) —
    independent of call order, threads, and process identity."""
    digest = zlib.crc32(f"{seed}\x1f{site}\x1f{token}".encode("utf-8"))
    return (digest & 0xFFFFFFFF) / 2.0 ** 32


def _normalize_plan(points, times):
    """``points`` -> {selector: times}.  Selectors are batch indices
    (int) or ``(name, sequence)`` tuples; a dict input carries explicit
    per-selector fault counts."""
    if not points:
        return {}
    if isinstance(points, dict):
        items = points.items()
    else:
        items = ((point, times) for point in points)
    plan = {}
    for selector, count in items:
        if not isinstance(selector, int):
            name, sequence = selector
            selector = (name, tuple(sequence))
        plan[selector] = int(count)
    return plan


class ChaosInjector:
    """Seeded, deterministic fault plan for evaluator/store/scheduler.

    Parameters
    ----------
    seed:
        Drives every rate-based draw; two injectors with equal
        configuration make identical decisions.
    crash_points / stall_points:
        Point selectors (see :func:`_normalize_plan`); each selected
        point crashes/stalls on its first ``times`` attempts.
    stall_seconds:
        How long an injected stall sleeps (choose it past the
        evaluator's ``--eval-timeout`` to exercise deadline recovery).
    io_error_rate / corrupt_rate / truncate_rate:
        Per-key probabilities of store get/put I/O errors, of a written
        segment line having a byte flipped, and of a written line being
        truncated (torn-write shape).
    dispatch_errors:
        Fail this many scheduler batch dispatches outright.
    """

    def __init__(self, seed=0, crash_points=None, stall_points=None,
                 hang_points=None, times=1, stall_seconds=0.3,
                 io_error_rate=0.0, corrupt_rate=0.0,
                 truncate_rate=0.0, dispatch_errors=0):
        self.seed = seed
        self.crash_points = _normalize_plan(crash_points, times)
        self.stall_points = _normalize_plan(stall_points, times)
        self.hang_points = _normalize_plan(hang_points, times)
        self.stall_seconds = stall_seconds
        self.io_error_rate = io_error_rate
        self.corrupt_rate = corrupt_rate
        self.truncate_rate = truncate_rate
        self.dispatch_errors = int(dispatch_errors)
        self._dispatches_failed = 0
        #: Parent-side injection counters (worker-process injections
        #: surface through recovery outcomes, not through this dict).
        self.injected = {"crashes": 0, "stalls": 0, "io_errors": 0,
                         "corrupted": 0, "truncated": 0,
                         "dispatch_errors": 0}

    # -- point faults (evaluator hook) -----------------------------------
    def _selected(self, plan, spec):
        if not plan:
            return False
        attempt = int(spec.get("attempt", 1))
        index = spec.get("chaos_point")
        identity = (spec.get("name"),
                    tuple(spec.get("sequence", ())))
        for selector, times in plan.items():
            hit = (index == selector if isinstance(selector, int)
                   else identity == selector)
            if hit and attempt <= times:
                return True
        return False

    def on_point(self, spec):
        """Evaluator hook: runs at the start of every point attempt."""
        if self._selected(self.crash_points, spec):
            self.injected["crashes"] += 1
            if multiprocessing.parent_process() is not None:
                # A real pool worker: die the way the OOM killer kills
                # — no cleanup, no exception, a broken pool upstairs.
                os._exit(13)
            raise InjectedCrash(
                f"injected worker crash at point "
                f"{spec.get('chaos_point')} ({spec.get('name')!r}, "
                f"attempt {spec.get('attempt', 1)})")
        if self._selected(self.stall_points, spec):
            self.injected["stalls"] += 1
            time.sleep(self.stall_seconds)
        if self._selected(self.hang_points, spec):
            # A *hard* hang: the worker-side SIGALRM deadline cannot
            # interrupt it, so only the parent-side watchdog (which
            # kills the worker) recovers.  ``sleep`` still bounds the
            # damage if nothing supervises us.
            self.injected["stalls"] += 1
            blocked = (os.name == "posix" and threading.current_thread()
                       is threading.main_thread())
            if blocked:
                signal.pthread_sigmask(signal.SIG_BLOCK,
                                       {signal.SIGALRM})
            try:
                time.sleep(self.stall_seconds)
            finally:
                if blocked:
                    signal.pthread_sigmask(signal.SIG_UNBLOCK,
                                           {signal.SIGALRM})

    # -- store faults (ShardedStore hooks) -------------------------------
    def on_store_op(self, op, key):
        """Store hook: may raise an I/O error for this (op, key)."""
        if self.io_error_rate and \
                _chance(self.seed, f"store.{op}", key) < self.io_error_rate:
            self.injected["io_errors"] += 1
            raise InjectedIOError(
                f"injected store {op} failure for key {key[:12]}")

    def mangle_line(self, key, data):
        """Store hook: corrupt or truncate an encoded segment line
        before it reaches disk (torn-write / bit-flip shapes)."""
        if self.truncate_rate and \
                _chance(self.seed, "store.truncate", key) < self.truncate_rate:
            self.injected["truncated"] += 1
            return data[:max(1, len(data) // 2)]
        if self.corrupt_rate and \
                _chance(self.seed, "store.corrupt", key) < self.corrupt_rate:
            self.injected["corrupted"] += 1
            position = len(data) // 2
            return (data[:position]
                    + bytes([data[position] ^ 0x5A])
                    + data[position + 1:])
        return data

    # -- scheduler fault (BatchScheduler hook) ---------------------------
    def on_dispatch(self, keys):
        """Scheduler hook: fail whole batch dispatches while the
        configured budget lasts."""
        if self._dispatches_failed < self.dispatch_errors:
            self._dispatches_failed += 1
            self.injected["dispatch_errors"] += 1
            raise InjectedFault(
                f"injected dispatch failure ({len(keys)} keys)")


def maybe_fail_point(spec):
    """Apply the spec's embedded injector (no-op without one) — the
    single entry point both worker- and in-process execution share."""
    injector = spec.get("chaos")
    if injector is not None:
        injector.on_point(spec)
