"""Batched PE inference.

Searchers and deployment tools used to score candidate sequences one
``estimator.predict`` call at a time.  These helpers stack the feature
vectors of a whole candidate set into a matrix so each metric pipeline
runs exactly once per batch (the preprocessors and models are all
vectorized NumPy underneath).
"""

import numpy as np

from repro.features import FEATURE_NAMES, extract_features

SIZE_INDEX = FEATURE_NAMES.index("code_size_bytes")


def feature_matrix(modules, platform):
    """Stack full PE feature vectors of many modules into one matrix."""
    return np.vstack([extract_features(module, platform)
                      for module in modules])


def predict_many(estimator, features):
    """One batched prediction over a feature matrix.

    Returns ``{metric: ndarray of len(features)}`` — a single call into
    each metric pipeline rather than a per-row loop.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features[None, :]
    return estimator.predict(features)


def objective_rows(predicted, features):
    """Per-row {time, energy, size} objective dicts from a batched
    prediction (`size` is the measured static code size feature)."""
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features[None, :]
    rows = []
    for index in range(features.shape[0]):
        rows.append({
            "time": max(float(predicted["exec_time_us"][index]), 1e-9),
            "energy": max(float(predicted["energy_uj"][index]), 1e-9),
            "size": float(features[index][SIZE_INDEX]),
        })
    return rows
