"""Cached parallel evaluation engine for the compile->profile loop."""

from repro.engine.batched import (
    feature_matrix,
    objective_rows,
    predict_many,
)
from repro.engine.cache import CacheStats, EvaluationCache, cache_key
from repro.engine.chaos import (
    ChaosInjector,
    InjectedCrash,
    InjectedFault,
    InjectedIOError,
)
from repro.engine.engine import (
    EvalFailure,
    EvalResult,
    EvaluationEngine,
)
from repro.engine.evaluator import (
    EXECUTION_MODES,
    PointEvaluator,
    WorkerError,
    evaluate_point,
    point_measurement_seed,
    process_store,
)
from repro.engine.faults import (
    EvalTimeout,
    FailureInfo,
    FaultStats,
    Quarantine,
    RetryPolicy,
    classify_exception,
    point_fingerprint,
)
from repro.engine.scheduler import BatchScheduler
from repro.engine.store import ShardedStore, StoreStats

__all__ = [
    "BatchScheduler",
    "CacheStats",
    "ChaosInjector",
    "EXECUTION_MODES",
    "EvalFailure",
    "EvalResult",
    "EvalTimeout",
    "EvaluationCache",
    "EvaluationEngine",
    "FailureInfo",
    "FaultStats",
    "InjectedCrash",
    "InjectedFault",
    "InjectedIOError",
    "PointEvaluator",
    "Quarantine",
    "RetryPolicy",
    "ShardedStore",
    "StoreStats",
    "WorkerError",
    "cache_key",
    "classify_exception",
    "evaluate_point",
    "feature_matrix",
    "objective_rows",
    "point_fingerprint",
    "point_measurement_seed",
    "predict_many",
    "process_store",
]
