"""Cached parallel evaluation engine for the compile->profile loop."""

from repro.engine.batched import (
    feature_matrix,
    objective_rows,
    predict_many,
)
from repro.engine.cache import CacheStats, EvaluationCache, cache_key
from repro.engine.engine import (
    EvalFailure,
    EvalResult,
    EvaluationEngine,
)
from repro.engine.evaluator import (
    EXECUTION_MODES,
    PointEvaluator,
    WorkerError,
    evaluate_point,
    point_measurement_seed,
    process_store,
)
from repro.engine.scheduler import BatchScheduler
from repro.engine.store import ShardedStore, StoreStats

__all__ = [
    "BatchScheduler",
    "CacheStats",
    "EXECUTION_MODES",
    "EvalFailure",
    "EvalResult",
    "EvaluationCache",
    "EvaluationEngine",
    "PointEvaluator",
    "ShardedStore",
    "StoreStats",
    "WorkerError",
    "cache_key",
    "evaluate_point",
    "feature_matrix",
    "objective_rows",
    "point_measurement_seed",
    "predict_many",
    "process_store",
]
